"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that ``pip install -e . --no-use-pep517`` works on machines without
the ``wheel`` package (offline environments).
"""

from setuptools import setup

setup()
