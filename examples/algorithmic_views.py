"""Algorithmic Views and the AV Selection Problem (paper §3).

Three acts:

1. materialise concrete AVs (a perfect-hash array, a sorted projection)
   and watch the optimiser's plan cost drop when they are registered;
2. solve the AVSP over a synthetic workload with the greedy and the exact
   solver, under a build-cost budget;
3. show a *partial* AV (§6): freeze the macro-molecule decision offline,
   leaving only molecule decisions for query time.

Run::

    python examples/algorithmic_views.py
"""

from repro import (
    AVRegistry,
    Density,
    Granularity,
    Sortedness,
    ViewKind,
    bind_offline,
    make_join_scenario,
    make_workload,
    materialize_view,
    optimize_dqo,
    plan_query,
)
from repro.avs import enumeration_savings, exhaustive_avsp, greedy_avsp

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


def act_one_materialised_views() -> None:
    print("=" * 72)
    print("Act 1 — materialised AVs change the optimiser's plans")
    print("=" * 72)
    scenario = make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERY, catalog)

    baseline = optimize_dqo(logical, catalog)
    print(f"\nwithout views: cost {baseline.cost:,.0f}")
    print(baseline.explain())

    registry = AVRegistry()
    registry.add(materialize_view(catalog, ViewKind.SPH_ARRAY, "R", "ID"))
    print("\nregistered:")
    print(registry.describe())

    with_views = optimize_dqo(logical, catalog, views=registry)
    print(f"\nwith views: cost {with_views.cost:,.0f}")
    print(with_views.explain())
    saved = baseline.cost - with_views.cost
    print(
        f"\nThe prebuilt SPH array waives the join's build phase: "
        f"{saved:,.0f} cost units per query, for a one-off build of "
        f"{registry.total_build_cost():,.0f}."
    )


def act_two_avsp() -> None:
    print()
    print("=" * 72)
    print("Act 2 — the Algorithmic View Selection Problem")
    print("=" * 72)
    workload = make_workload(num_tables=3, num_queries=25, seed=1)
    budget = 3_000_000.0
    print(
        f"\nworkload: {len(workload)} queries over "
        f"{len(workload.tables)} tables; build budget {budget:,.0f}\n"
    )
    greedy = greedy_avsp(workload, budget=budget)
    print("greedy selection:")
    print(greedy.describe())
    exact = exhaustive_avsp(workload, budget=budget)
    print("\nexact selection:")
    print(exact.describe())
    gap = (exact.benefit - greedy.benefit) / exact.benefit if exact.benefit else 0
    print(f"\ngreedy gap vs exact: {gap:.1%}")


def act_three_partial_av() -> None:
    print()
    print("=" * 72)
    print("Act 3 — partial AVs: optimise offline, finish at query time")
    print("=" * 72)
    partial = bind_offline(
        bound_level=Granularity.MACROMOLECULE,
        pick_index=0,
        name="hash-grouping",
    )
    print()
    print(partial.describe())
    from_scratch, remaining = enumeration_savings(partial)
    print(
        f"\nquery-time enumeration: {remaining} completions instead of "
        f"{from_scratch} from scratch — the offline commitment froze the "
        "macro-molecule (index choice) level; only molecule decisions "
        "(hash function, table kind, loop mode) remain."
    )


def act_four_dictionary_av() -> None:
    print()
    print("=" * 72)
    print("Act 4 — dictionary AVs: manufacturing density offline (§2.1)")
    print("=" * 72)
    scenario = make_join_scenario(
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.SPARSE,
    )
    catalog = scenario.build_catalog()
    logical = plan_query(QUERY, catalog)
    sqo_cost = optimize_dqo(logical, catalog).cost
    registry = AVRegistry(
        [materialize_view(catalog, ViewKind.DICTIONARY, "R", "A")]
    )
    with_view = optimize_dqo(logical, catalog, views=registry)
    print(
        f"\nsparse data: plain DQO ties SQO at {sqo_cost:,.0f} "
        "(the paper's 1x sparse cells)."
    )
    print(
        f"with a dictionary AV on R.A: {with_view.cost:,.0f} "
        f"({sqo_cost / with_view.cost:.2f}x) — the encoded grouping keys "
        "are dense, so SPH grouping applies:"
    )
    print(with_view.explain())
    print(
        "\n(The plan decodes the group keys after grouping; execution "
        "correctness is asserted in tests/avs/test_dictionary_views.py.)"
    )


if __name__ == "__main__":
    act_one_materialised_views()
    act_two_avsp()
    act_three_partial_av()
    act_four_dictionary_av()
