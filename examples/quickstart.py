"""Quickstart: run the paper's §4.3 query under SQO and DQO.

Builds the paper's R/S scenario, optimises the query both shallowly and
deeply, shows the chosen plans (with the deep plan's physiological recipe),
and executes both to verify they agree.

Run::

    python examples/quickstart.py
"""

from repro import (
    Density,
    Sortedness,
    execute,
    explain_analyze,
    make_join_scenario,
    optimize_dqo,
    optimize_sqo,
    plan_query,
    to_operator,
)

QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"


def main() -> None:
    # The paper's dense, both-unsorted configuration — the 4x cell of
    # Figure 5 — at reduced scale so execution is instant.
    scenario = make_join_scenario(
        n_r=9_000,
        n_s=18_000,
        num_groups=4_000,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
    )
    catalog = scenario.build_catalog()

    logical = plan_query(QUERY, catalog)
    print("Logical plan:")
    print(logical.explain())
    print()

    sqo = optimize_sqo(logical, catalog)
    print(f"SQO plan (cost {sqo.cost:,.0f}):")
    print(sqo.explain())
    print()

    dqo = optimize_dqo(logical, catalog)
    print(f"DQO plan (cost {dqo.cost:,.0f}):")
    print(dqo.explain(deep=True))
    print()
    print("How hard the optimiser searched for it:")
    print(dqo.stats.render())
    print()
    print(
        f"DQO improvement factor: {sqo.cost / dqo.cost:.1f}x "
        "(the paper's Figure 5, dense & both-unsorted cell: 4x)"
    )
    print()

    sqo_result = execute(to_operator(sqo.plan, catalog)).sort_by(["R.A"])
    dqo_result = execute(to_operator(dqo.plan, catalog)).sort_by(["R.A"])
    assert sqo_result.equals(dqo_result), "plans disagree!"
    print("Both plans executed; results agree. First rows:")
    print(dqo_result.pretty(limit=5))
    print()

    print("EXPLAIN ANALYZE of the DQO plan (measured actuals):")
    print(explain_analyze(to_operator(dqo.plan, catalog)))


if __name__ == "__main__":
    main()
