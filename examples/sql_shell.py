"""A miniature interactive SQL shell over the DQO engine.

Registers the paper's R/S scenario plus a small demo table, then reads
SQL from stdin, optimises each query deeply, prints the chosen plan, and
executes it. A non-interactive demo mode (``--demo``) runs a scripted
session instead.

Run::

    python examples/sql_shell.py --demo
    python examples/sql_shell.py           # interactive; end with Ctrl-D
"""

import sys

import numpy as np

from repro import (
    Table,
    execute,
    make_join_scenario,
    optimize_dqo,
    plan_query,
    to_operator,
)
from repro.errors import ReproError

DEMO_QUERIES = [
    "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A "
    "ORDER BY R.A LIMIT 5",
    "SELECT A, SUM(B) AS revenue FROM R JOIN S ON ID = R_ID "
    "WHERE B >= 500 GROUP BY A ORDER BY A LIMIT 5",
    "SELECT city, COUNT(*) AS n, AVG(temp) AS avg_temp FROM weather "
    "GROUP BY city ORDER BY city",
]


def build_catalog():
    scenario = make_join_scenario(n_r=5_000, n_s=12_000, num_groups=500)
    catalog = scenario.build_catalog()
    rng = np.random.default_rng(0)
    catalog.register(
        "weather",
        Table.from_arrays(
            {
                "city": rng.integers(0, 8, 2_000),
                "temp": rng.integers(-10, 35, 2_000),
            }
        ),
    )
    return catalog


def run_query(catalog, sql: str) -> None:
    try:
        logical = plan_query(sql, catalog)
        result = optimize_dqo(logical, catalog)
        print(f"\nplan (cost {result.cost:,.0f}):")
        print(result.explain())
        table = execute(to_operator(result.plan, catalog))
        print(f"\n{table.pretty(limit=12)}")
        print(f"({table.num_rows} rows)")
    except ReproError as error:
        print(f"error: {error}")


def main() -> None:
    catalog = build_catalog()
    print(f"tables: {', '.join(catalog.names())}")
    if "--demo" in sys.argv:
        for sql in DEMO_QUERIES:
            print(f"\ndqo> {sql}")
            run_query(catalog, sql)
        return
    print("enter SQL (one statement per line), Ctrl-D to quit")
    for line in sys.stdin:
        sql = line.strip().rstrip(";")
        if not sql:
            continue
        run_query(catalog, sql)
        print("\ndqo> ", end="", flush=True)


if __name__ == "__main__":
    main()
