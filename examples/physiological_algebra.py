"""The physiological algebra: Figures 2 and 3, executable.

Walks the unnesting lattice from the logical Γ operator down to concrete
implementations (Figure 3's journey), prints every recipe with its
granularity tags, and then runs Figure 2's ``partitionBy`` as a real
bundle-of-producers operator.

Run::

    python examples/physiological_algebra.py
"""

import numpy as np

from repro import (
    Granularity,
    enumerate_recipes,
    logical_grouping,
)
from repro.core.physiological import recipe_algorithm, recipe_requirements, unnest
from repro.engine import PartitionBy, TableScan
from repro.storage import Table


def walk_the_lattice() -> None:
    print("=" * 72)
    print("Figure 3 — unnesting the logical grouping operator")
    print("=" * 72)
    seed = logical_grouping()
    print(f"\n(a) the purely logical operator:\n{seed.explain()}")

    step_b = unnest(seed)[0]
    print(f"\n(b) one unnest: the physiological form (Figure 2):\n{step_b.explain()}")

    print("\nDecision-space size as the optimiser is allowed deeper:")
    for level in (
        Granularity.ORGANELLE,
        Granularity.MACROMOLECULE,
        Granularity.MOLECULE,
    ):
        recipes = enumerate_recipes(seed, level)
        algorithms = sorted({recipe_algorithm(r).name for r in recipes})
        print(f"  {level.name:<14} {len(recipes):>3} recipes  -> {algorithms}")

    print("\nEvery MACROMOLECULE-level recipe, with its preconditions:")
    for recipe in enumerate_recipes(seed, Granularity.MACROMOLECULE):
        algorithm = recipe_algorithm(recipe)
        requirements = recipe_requirements(recipe)
        needs = []
        if requirements.needs_clustered:
            needs.append("clustered input")
        if requirements.needs_dense:
            needs.append("dense key domain")
        print(f"\n--- {algorithm.name} (needs: {', '.join(needs) or 'nothing'})")
        print(recipe.explain(indent=1))


def run_figure2() -> None:
    print()
    print("=" * 72)
    print("Figure 2 — partitionBy as a bundle of independent producers")
    print("=" * 72)
    table = Table.from_arrays(
        {
            "key": np.array([3, 1, 3, 2, 1, 3], dtype=np.int64),
            "value": np.array([10, 20, 30, 40, 50, 60], dtype=np.int64),
        }
    )
    partition = PartitionBy(TableScan(table), "key")
    print(f"\ninput: {table.num_rows} rows, partitioned into "
          f"{partition.num_partitions()} producers:\n")
    for group_key, producer in partition.producers():
        values = producer["value"].tolist()
        print(
            f"  producer for key {group_key}: {len(values)} rows, "
            f"values {values} (aggregatable independently)"
        )
    print(
        "\nNo decision was made about *how* the partitioning happens — "
        "that is exactly the point of Figure 2's notation; the "
        "implementation is a constructor argument the optimiser fills in."
    )


if __name__ == "__main__":
    walk_the_lattice()
    run_figure2()
