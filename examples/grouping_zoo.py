"""The grouping implementation zoo (paper §4.1 / Figure 4, interactive).

Runs all five grouping implementations on each of the four dataset
configurations (sortedness x density), printing per-algorithm runtimes and
which properties made which algorithms applicable — a miniature Figure 4
you can rerun with your own sizes.

Run::

    python examples/grouping_zoo.py [rows] [groups]
"""

import sys

from repro import GroupingAlgorithm, group_by, make_grouping_dataset
from repro._util.timer import time_callable
from repro.bench.reporting import render_table
from repro.datagen import Density, Sortedness
from repro.errors import PreconditionError


def main(rows: int = 1_000_000, groups: int = 10_000) -> None:
    print(
        f"Grouping {rows:,} rows into {groups:,} groups "
        "(COUNT + SUM, as in the paper)\n"
    )
    table_rows = []
    for sortedness in Sortedness:
        for density in Density:
            dataset = make_grouping_dataset(
                rows, groups, sortedness=sortedness, density=density
            )
            cells = [f"{sortedness.value} & {density.value}"]
            for algorithm in GroupingAlgorithm:
                try:
                    timing = time_callable(
                        lambda a=algorithm, d=dataset: group_by(
                            d.keys, d.payload, a,
                            num_distinct_hint=groups,
                            validate=True,
                        ),
                        repeats=2,
                        warmup=1,
                    )
                    cells.append(f"{timing.best_ms:,.1f}")
                except PreconditionError:
                    # SPHG on sparse domains, OG on unsorted input: the
                    # §2.1 applicability preconditions at work.
                    cells.append("n/a")
            table_rows.append(cells)
    print(
        render_table(
            ["dataset"] + [a.name for a in GroupingAlgorithm],
            table_rows,
            title="runtime [ms] ('n/a' = precondition violated)",
        )
    )
    print(
        "\nReading guide (the paper's Figure 4 claims): OG wins when "
        "sorted; SPHG wins when dense & unsorted;\nHG wins when neither "
        "property holds; SOG pays a sort; BSG grows with the group count."
    )


if __name__ == "__main__":
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    groups = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    main(rows, groups)
