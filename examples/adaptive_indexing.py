"""Runtime-adaptive Algorithmic Views (paper §6).

An adaptive index is "a partial AV where some optimisation decisions have
been delegated to query time". This example runs a range-query workload
against a cracking-backed adaptive view, prints its convergence, and shows
the view promoting itself to a full sorted-projection AV once the workload
has effectively sorted the column — the continuous (non-binary) indexing
decision the paper advocates.

Run::

    python examples/adaptive_indexing.py
"""

import numpy as np

from repro import AVRegistry, AdaptiveIndexView, Catalog, Table, ViewKind


def main() -> None:
    rng = np.random.default_rng(7)
    catalog = Catalog()
    catalog.register(
        "orders", Table.from_arrays({"amount": rng.permutation(50_000)})
    )
    view = AdaptiveIndexView(catalog, "orders", "amount")
    registry = AVRegistry()

    print("range-query workload against the adaptive view:\n")
    print(f"{'queries':>8} {'pieces':>8} {'sortedness':>11} {'cracks':>8}")
    checkpoints = {0, 10, 50, 100, 500, 1_000, 2_000, 5_000}
    for query_number in range(1, 5_001):
        low = int(rng.integers(0, 49_000))
        view.range_query(low, low + int(rng.integers(1, 500)))
        if query_number in checkpoints:
            entry = view.log[-1]
            print(
                f"{query_number:>8} {entry.pieces_after:>8} "
                f"{entry.sortedness_after:>11.3f} {view.crack_count:>8}"
            )

    print(f"\nconverged: {view.is_converged()}")
    promoted = view.promote(registry)
    if promoted is None:
        # Narrow ranges converge slowly; finish the job with point cracks
        # to demonstrate promotion.
        print("finishing convergence with a full point-query sweep ...")
        for pivot in range(0, 50_001, 7):
            view.range_query(pivot, pivot)
        for pivot in range(0, 50_001):
            if view.is_converged():
                break
            view.range_query(pivot, pivot)
        promoted = view.promote(registry)
    if promoted is not None:
        print(
            f"\npromoted to a full AV at zero build cost "
            f"(the workload paid for it): {promoted.describe()}"
        )
        assert registry.has_view(ViewKind.SORTED_PROJECTION, "orders", "amount")
    print(
        "\nThe indexing decision was never binary: the column moved "
        "continuously from unindexed to fully indexed, driven only by "
        "the queries that actually arrived (§6, Runtime-Adaptivity)."
    )


if __name__ == "__main__":
    main()
