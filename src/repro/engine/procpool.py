"""The process-based execution backend: shared-memory columns + worker pool.

The morsel scheduler (:mod:`repro.engine.parallel`) parallelises numpy
kernels across *threads* — enough when the GIL is released inside the
kernel, useless for the pure-Python stretches around it. This module adds
the second backend the optimiser can choose
(``OptimizerConfig.backend = "process"``): a persistent pool of worker
*processes* pulling morsel tasks over a command queue, with table columns
published once into :mod:`multiprocessing.shared_memory` segments so every
worker maps them zero-copy.

Pieces:

* :class:`SharedColumnStore` — publishes numpy arrays into named
  shared-memory segments (``repro_shm_*``), identity-cached so a column
  array is published at most once per process. Segments are
  reference-tracked: a ``weakref.finalize`` on the source array releases
  the segment when the array is garbage-collected, and a catalog
  unregister-observer releases the segments of a dropped table's columns.
  The *parent* owns every segment: unlink happens parent-side, so a
  SIGKILLed worker can never leak ``/dev/shm`` entries.
* :class:`ProcessPool` — long-lived ``repro-procworker-N`` processes
  (``spawn`` by default — fork-safe under the service's threads; set
  ``REPRO_PROC_START=fork`` for cheap startup in scripts). Tasks travel as
  small picklable payloads whose :class:`SharedArrayRef` leaves are
  resolved to shared-memory views worker-side. Batches honour the
  submitting thread's :class:`~repro.service.context.QueryContext`:
  deadlines cross the boundary as absolute wall-clock stamps, cancellation
  as a shared event checked before every task, and a worker death mid-batch
  surfaces as a structured :class:`~repro.errors.WorkerCrashError` (the
  pool is marked broken and rebuilt on next use). Per-worker busy time is
  stamped into the same ``parallel.*`` metrics and spans the thread
  backend uses, so ``top``/exposition show process-worker utilisation.
* :func:`process_group_by` / :func:`process_join` — the process twins of
  the thread kernels in :mod:`repro.engine.kernels.parallel`, bit-identical
  to them and to the serial kernels. Joins are shared-build: the parent
  erects the hash table / SPH domain / sorted build once, publishes its
  arrays, and all workers probe the one shared structure.

Deadline and cancellation granularity is the task, exactly as the thread
backend polls per morsel: a task already running is never interrupted,
but no further task of a cancelled batch starts.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.engine.parallel import MorselReport, get_executor_config, morsel_boundaries
from repro.errors import DeadlineExceeded, ExecutionError, QueryCancelled, WorkerCrashError
from repro.obs.runtime import get_metrics, get_tracer

#: shared-memory segment name prefix — distinctive, so leak checks can
#: scan ``/dev/shm`` without tripping over other tenants' segments.
SEGMENT_PREFIX = "repro_shm_"

#: process-name prefix of pool workers (mirrors ``repro-worker`` threads).
WORKER_PROCESS_PREFIX = "repro-procworker"

#: seconds run_batch keeps draining stragglers after an abort condition.
_DRAIN_SECONDS = 10.0

#: seconds between result polls (also the worker-liveness check cadence).
_POLL_SECONDS = 0.2

#: worker-side cap on cached segment attachments.
_WORKER_CACHE_CAP = 128


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable handle to a published array: segment name + layout.

    Workers resolve these to zero-copy numpy views; any payload structure
    (nested dicts/lists/tuples) may carry them as leaves.
    """

    name: str
    dtype: str
    shape: tuple


# ---------------------------------------------------------------------------
# parent side: the shared-memory column store


class SharedColumnStore:
    """Publishes numpy arrays into named shared-memory segments.

    Publishing is idempotent per array object: an identity cache maps
    ``id(array)`` to its segment, so the columns of a catalog table are
    copied into shared memory exactly once no matter how many queries
    touch them (``Column.renamed``/``project`` share the underlying
    array object, so qualified views hit the same cache entry).

    Lifecycle: a ``weakref.finalize`` on each published array releases
    its segment when the array is collected (CPython runs finalizers
    before the id can be reused, so the identity cache never goes stale);
    :func:`repro.storage.catalog.add_unregister_observer` hooks
    :meth:`release_table` in, so dropping a table from a catalog unlinks
    its segments eagerly; :meth:`release_all` is the terminal sweep run
    at pool shutdown.
    """

    def __init__(self) -> None:
        # RLock, not Lock: _finalize runs as a weakref.finalize callback,
        # which GC can fire on *this* thread mid-allocation inside
        # publish()'s critical section (SharedMemory creation, the copy).
        # A non-reentrant lock would self-deadlock there; reentrancy is
        # safe because the finalizer only removes fully-inserted entries
        # of already-dead arrays, never the one publish() is building.
        self._lock = threading.RLock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._refs: dict[str, SharedArrayRef] = {}
        self._by_id: dict[int, str] = {}
        self._counter = 0
        self._published_bytes = 0

    def publish(self, array: np.ndarray) -> SharedArrayRef:
        """Copy ``array`` into a shared segment (once) and return its ref.

        :raises ExecutionError: on a non-C-contiguous input — columns and
            kernel outputs are contiguous by construction, and contiguity
            is what makes the identity cache sound (no hidden temporaries).
        """
        if not isinstance(array, np.ndarray) or not array.flags.c_contiguous:
            raise ExecutionError(
                "shared-memory publish requires a C-contiguous numpy array"
            )
        with self._lock:
            name = self._by_id.get(id(array))
            if name is not None and name in self._refs:
                return self._refs[name]
            self._counter += 1
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{self._counter}"
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(int(array.nbytes), 1)
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            ref = SharedArrayRef(name, array.dtype.str, tuple(array.shape))
            self._segments[name] = segment
            self._refs[name] = ref
            self._by_id[id(array)] = name
            self._published_bytes += int(array.nbytes)
            weakref.finalize(array, self._finalize, id(array), name)
            return ref

    def _finalize(self, array_id: int, name: str) -> None:
        with self._lock:
            if self._by_id.get(array_id) == name:
                del self._by_id[array_id]
        self.release(name)

    def release(self, name: str) -> None:
        """Unlink one segment (missing names are a no-op)."""
        with self._lock:
            segment = self._segments.pop(name, None)
            self._refs.pop(name, None)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass

    def release_array(self, array: np.ndarray) -> None:
        """Unlink the segment published for ``array``, if any."""
        with self._lock:
            name = self._by_id.pop(id(array), None)
        if name is not None:
            self.release(name)

    def release_table(self, table) -> None:
        """Unlink every segment backing one of ``table``'s columns."""
        for column in table.columns():
            self.release_array(column.values)

    def release_all(self) -> None:
        """Unlink every live segment (pool shutdown / test teardown)."""
        with self._lock:
            names = list(self._segments)
            self._by_id.clear()
        for name in names:
            self.release(name)

    def stats(self) -> dict:
        """Live segment count and cumulative published bytes."""
        with self._lock:
            return {
                "segments": len(self._segments),
                "published_bytes": self._published_bytes,
            }


_store: SharedColumnStore | None = None
_store_lock = threading.Lock()


def _on_catalog_unregister(catalog, name, table) -> None:
    # Disk-resident tables never publish shared segments — touching one
    # here would materialise every column just to release nothing.
    from repro.storage.table import Table

    if _store is not None and isinstance(table, Table):
        _store.release_table(table)


def get_shared_store() -> SharedColumnStore:
    """The process-wide column store (created on first use, with the
    catalog unregister-observer installed)."""
    global _store
    if _store is None:
        with _store_lock:
            if _store is None:
                from repro.storage.catalog import add_unregister_observer

                add_unregister_observer(_on_catalog_unregister)
                _store = SharedColumnStore()
    return _store


def leaked_segments() -> list[str]:
    """Names of ``repro_shm_*`` entries still present in ``/dev/shm``.

    Empty after a clean :func:`shutdown_process_pool`; the SIGKILL tests
    assert exactly that. Returns [] on hosts without ``/dev/shm``.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


# ---------------------------------------------------------------------------
# worker side


def _ref_names(payload, names: set) -> set:
    """Collect the segment names of every :class:`SharedArrayRef` leaf."""
    if isinstance(payload, SharedArrayRef):
        names.add(payload.name)
    elif isinstance(payload, dict):
        for value in payload.values():
            _ref_names(value, names)
    elif isinstance(payload, (list, tuple)):
        for item in payload:
            _ref_names(item, names)
    return names


def _attach(
    ref: SharedArrayRef, cache: dict, protected: set, retired: list
) -> np.ndarray:
    cached = cache.get(ref.name)
    if cached is None:
        while len(cache) >= _WORKER_CACHE_CAP:
            # FIFO eviction (dict preserves insertion order), but never a
            # segment the payload being resolved references — evicting a
            # sibling ref of the same task would munmap memory the kernel
            # is about to read. Evicted segments go onto ``retired``
            # instead of closing here: numpy views into them may still be
            # live until the task's result has been shipped, so the close
            # is deferred to the top of the next task (see _worker_main).
            victim = next((name for name in cache if name not in protected), None)
            if victim is None:
                break  # every cached segment belongs to this payload
            old_shm, __ = cache.pop(victim)
            retired.append(old_shm)
        shm = shared_memory.SharedMemory(name=ref.name)
        # Attaching re-registers the name with the resource tracker. Pool
        # workers share the parent's tracker (the fd travels with spawn),
        # whose cache is a set — the parent registered the name at create
        # time, so this is a no-op and the parent's unlink-time unregister
        # stays balanced. Do NOT unregister here: that empties the shared
        # set early and every later unregister logs a KeyError.
        array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
        array.flags.writeable = False
        cache[ref.name] = (shm, array)
        cached = cache[ref.name]
    return cached[1]


def _resolve(payload, cache: dict, retired: list):
    """Replace every :class:`SharedArrayRef` leaf with its numpy view."""
    protected = _ref_names(payload, set())
    return _resolve_inner(payload, cache, protected, retired)


def _resolve_inner(payload, cache: dict, protected: set, retired: list):
    if isinstance(payload, SharedArrayRef):
        return _attach(payload, cache, protected, retired)
    if isinstance(payload, dict):
        return {
            key: _resolve_inner(value, cache, protected, retired)
            for key, value in payload.items()
        }
    if isinstance(payload, (list, tuple)):
        resolved = [
            _resolve_inner(item, cache, protected, retired) for item in payload
        ]
        return type(payload)(resolved) if isinstance(payload, tuple) else resolved
    return payload


def _task_group(payload: dict):
    from repro.engine.kernels.grouping import GroupingAlgorithm, group_by

    start, stop = payload["start"], payload["stop"]
    keys = payload["keys"][start:stop]
    values = payload["values"]
    if values is not None:
        values = values[start:stop]
    result = group_by(
        keys,
        values,
        GroupingAlgorithm(payload["algorithm"]),
        num_distinct_hint=payload.get("num_distinct_hint"),
    )
    return {
        "keys": result.keys,
        "counts": result.counts,
        "sums": result.sums,
        "key_order": result.key_order.value,
    }


def _task_group_table(payload: dict):
    """One partial-aggregation morsel of the GroupBy operator: rebuild the
    table slice from shared views and run the serial partial kernel."""
    from repro.engine.operators.grouping import group_partial
    from repro.storage.table import Table

    start, stop = payload["start"], payload["stop"]
    table = Table.from_arrays(
        {name: array[start:stop] for name, array in payload["columns"].items()}
    )
    partial = _task_rebuild_specs(payload)
    result = group_partial(
        table,
        payload["key"],
        partial,
        payload["algorithm"],
        payload.get("num_distinct_hint"),
    )
    return {name: result[name] for name in result.schema.names}


def _task_rebuild_specs(payload: dict):
    from repro.engine.aggregates import AggregateFunction, AggregateSpec

    return [
        AggregateSpec(AggregateFunction(function), column, alias)
        for function, column, alias in payload["aggregates"]
    ]


def _task_probe(payload: dict):
    """Probe one shard of the probe side against the shared build
    structure (the sharded-probe half of the process parallel join)."""
    from repro.engine.kernels.joins import JoinAlgorithm, _expand_matches
    from repro.indexes.hash_table import OpenAddressingHashTable

    algorithm = JoinAlgorithm(payload["algorithm"])
    start, stop = payload["start"], payload["stop"]
    shard = payload["probe"][start:stop]
    if algorithm is JoinAlgorithm.BSJ:
        sorted_build = payload["sorted_build"]
        build_order = payload["build_order"]
        lo = np.searchsorted(sorted_build, shard, side="left")
        hi = np.searchsorted(sorted_build, shard, side="right")
        lengths = (hi - lo).astype(np.int64)
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return {"left": empty, "right": empty.copy()}
        probe_out = np.repeat(np.arange(shard.size, dtype=np.int64), lengths)
        boundaries = np.cumsum(lengths)
        ranks = np.arange(total, dtype=np.int64) - np.repeat(
            boundaries - lengths, lengths
        )
        left = build_order[np.repeat(lo, lengths) + ranks]
    else:
        if algorithm is JoinAlgorithm.HJ:
            table = OpenAddressingHashTable.from_state(
                payload["hash_name"],
                payload["bucket_keys"],
                payload["bucket_slots"],
                payload["slot_keys"],
                payload["num_slots"],
            )
            slots = table.probe(shard)
        else:  # SPHJ: the domain offsets are the whole structure.
            raw = shard - np.int64(payload["min_key"])
            in_domain = (raw >= 0) & (raw < payload["num_slots"])
            slots = np.where(in_domain, raw, -1)
        left, probe_out = _expand_matches(
            slots, payload["offsets"], payload["counts"], payload["grouped"]
        )
    return {
        "left": left.astype(np.int64),
        "right": probe_out + np.int64(start),
    }


def _task_join_partition(payload: dict):
    """One hash partition of an exchange join: a partition-local serial
    join; the parent maps local indices back through the permutations."""
    from repro.engine.kernels.joins import JoinAlgorithm, join

    build = payload["build"][payload["build_start"] : payload["build_stop"]]
    probe = payload["probe"][payload["probe_start"] : payload["probe_stop"]]
    result = join(
        build,
        probe,
        JoinAlgorithm(payload["algorithm"]),
        num_distinct_hint=payload.get("num_distinct_hint"),
    )
    return {"left": result.left_indices, "right": result.right_indices}


def _task_sleep(payload: dict):
    """Test hook: hold a worker busy (SIGKILL / cancellation coverage)."""
    time.sleep(float(payload["seconds"]))
    return payload.get("token")


_TASKS = {
    "group": _task_group,
    "group_table": _task_group_table,
    "probe": _task_probe,
    "join_partition": _task_join_partition,
    "sleep": _task_sleep,
}


def _worker_main(task_queue, result_queue, cancel_event, worker_name: str) -> None:
    # Workers never nest parallelism: whatever REPRO_WORKERS says in the
    # inherited environment, inside a worker everything runs serial.
    from repro.engine.parallel import ExecutorConfig, set_executor_config

    set_executor_config(ExecutorConfig(workers=1))
    cache: dict = {}
    retired: list = []  # evicted segments awaiting a safe close
    try:
        while True:
            item = task_queue.get()
            # Segments evicted during earlier tasks are only unmapped now:
            # their results have long been fed to the parent, so no view —
            # including any the result queue's feeder thread was still
            # pickling — can reference them anymore.
            for shm in retired:
                shm.close()
            retired.clear()
            if item is None:
                break
            batch_id, index, kind, payload, deadline = item
            started = time.perf_counter()
            try:
                if cancel_event.is_set():
                    result_queue.put(
                        (batch_id, index, "cancelled", None, worker_name, 0.0)
                    )
                    continue
                if deadline is not None and time.time() > deadline:
                    result_queue.put(
                        (batch_id, index, "deadline", None, worker_name, 0.0)
                    )
                    continue
                output = _TASKS[kind](_resolve(payload, cache, retired))
                result_queue.put(
                    (
                        batch_id,
                        index,
                        "ok",
                        output,
                        worker_name,
                        time.perf_counter() - started,
                    )
                )
            except BaseException as error:  # noqa: BLE001 - shipped to parent
                detail = {
                    "type": type(error).__name__,
                    "message": str(error),
                    "traceback": traceback.format_exc(),
                    "worker": worker_name,
                }
                result_queue.put(
                    (
                        batch_id,
                        index,
                        "error",
                        detail,
                        worker_name,
                        time.perf_counter() - started,
                    )
                )
    finally:
        for shm in retired:
            shm.close()
        for shm, __ in cache.values():
            shm.close()


def _rebuild_error(detail: dict) -> BaseException:
    """Reconstruct a worker-side exception parent-side by class name,
    falling back to :class:`ExecutionError` for anything unknown."""
    import repro.errors as errors_module

    kind = getattr(errors_module, detail.get("type", ""), None)
    message = (
        f"{detail.get('message', '')} "
        f"[in process worker {detail.get('worker', '?')}]"
    ).strip()
    if isinstance(kind, type) and issubclass(kind, Exception):
        try:
            return kind(message)
        except TypeError:
            pass
    return ExecutionError(
        f"{detail.get('type', 'Exception')}: {message}\n"
        f"{detail.get('traceback', '')}"
    )


# ---------------------------------------------------------------------------
# the pool


class ProcessPool:
    """A persistent pool of worker processes fed over a command queue.

    One batch runs at a time (``run_batch`` serialises on a lock — the
    engine schedules one parallel operator per plan node at a time, same
    as the thread pool's usage pattern).
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        method = start_method or os.environ.get("REPRO_PROC_START", "spawn")
        self._ctx = multiprocessing.get_context(method)
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._cancel = self._ctx.Event()
        self._batch_lock = threading.Lock()
        self._batch_id = 0
        self._broken = False
        self._workers = []
        for index in range(workers):
            name = f"{WORKER_PROCESS_PREFIX}-{index}"
            process = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, self._cancel, name),
                name=name,
                daemon=True,
            )
            process.start()
            self._workers.append(process)

    @property
    def workers(self) -> int:
        return len(self._workers)

    @property
    def broken(self) -> bool:
        """True once a worker died mid-batch; the pool must be rebuilt."""
        return self._broken

    def run_batch(self, tasks: Sequence[tuple], context=None) -> MorselReport:
        """Run ``(kind, payload)`` tasks; results in submission order.

        :param context: the governing
            :class:`~repro.service.context.QueryContext`, if any. Its
            deadline crosses the process boundary as an absolute
            wall-clock stamp; cancellation (and the first worker error)
            set the shared cancel event, so workers skip every remaining
            task of the batch, and the batch drains before re-raising.
        :raises WorkerCrashError: when a worker process dies mid-batch.
        """
        with self._batch_lock:
            if self._broken:
                raise WorkerCrashError(
                    "process pool is broken (a worker died); rebuild via "
                    "get_process_pool()"
                )
            return self._run_batch_locked(list(tasks), context)

    def _run_batch_locked(self, tasks: list, context) -> MorselReport:
        self._batch_id += 1
        batch_id = self._batch_id
        self._cancel.clear()
        deadline = None
        if context is not None:
            remaining = context.remaining()
            if remaining is not None:
                # Workers live in other processes: monotonic clocks don't
                # transfer, the wall clock does (close enough at morsel
                # granularity).
                deadline = time.time() + max(remaining, 0.0)
        tracer = get_tracer()
        span = None
        if tracer.enabled:
            span_tags = {
                "tasks": len(tasks),
                "workers": self.workers,
                "backend": "process",
            }
            if context is not None:
                span_tags["trace_id"] = context.trace_id
                span_tags["query_id"] = context.query_id
            span = tracer.span("parallel.process_batch", **span_tags)
        try:
            for index, (kind, payload) in enumerate(tasks):
                self._tasks.put((batch_id, index, kind, payload, deadline))
            return self._collect(batch_id, len(tasks), context)
        finally:
            if span is not None:
                span.end()

    def _collect(self, batch_id: int, expected: int, context) -> MorselReport:
        results = [None] * expected
        aborted: tuple[str, int] | None = None  # (status, index)
        first_error: BaseException | None = None
        busy_by_worker: dict[str, float] = {}
        received = 0
        cancel_sent = False
        drain_until: float | None = None
        while received < expected:
            if (
                context is not None
                and not cancel_sent
                and (context.cancelled or context.expired)
            ):
                self._cancel.set()
                cancel_sent = True
            try:
                item = self._results.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                dead = [w for w in self._workers if not w.is_alive()]
                if dead:
                    self._broken = True
                    self._cancel.set()
                    worker = dead[0]
                    raise WorkerCrashError(
                        f"process worker {worker.name} died mid-batch "
                        f"(exitcode {worker.exitcode})",
                        worker=worker.name,
                        exitcode=worker.exitcode,
                    )
                if drain_until is not None and time.time() > drain_until:
                    break
                continue
            item_batch, index, status, payload, worker, elapsed = item
            if item_batch != batch_id:
                continue  # stale result of an aborted earlier batch
            received += 1
            busy_by_worker[worker] = busy_by_worker.get(worker, 0.0) + elapsed
            if status == "ok":
                results[index] = payload
                continue
            if status == "error" and first_error is None:
                first_error = _rebuild_error(payload)
            if aborted is None:
                aborted = (status, index)
            if not cancel_sent:
                self._cancel.set()
                cancel_sent = True
            if drain_until is None:
                drain_until = time.time() + _DRAIN_SECONDS
        if first_error is not None:
            raise first_error
        if context is not None:
            context.check()  # raises QueryCancelled / DeadlineExceeded
        if aborted is not None:
            status, index = aborted
            if status == "deadline":
                raise DeadlineExceeded(
                    f"deadline passed before process task {index} started"
                )
            raise QueryCancelled(f"process task {index} was cancelled")
        busy_seconds = sum(busy_by_worker.values())
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("parallel.morsels", exist_ok=True).inc(expected)
            metrics.gauge("worker.busy_seconds", exist_ok=True).add(busy_seconds)
            for worker, seconds in sorted(busy_by_worker.items()):
                metrics.gauge(
                    f"worker.{worker}.busy_seconds", exist_ok=True
                ).add(seconds)
        return MorselReport(
            results=results,
            workers_used=min(self.workers, expected),
            busy_seconds=busy_seconds,
        )

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: poison pills, join, terminate stragglers."""
        self._cancel.set()
        for __ in self._workers:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):
                break
        for process in self._workers:
            process.join(timeout=timeout)
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for q in (self._tasks, self._results):
            q.cancel_join_thread()
            q.close()


_pool: ProcessPool | None = None
_pool_size = 0
_pool_lock = threading.Lock()
_pool_users = 0


def get_process_pool(workers: int) -> ProcessPool:
    """The shared pool, grown (never shrunk) to at least ``workers``;
    a broken pool (crashed worker) is torn down and rebuilt."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool.broken or _pool.workers < workers:
            old = _pool
            if old is not None:
                # Wait for any in-flight batch before poison-pilling the
                # old pool: tearing it down mid-batch would surface on
                # the other thread as a spurious WorkerCrashError. No
                # inversion risk — batch-holding threads never take
                # _pool_lock.
                with old._batch_lock:
                    old.shutdown(timeout=1.0)
            _pool_size = max(_pool_size, workers)
            _pool = ProcessPool(_pool_size)
        return _pool


def register_pool_user() -> None:
    """Count a long-lived pool/store user in (a :class:`QueryService`).

    Paired with :func:`release_pool_user`: the shared pool and its
    segments are only torn down when the *last* registered user releases,
    so stopping one of several services in a process never unlinks
    segments from under another's in-flight process-backend queries.
    """
    global _pool_users
    with _pool_lock:
        _pool_users += 1


def release_pool_user(release_segments: bool = True) -> None:
    """Release one :func:`register_pool_user` claim; the last release
    performs the full :func:`shutdown_process_pool` teardown."""
    global _pool_users
    with _pool_lock:
        _pool_users = max(0, _pool_users - 1)
        remaining = _pool_users
    if remaining == 0:
        shutdown_process_pool(release_segments)


def shutdown_process_pool(release_segments: bool = True) -> None:
    """Tear down the pool and (by default) unlink every shared segment.

    This is unconditional — refcounting services go through
    :func:`release_pool_user` instead. Tests and benchmarks call this in
    teardown and then assert :func:`leaked_segments` is empty; atexit
    runs it as the terminal sweep.
    """
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown()
        _pool = None
        _pool_size = 0
    if release_segments and _store is not None:
        _store.release_all()


atexit.register(shutdown_process_pool)


def run_process_tasks(
    tasks: Sequence[tuple], workers: int | None = None, context=None
) -> MorselReport:
    """Run ``(kind, payload)`` tasks on the shared process pool.

    The submitting thread's active query context governs the batch when
    ``context`` is None.
    """
    if workers is None:
        workers = get_executor_config().workers
    workers = max(int(workers), 1)
    if context is None:
        from repro.service.context import get_active_context

        context = get_active_context()
    return get_process_pool(workers).run_batch(tasks, context=context)


# ---------------------------------------------------------------------------
# process twins of the thread parallel kernels


def process_group_by(
    keys: np.ndarray,
    values: np.ndarray | None,
    algorithm,
    shards: int = 4,
    num_distinct_hint: int | None = None,
    workers: int | None = None,
    on_report=None,
):
    """Sharded grouping on the process pool; bit-identical to
    :func:`repro.engine.kernels.parallel.parallel_group_by` (both merge
    through the same key-sorting :func:`merge_partials`)."""
    from repro.engine.kernels.grouping import GroupingResult, KeyOrder, group_by
    from repro.engine.kernels.parallel import merge_partials

    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if shards <= 1 or keys.size == 0:
        return group_by(keys, values, algorithm, num_distinct_hint=num_distinct_hint)
    store = get_shared_store()
    keys_ref = store.publish(keys)
    values_ref = None
    if values is not None:
        values = np.ascontiguousarray(values)
        values_ref = store.publish(values)
    tasks = [
        (
            "group",
            {
                "keys": keys_ref,
                "values": values_ref,
                "start": start,
                "stop": stop,
                "algorithm": algorithm.value,
                "num_distinct_hint": num_distinct_hint,
            },
        )
        for start, stop in morsel_boundaries(keys.size, shards)
    ]
    report = run_process_tasks(tasks, workers=workers)
    if on_report is not None:
        on_report(report)
    partials = [
        GroupingResult(
            keys=r["keys"],
            counts=r["counts"],
            sums=r["sums"],
            key_order=KeyOrder(r["key_order"]),
        )
        for r in report.results
    ]
    return merge_partials(partials)


def process_join(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    algorithm,
    shards: int = 4,
    num_distinct_hint: int | None = None,
    workers: int | None = None,
    on_report=None,
):
    """Shared-build, sharded-probe join on the process pool.

    The parent erects the build structure once and publishes its arrays;
    every worker probes the *same* shared-memory structure. Output is
    probe-major in shard order — bit-identical to the serial and thread
    kernels.
    """
    from repro.engine.kernels.joins import (
        JoinAlgorithm,
        JoinOutputOrder,
        JoinResult,
        _group_build_rows,
        join,
    )
    from repro.engine.kernels.parallel import PARALLEL_PROBE_ALGORITHMS
    from repro.indexes.hash_table import OpenAddressingHashTable
    from repro.indexes.perfect_hash import StaticPerfectHash

    build_keys = np.ascontiguousarray(build_keys, dtype=np.int64)
    probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
    if (
        algorithm not in PARALLEL_PROBE_ALGORITHMS
        or shards <= 1
        or build_keys.size == 0
        or probe_keys.size == 0
    ):
        return join(
            build_keys, probe_keys, algorithm, num_distinct_hint=num_distinct_hint
        )
    store = get_shared_store()
    probe_ref = store.publish(probe_keys)
    base: dict = {"algorithm": algorithm.value, "probe": probe_ref}
    if algorithm is JoinAlgorithm.HJ:
        capacity = num_distinct_hint if num_distinct_hint else int(build_keys.size)
        table = OpenAddressingHashTable(capacity, hash_name="murmur3")
        build_slots = table.build(build_keys)
        offsets, counts, grouped = _group_build_rows(build_slots, table.num_keys)
        # Keep the structure arrays referenced for the whole batch: their
        # finalizers release the segments when this frame ends.
        bucket_keys = np.ascontiguousarray(table._bucket_keys)
        bucket_slots = np.ascontiguousarray(table._bucket_slots)
        slot_keys = np.ascontiguousarray(table._slot_keys[: table.num_keys])
        base.update(
            hash_name="murmur3",
            num_slots=table.num_keys,
            bucket_keys=store.publish(bucket_keys),
            bucket_slots=store.publish(bucket_slots),
            slot_keys=store.publish(slot_keys),
            offsets=store.publish(offsets),
            counts=store.publish(counts),
            grouped=store.publish(grouped),
        )
        structure = table.memory_bytes() + int(
            offsets.nbytes + counts.nbytes + grouped.nbytes
        )
        keepalive = (bucket_keys, bucket_slots, slot_keys, offsets, counts, grouped)
    elif algorithm is JoinAlgorithm.SPHJ:
        sph = StaticPerfectHash.for_keys(build_keys, min_density=0.5)
        build_slots = np.asarray(sph.slot(build_keys))
        offsets, counts, grouped = _group_build_rows(build_slots, sph.num_slots)
        base.update(
            min_key=int(sph.min_key),
            num_slots=int(sph.num_slots),
            offsets=store.publish(offsets),
            counts=store.publish(counts),
            grouped=store.publish(grouped),
        )
        structure = sph.memory_bytes() + int(
            offsets.nbytes + counts.nbytes + grouped.nbytes
        )
        keepalive = (offsets, counts, grouped)
    else:  # BSJ
        build_order = np.argsort(build_keys, kind="stable")
        sorted_build = build_keys[build_order]
        base.update(
            sorted_build=store.publish(sorted_build),
            build_order=store.publish(build_order),
        )
        structure = int(build_order.nbytes + sorted_build.nbytes)
        keepalive = (build_order, sorted_build)
    tasks = [
        ("probe", {**base, "start": start, "stop": stop})
        for start, stop in morsel_boundaries(probe_keys.size, shards)
    ]
    report = run_process_tasks(tasks, workers=workers)
    if on_report is not None:
        on_report(report)
    del keepalive
    left_parts = [r["left"] for r in report.results]
    right_parts = [r["right"] for r in report.results]
    return JoinResult(
        left_indices=np.concatenate(left_parts)
        if left_parts
        else np.empty(0, dtype=np.int64),
        right_indices=np.concatenate(right_parts)
        if right_parts
        else np.empty(0, dtype=np.int64),
        output_order=JoinOutputOrder.PROBE_ORDER,
        structure_bytes=structure,
    )
