"""Aggregate functions over slot assignments.

The paper's §4.1 kernels compute COUNT and SUM on the fly; the engine
generalises to the usual decomposable aggregates (§2.1 calls out
"distributive and/or decomposable aggregation functions" as what makes
running aggregates inside SPH arrays possible). Every aggregate here is
computed from the *same* per-row slot assignment that any of the five
grouping algorithms produced — aggregation is algorithm-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.storage.dtypes import DataType


class AggregateFunction(enum.Enum):
    """Supported aggregate functions. All are decomposable."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One requested aggregate: function, input column, and output name.

    ``COUNT`` takes no input column (``column=None`` means ``COUNT(*)``).
    """

    function: AggregateFunction
    column: str | None
    alias: str

    def __post_init__(self) -> None:
        needs_column = self.function is not AggregateFunction.COUNT
        if needs_column and self.column is None:
            raise ExecutionError(
                f"{self.function.value.upper()} requires an input column"
            )

    @property
    def output_dtype(self) -> DataType:
        """Logical type of the aggregate output column."""
        if self.function is AggregateFunction.COUNT:
            return DataType.INT64
        if self.function is AggregateFunction.AVG:
            return DataType.FLOAT64
        return DataType.INT64


def count_star(alias: str = "count") -> AggregateSpec:
    """``COUNT(*) AS alias``."""
    return AggregateSpec(AggregateFunction.COUNT, None, alias)


def sum_of(column: str, alias: str | None = None) -> AggregateSpec:
    """``SUM(column) AS alias``."""
    return AggregateSpec(AggregateFunction.SUM, column, alias or f"sum_{column}")


def min_of(column: str, alias: str | None = None) -> AggregateSpec:
    """``MIN(column) AS alias``."""
    return AggregateSpec(AggregateFunction.MIN, column, alias or f"min_{column}")


def max_of(column: str, alias: str | None = None) -> AggregateSpec:
    """``MAX(column) AS alias``."""
    return AggregateSpec(AggregateFunction.MAX, column, alias or f"max_{column}")


def avg_of(column: str, alias: str | None = None) -> AggregateSpec:
    """``AVG(column) AS alias``."""
    return AggregateSpec(AggregateFunction.AVG, column, alias or f"avg_{column}")


def compute_aggregate(
    spec: AggregateSpec,
    slots: np.ndarray,
    num_groups: int,
    values: np.ndarray | None,
) -> np.ndarray:
    """Evaluate one aggregate over a slot assignment.

    :param spec: what to compute.
    :param slots: per-row group slot ids (``0..num_groups-1``).
    :param num_groups: number of groups.
    :param values: the input column's values (None only for COUNT).
    :returns: one value per group, indexed by slot id.
    :raises ExecutionError: on a missing input column or an empty group
        for MIN/MAX (cannot happen for slot assignments produced by the
        grouping kernels, where every slot has at least one row).
    """
    if spec.function is AggregateFunction.COUNT:
        return np.bincount(slots, minlength=num_groups).astype(np.int64)
    if values is None:
        raise ExecutionError(
            f"aggregate {spec.alias!r} needs column {spec.column!r} values"
        )
    if values.size != slots.size:
        raise ExecutionError(
            f"aggregate input length {values.size} != slot count {slots.size}"
        )
    if spec.function is AggregateFunction.SUM:
        sums = np.bincount(
            slots, weights=values.astype(np.float64), minlength=num_groups
        )
        if np.issubdtype(values.dtype, np.integer):
            return np.rint(sums).astype(np.int64)
        return sums
    if spec.function is AggregateFunction.AVG:
        sums = np.bincount(
            slots, weights=values.astype(np.float64), minlength=num_groups
        )
        counts = np.bincount(slots, minlength=num_groups)
        if num_groups and int(counts.min()) == 0:
            raise ExecutionError("AVG over a slot with no rows")
        return sums / counts
    # MIN / MAX via unbuffered scatter-reduce.
    if spec.function is AggregateFunction.MIN:
        out = np.full(num_groups, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(out, slots, values.astype(np.int64))
    else:
        out = np.full(num_groups, np.iinfo(np.int64).min, dtype=np.int64)
        np.maximum.at(out, slots, values.astype(np.int64))
    counts = np.bincount(slots, minlength=num_groups)
    if num_groups and int(counts.min()) == 0:
        raise ExecutionError(
            f"{spec.function.value.upper()} over a slot with no rows"
        )
    return out
