"""The morsel scheduler: a shared worker pool for intra-operator parallelism.

Morsel-driven parallelism ([14] Leis et al.) splits an operator's input
into fixed-size *morsels* and lets a pool of workers pull them; the
engine's vectorised kernels release the GIL inside numpy, so CPython
threads achieve genuine wall-clock speedup on multi-core hosts.

This module owns the process-wide pieces:

* :class:`ExecutorConfig` — worker count and morsel sizing, settable via
  ``REPRO_WORKERS`` (environment), :func:`set_executor_config`, or the
  scoped :func:`parallel_execution` context manager;
* one lazily-created, shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (named ``repro-worker-N`` threads) that every parallel operator
  schedules onto — one pool per process, as in the morsel paper;
* :func:`run_morsels` — the scheduling primitive: submit a list of
  morsel thunks, collect results *in submission order* (determinism),
  and attribute per-worker busy time to the process-wide metrics
  (``parallel.morsels``, ``worker.busy_seconds``) and tracer
  (``parallel.morsel`` spans).

Degenerate cases run inline on the calling thread: a single morsel, a
one-worker configuration, or a call made *from* a worker thread (nested
parallelism would deadlock a bounded pool; morsels stay coarse instead).

Service integration: :func:`run_morsels` captures the submitting
thread's :class:`~repro.service.context.QueryContext` (if any) and
re-installs it inside each worker, polling it before every morsel — so
deadlines and cancellation propagate into parallel execution at morsel
granularity. When a task fails (or a poll raises), every not-yet-started
future in the batch is cancelled and the batch is drained before the
error re-raises: no orphaned futures keep computing for a dead query.
Pool threads are daemonic, so a ``KeyboardInterrupt`` can always exit
the process even while morsels are in flight.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import CancelledError, Future
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import ConfigurationError, ExecutionError
from repro.obs.runtime import get_metrics, get_tracer
from repro.service.context import activate_context, get_active_context

T = TypeVar("T")

#: thread-name prefix of pool workers; also the nested-scheduling sentinel.
WORKER_THREAD_PREFIX = "repro-worker"

#: default rows per morsel — large enough that numpy kernel time dominates
#: scheduling overhead, small enough to load-balance across workers.
DEFAULT_MORSEL_ROWS = 65_536

#: inputs below this row count are not worth scheduling: the kernels
#: finish in tens of microseconds, under the pool's dispatch latency.
DEFAULT_MIN_PARALLEL_ROWS = 32_768

#: execution backends an operator's parallel loop can run on.
BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ExecutorConfig:
    """Process-wide parallel-execution settings.

    ``workers=1`` (the default) keeps every operator on the serial code
    path — the engine behaves exactly as before this module existed.
    """

    #: workers available to morsel scheduling (>= 1).
    workers: int = 1
    #: target rows per morsel when an operator auto-splits its input.
    morsel_rows: int = DEFAULT_MORSEL_ROWS
    #: inputs smaller than this stay serial even when workers > 1.
    min_parallel_rows: int = DEFAULT_MIN_PARALLEL_ROWS
    #: parallel loops run on pool threads ("thread") or on the shared
    #: process pool ("process", see :mod:`repro.engine.procpool`).
    backend: str = "thread"

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ConfigurationError(
                f"workers must be an integer, got {self.workers!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.morsel_rows < 1:
            raise ConfigurationError(
                f"morsel_rows must be >= 1, got {self.morsel_rows}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )

    @staticmethod
    def from_env() -> "ExecutorConfig":
        """The configuration implied by the environment.

        ``REPRO_WORKERS`` sets the worker count; zero, negative, or
        non-integer values raise :class:`ConfigurationError` — a typo'd
        deployment must fail loudly, not silently run serial.
        ``REPRO_MORSEL_ROWS`` overrides the morsel size and
        ``REPRO_BACKEND`` selects ``thread`` (default) or ``process``.
        """
        raw_workers = os.environ.get("REPRO_WORKERS", "1")
        try:
            workers = int(raw_workers)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be a positive integer, got {raw_workers!r}"
            ) from None
        if workers < 1:
            raise ConfigurationError(
                f"REPRO_WORKERS must be >= 1, got {raw_workers!r}"
            )
        try:
            morsel_rows = int(
                os.environ.get("REPRO_MORSEL_ROWS", str(DEFAULT_MORSEL_ROWS))
            )
        except ValueError:
            morsel_rows = DEFAULT_MORSEL_ROWS
        backend = os.environ.get("REPRO_BACKEND", "thread").strip().lower()
        return ExecutorConfig(
            workers=workers, morsel_rows=max(morsel_rows, 1), backend=backend
        )


_config: ExecutorConfig | None = None
_config_lock = threading.Lock()
_config_local = threading.local()
_pool: "_MorselPool | None" = None
_pool_size = 0
_pool_lock = threading.Lock()


def get_executor_config() -> ExecutorConfig:
    """The active configuration (initialised from the environment once).

    A thread-scoped :func:`parallel_execution` override, when present,
    wins over the process-wide configuration — so concurrent sessions
    can run with different worker counts without racing on a global.
    """
    override = getattr(_config_local, "config", None)
    if override is not None:
        return override
    global _config
    if _config is None:
        with _config_lock:
            if _config is None:
                _config = ExecutorConfig.from_env()
    return _config


def set_executor_config(config: ExecutorConfig) -> None:
    """Replace the process-wide configuration."""
    global _config
    with _config_lock:
        _config = config


@contextmanager
def parallel_execution(workers: int) -> Iterator[ExecutorConfig]:
    """Scoped worker-count override: restores the prior setting on exit.

    The override is *thread-local*: it governs plans driven from the
    calling thread only, so two sessions executing concurrently with
    different ``workers`` never observe each other's setting.
    """
    previous = getattr(_config_local, "config", None)
    config = replace(get_executor_config(), workers=max(int(workers), 1))
    _config_local.config = config
    try:
        yield config
    finally:
        _config_local.config = previous


class _MorselPool:
    """A shared pool of daemonic worker threads with cancellable futures.

    Deliberately not a :class:`~concurrent.futures.ThreadPoolExecutor`:
    its threads are non-daemonic (since Python 3.9) and joined at
    interpreter exit, so a ``KeyboardInterrupt`` mid-batch used to hang
    the process until every submitted morsel finished. This pool keeps
    the same ``submit() -> Future`` surface but starts daemon threads,
    so pending work never blocks process exit, and a pending future's
    ``cancel()`` genuinely prevents its task from starting.
    """

    def __init__(self, workers: int) -> None:
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._work,
                name=f"{WORKER_THREAD_PREFIX}-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def workers(self) -> int:
        return len(self._threads)

    def submit(self, fn: Callable, *args) -> Future:
        future: Future = Future()
        self._queue.put((future, fn, args))
        return future

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            future, fn, args = item
            if not future.set_running_or_notify_cancel():
                continue  # cancelled while pending: never runs
            try:
                future.set_result(fn(*args))
            except BaseException as error:  # noqa: BLE001 - delivered via future
                future.set_exception(error)

    def shutdown(self, wait: bool = True) -> None:
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)


def _get_pool(workers: int) -> _MorselPool:
    """The shared pool, grown (never shrunk) to at least ``workers``."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool_size = max(_pool_size, workers)
            _pool = _MorselPool(_pool_size)
        return _pool


def shutdown_pool() -> None:
    """Tear down the shared pool (tests / interpreter shutdown)."""
    global _pool, _pool_size
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_size = 0


def on_worker_thread() -> bool:
    """True when the calling thread is a pool worker (nested scheduling
    from here would deadlock a bounded pool — run inline instead)."""
    return threading.current_thread().name.startswith(WORKER_THREAD_PREFIX)


@dataclass
class MorselReport:
    """What :func:`run_morsels` did: results plus scheduling facts."""

    #: one result per task, in submission order.
    results: list
    #: workers the batch was scheduled across (1 = ran inline, serial).
    workers_used: int = 1
    #: summed wall time the tasks spent executing (across all workers).
    busy_seconds: float = 0.0


def run_morsels(
    tasks: Sequence[Callable[[], T]],
    workers: int | None = None,
) -> MorselReport:
    """Run morsel ``tasks`` and return their results in submission order.

    :param tasks: zero-argument callables, one per morsel.
    :param workers: worker-count override; defaults to the process-wide
        :func:`get_executor_config` value.
    :returns: a :class:`MorselReport`; ``results[i]`` is ``tasks[i]()``.

    Exceptions propagate: on the first failing task (or a deadline /
    cancellation poll firing), every not-yet-started future in the batch
    is cancelled, the already-running morsels are drained, and the first
    error re-raises — the pool is left empty, with no orphaned futures.

    Runs inline — on the calling thread, sequentially — when fewer than
    two tasks or workers are involved, or when called from a worker
    thread (nested parallelism). The submitting thread's active
    :class:`~repro.service.context.QueryContext` governs both paths: it
    is polled before every morsel, inline or pooled.
    """
    tasks = list(tasks)
    if workers is None:
        workers = get_executor_config().workers
    workers = max(int(workers), 1)
    context = get_active_context()
    if len(tasks) <= 1 or workers == 1 or on_worker_thread():
        started = time.perf_counter()
        results = []
        for task in tasks:
            if context is not None:
                context.check()
            results.append(task())
        return MorselReport(
            results=results,
            workers_used=1,
            busy_seconds=time.perf_counter() - started,
        )

    metrics = get_metrics()
    tracer = get_tracer()
    busy_lock = threading.Lock()
    busy_by_worker: dict[str, float] = {}

    def timed(task: Callable[[], T], index: int) -> T:
        worker = threading.current_thread().name
        with activate_context(context):
            if context is not None:
                context.check()
            started = time.perf_counter()
            if tracer.enabled:
                span_tags = {"index": index, "worker": worker}
                if context is not None:
                    # Morsels run on pool threads: the span carries the
                    # scheduling query's trace id so one id stitches the
                    # whole request together across threads.
                    span_tags["trace_id"] = context.trace_id
                    span_tags["query_id"] = context.query_id
                with tracer.span("parallel.morsel", **span_tags):
                    result = task()
            else:
                result = task()
        elapsed = time.perf_counter() - started
        with busy_lock:
            busy_by_worker[worker] = busy_by_worker.get(worker, 0.0) + elapsed
        return result

    pool = _get_pool(workers)
    futures = [
        pool.submit(timed, task, index) for index, task in enumerate(tasks)
    ]
    results = []
    first_error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except CancelledError:
            results.append(None)  # cancelled below, after the first error
        except BaseException as error:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = error
                for pending in futures:
                    pending.cancel()
            results.append(None)
    if first_error is not None:
        raise first_error
    busy_seconds = sum(busy_by_worker.values())
    if metrics.enabled:
        metrics.counter("parallel.morsels", exist_ok=True).inc(len(tasks))
        metrics.gauge("worker.busy_seconds", exist_ok=True).add(busy_seconds)
        for worker, seconds in sorted(busy_by_worker.items()):
            metrics.gauge(
                f"worker.{worker}.busy_seconds", exist_ok=True
            ).add(seconds)
    return MorselReport(
        results=results,
        workers_used=min(workers, len(tasks)),
        busy_seconds=busy_seconds,
    )


def morsel_boundaries(num_rows: int, morsels: int) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` splits of ``num_rows``.

    Empty splits are dropped, so fewer than ``morsels`` pairs may return.
    """
    if morsels < 1:
        raise ExecutionError(f"morsels must be >= 1, got {morsels}")
    bounds = []
    for index in range(morsels):
        start = num_rows * index // morsels
        stop = num_rows * (index + 1) // morsels
        if stop > start:
            bounds.append((start, stop))
    return bounds
