"""Figure 1, executable: textbook-style hash-based grouping.

This is a line-for-line Python transcription of the paper's Figure 1
pseudo-code, using the chained hash table (the ``std::unordered_map``
analogue). It exists to make the paper's critique *runnable*: this
implementation bakes in all five design decisions §1 enumerates —

1. an internal hash table, of an unspecified kind (here: chained);
2. serial, tuple-at-a-time inserts;
3. serial, group-wise aggregation;
4. a fully materialised input relation parameter;
5. two blocking phases (load everything, then aggregate).

It is used for pedagogy and as a correctness oracle for the vectorised
kernels — never for benchmarking (DESIGN.md substitution #1).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.indexes.hash_table import ChainedHashTable


def textbook_hash_grouping(
    relation: Iterable[Sequence],
    grouping_key: int,
    aggregate: Callable[[list[Sequence]], tuple],
) -> list[tuple]:
    """``HashBasedGrouping(Relation R, groupingKey)`` from Figure 1.

    :param relation: the fully materialised input, as row tuples
        (decision 4: the signature demands materialisation).
    :param grouping_key: index of the grouping-key attribute in each row.
    :param aggregate: maps the list of rows of one group to one result row.
    :returns: one aggregated row per group, in hash-table key order —
        the "unknown order" of §2.1.
    """
    # 1. HashMap hm; Relation result = {};
    hm = ChainedHashTable()
    result: list[tuple] = []
    # 2.-6. Insert all tuples from input R into HashMap hm (serially):
    for row in relation:
        key = int(row[grouping_key])
        if key in hm:  # 3. If r.groupingKey in hm:
            hm.probe(key).append(row)  # 4. hm.probe(...) ∪= {r}
        else:
            hm.insert(key, [row])  # 6. hm.insert(r.groupingKey, {r})
    # 7.-8. Build aggregates for each existing key in hm (group-wise):
    for key in hm.key_set():
        result.append(aggregate(hm.probe(key)))
    # 9. Return result;
    return result


def count_sum_aggregate(key_position: int, value_position: int) -> Callable:
    """An aggregate callback producing ``(key, COUNT(*), SUM(value))`` rows
    — the aggregates the paper's §4.1 experiments compute."""

    def aggregate(rows: list[Sequence]) -> tuple:
        key = int(rows[0][key_position])
        count = len(rows)
        total = sum(int(row[value_position]) for row in rows)
        return key, count, total

    return aggregate
