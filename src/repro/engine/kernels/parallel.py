"""Morsel-style parallel grouping (Figure 3e's "parallel load").

Figure 3(e) unnests grouping into *SPH + parallel load*; the MOLECULE-level
``loop`` parameter of the physiological lattice chooses serial vs parallel.
This module implements the parallel variant the way morsel-driven engines
do ([14] Leis et al.): the input splits into shards (morsels), each shard
is grouped independently with the chosen algorithm, and the decomposable
partial aggregates (§2.1) are merged.

Per DESIGN.md substitution #6 the shards run sequentially — Python's GIL
would invert the paper's intent — so this is a *simulation* that exercises
the exact code structure (independent partials + merge) and measures the
merge overhead honestly; wall-clock speedup is out of scope.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels.grouping import (
    GroupingAlgorithm,
    GroupingResult,
    KeyOrder,
    group_by,
)
from repro.errors import PreconditionError


def merge_partials(partials: list[GroupingResult]) -> GroupingResult:
    """Merge per-shard grouping results into one.

    COUNT and SUM are distributive, so merging is grouping the
    concatenated partial rows again, summing both aggregates. The merged
    result is key-sorted (the merge itself sorts).
    """
    non_empty = [partial for partial in partials if partial.num_groups]
    if not non_empty:
        return GroupingResult(
            keys=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            sums=np.empty(0, dtype=np.int64),
            key_order=KeyOrder.SORTED,
        )
    all_keys = np.concatenate([partial.keys for partial in non_empty])
    all_counts = np.concatenate([partial.counts for partial in non_empty])
    all_sums = np.concatenate([partial.sums for partial in non_empty])
    merged_keys, inverse = np.unique(all_keys, return_inverse=True)
    counts = np.bincount(
        inverse, weights=all_counts.astype(np.float64), minlength=merged_keys.size
    )
    sums = np.bincount(
        inverse, weights=all_sums.astype(np.float64), minlength=merged_keys.size
    )
    sums_out = (
        np.rint(sums).astype(np.int64)
        if np.issubdtype(all_sums.dtype, np.integer)
        else sums
    )
    return GroupingResult(
        keys=merged_keys.astype(np.int64),
        counts=np.rint(counts).astype(np.int64),
        sums=sums_out,
        key_order=KeyOrder.SORTED,
    )


def parallel_group_by(
    keys: np.ndarray,
    values: np.ndarray | None,
    algorithm: GroupingAlgorithm,
    shards: int = 4,
    num_distinct_hint: int | None = None,
) -> GroupingResult:
    """Group via independent shard-local runs plus a merge.

    :param keys: grouping key per row.
    :param values: SUM input per row, or None.
    :param algorithm: the per-shard implementation.
    :param shards: number of morsels; 1 degenerates to the serial kernel.
    :param num_distinct_hint: known global NDV (sizes per-shard HG tables).
    :raises PreconditionError: if ``shards`` < 1, or the per-shard
        algorithm's own precondition fails on some shard (note: sharding
        *preserves* clusteredness only within shards — a run crossing a
        shard boundary splits into two partial groups, which the merge
        re-combines, so OG over sorted input remains correct).
    """
    if shards < 1:
        raise PreconditionError(f"shards must be >= 1, got {shards}")
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if shards == 1 or keys.size == 0:
        return group_by(
            keys, values, algorithm, num_distinct_hint=num_distinct_hint
        )
    boundaries = np.linspace(0, keys.size, shards + 1, dtype=np.int64)
    partials = []
    for index in range(shards):
        start, stop = int(boundaries[index]), int(boundaries[index + 1])
        if start == stop:
            continue
        shard_values = values[start:stop] if values is not None else None
        partials.append(
            group_by(
                keys[start:stop],
                shard_values,
                algorithm,
                num_distinct_hint=num_distinct_hint,
            )
        )
    return merge_partials(partials)
