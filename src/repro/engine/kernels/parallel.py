"""Morsel-parallel grouping and join kernels (Figure 3e's "parallel load").

Figure 3(e) unnests grouping into *SPH + parallel load*; the MOLECULE-level
``loop`` parameter of the physiological lattice chooses serial vs parallel.
This module implements the parallel variants the way morsel-driven engines
do ([14] Leis et al.): the input splits into shards (morsels), each shard
runs independently on the shared worker pool
(:mod:`repro.engine.parallel`), and the results are combined:

* **grouping** — each shard is grouped with the chosen algorithm and the
  decomposable partial aggregates (§2.1) are merged exactly;
* **join** — the build-side structure is erected once, then read-only
  shared across workers that probe contiguous probe shards; the
  probe-major outputs concatenate back in shard order, so the result is
  bit-identical to the serial kernel's.

The numpy kernels release the GIL, so on a multi-core host the shards
genuinely overlap; with one worker (the default) everything runs inline
on the calling thread, preserving serial behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels.grouping import (
    GroupingAlgorithm,
    GroupingResult,
    KeyOrder,
    group_by,
)
from repro.engine.kernels.joins import (
    JoinAlgorithm,
    JoinOutputOrder,
    JoinResult,
    _expand_matches,
    _group_build_rows,
    join,
)
from repro.engine.parallel import morsel_boundaries, run_morsels
from repro.errors import PreconditionError
from repro.indexes.hash_table import OpenAddressingHashTable, murmur3_finalizer
from repro.indexes.perfect_hash import StaticPerfectHash

#: join algorithms whose probe phase shards safely: the build structure is
#: read-only during probing and output is probe-major, so concatenating
#: shard outputs reproduces the serial result exactly. OJ/SOJ interleave
#: both inputs and fall back to the serial kernel.
PARALLEL_PROBE_ALGORITHMS = frozenset(
    {JoinAlgorithm.HJ, JoinAlgorithm.SPHJ, JoinAlgorithm.BSJ}
)

#: grouping algorithms an exchange partition can run locally. Hash
#: partitioning destroys both clusteredness (OG) and key-domain density
#: (SPHG), so only the order-insensitive families survive repartitioning.
EXCHANGE_GROUPING_ALGORITHMS = frozenset(
    {GroupingAlgorithm.HG, GroupingAlgorithm.SOG, GroupingAlgorithm.BSG}
)

#: join algorithms an exchange partition can run locally. Partition-local
#: HJ and BSJ both emit build-row-ascending ties, which is what makes the
#: restored probe order bit-identical to the serial kernels; SPHJ fails
#: on the sparse per-partition domains, OJ/SOJ need pre-sorted inputs.
EXCHANGE_JOIN_ALGORITHMS = frozenset({JoinAlgorithm.HJ, JoinAlgorithm.BSJ})


def merge_partials(partials: list[GroupingResult]) -> GroupingResult:
    """Merge per-shard grouping results into one.

    COUNT and SUM are distributive, so merging is grouping the
    concatenated partial rows again, summing both aggregates. The merged
    result is key-sorted (the merge itself sorts).

    Integer counts and sums merge with exact int64 ``np.add.at`` — a
    float64 detour (e.g. ``np.bincount`` weights) would silently round
    partial sums at magnitudes >= 2**53.
    """
    non_empty = [partial for partial in partials if partial.num_groups]
    if not non_empty:
        return GroupingResult(
            keys=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            sums=np.empty(0, dtype=np.int64),
            key_order=KeyOrder.SORTED,
        )
    all_keys = np.concatenate([partial.keys for partial in non_empty])
    all_counts = np.concatenate([partial.counts for partial in non_empty])
    all_sums = np.concatenate([partial.sums for partial in non_empty])
    merged_keys, inverse = np.unique(all_keys, return_inverse=True)
    counts = np.zeros(merged_keys.size, dtype=np.int64)
    np.add.at(counts, inverse, all_counts.astype(np.int64))
    if np.issubdtype(all_sums.dtype, np.integer):
        sums_out = np.zeros(merged_keys.size, dtype=np.int64)
        np.add.at(sums_out, inverse, all_sums.astype(np.int64))
    else:
        sums_out = np.bincount(
            inverse, weights=all_sums, minlength=merged_keys.size
        )
    return GroupingResult(
        keys=merged_keys.astype(np.int64),
        counts=counts,
        sums=sums_out,
        key_order=KeyOrder.SORTED,
    )


def parallel_group_by(
    keys: np.ndarray,
    values: np.ndarray | None,
    algorithm: GroupingAlgorithm,
    shards: int = 4,
    num_distinct_hint: int | None = None,
    workers: int | None = None,
) -> GroupingResult:
    """Group via independent shard-local runs plus a merge.

    :param keys: grouping key per row.
    :param values: SUM input per row, or None.
    :param algorithm: the per-shard implementation.
    :param shards: number of morsels; 1 degenerates to the serial kernel.
    :param num_distinct_hint: known global NDV (sizes per-shard HG tables).
    :param workers: worker threads to schedule shards on; defaults to the
        process-wide :func:`repro.engine.parallel.get_executor_config`
        value (1 = run the shards inline, serially).
    :raises PreconditionError: if ``shards`` < 1, or the per-shard
        algorithm's own precondition fails on some shard (note: sharding
        *preserves* clusteredness only within shards — a run crossing a
        shard boundary splits into two partial groups, which the merge
        re-combines, so OG over sorted input remains correct).
    """
    if shards < 1:
        raise PreconditionError(f"shards must be >= 1, got {shards}")
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if shards == 1 or keys.size == 0:
        return group_by(
            keys, values, algorithm, num_distinct_hint=num_distinct_hint
        )

    def shard_task(start: int, stop: int):
        shard_values = values[start:stop] if values is not None else None
        return group_by(
            keys[start:stop],
            shard_values,
            algorithm,
            num_distinct_hint=num_distinct_hint,
        )

    tasks = [
        (lambda s=start, e=stop: shard_task(s, e))
        for start, stop in morsel_boundaries(keys.size, shards)
    ]
    report = run_morsels(tasks, workers=workers)
    return merge_partials(report.results)


def parallel_join(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    algorithm: JoinAlgorithm,
    shards: int = 4,
    num_distinct_hint: int | None = None,
    workers: int | None = None,
    on_report=None,
) -> JoinResult:
    """Shared-build, sharded-probe join: the morsel-parallel join form.

    The build side's structure (hash table / SPH array / sorted array)
    is erected once on the calling thread; probe morsels then scan it
    read-only in parallel. Because HJ/SPHJ/BSJ expand matches
    probe-major, concatenating the shard outputs in shard order yields
    exactly the serial kernel's output.

    OJ and SOJ merge both inputs in lockstep — there is no read-only
    shared structure to probe — so they fall back to the serial kernel.

    :param on_report: optional callback receiving the scheduling
        :class:`~repro.engine.parallel.MorselReport` (operators use it to
        attribute per-node parallelism degree and worker busy time).
    :raises PreconditionError: if ``shards`` < 1, or the underlying
        kernel's precondition fails (e.g. SPHJ over a sparse domain).
    """
    if shards < 1:
        raise PreconditionError(f"shards must be >= 1, got {shards}")
    if algorithm not in PARALLEL_PROBE_ALGORITHMS:
        return join(
            build_keys,
            probe_keys,
            algorithm,
            num_distinct_hint=num_distinct_hint,
        )
    build_keys = np.ascontiguousarray(build_keys, dtype=np.int64)
    probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
    if shards == 1 or build_keys.size == 0 or probe_keys.size == 0:
        return join(
            build_keys,
            probe_keys,
            algorithm,
            num_distinct_hint=num_distinct_hint,
        )

    if algorithm is JoinAlgorithm.HJ:
        capacity = (
            num_distinct_hint if num_distinct_hint else int(build_keys.size)
        )
        table = OpenAddressingHashTable(capacity, hash_name="murmur3")
        build_slots = table.build(build_keys)
        offsets, counts, grouped = _group_build_rows(
            build_slots, table.num_keys
        )
        structure = table.memory_bytes() + int(
            offsets.nbytes + counts.nbytes + grouped.nbytes
        )

        def probe_slots_of(shard: np.ndarray) -> np.ndarray:
            return table.probe(shard)

    elif algorithm is JoinAlgorithm.SPHJ:
        sph = StaticPerfectHash.for_keys(build_keys, min_density=0.5)
        build_slots = np.asarray(sph.slot(build_keys))
        offsets, counts, grouped = _group_build_rows(
            build_slots, sph.num_slots
        )
        structure = sph.memory_bytes() + int(
            offsets.nbytes + counts.nbytes + grouped.nbytes
        )

        def probe_slots_of(shard: np.ndarray) -> np.ndarray:
            raw = shard - np.int64(sph.min_key)
            in_domain = (raw >= 0) & (raw < sph.num_slots)
            return np.where(in_domain, raw, -1)

    else:  # BSJ: a sorted copy of the build keys is the shared structure.
        build_order = np.argsort(build_keys, kind="stable")
        sorted_build = build_keys[build_order]
        structure = int(build_order.nbytes + sorted_build.nbytes)

    def probe_shard(start: int, stop: int):
        shard = probe_keys[start:stop]
        if algorithm is JoinAlgorithm.BSJ:
            lo = np.searchsorted(sorted_build, shard, side="left")
            hi = np.searchsorted(sorted_build, shard, side="right")
            lengths = (hi - lo).astype(np.int64)
            total = int(lengths.sum())
            if total == 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty.copy()
            probe_out = np.repeat(
                np.arange(shard.size, dtype=np.int64), lengths
            )
            boundaries = np.cumsum(lengths)
            ranks = np.arange(total, dtype=np.int64) - np.repeat(
                boundaries - lengths, lengths
            )
            left = build_order[np.repeat(lo, lengths) + ranks]
        else:
            left, probe_out = _expand_matches(
                probe_slots_of(shard), offsets, counts, grouped
            )
        return left.astype(np.int64), probe_out + np.int64(start)

    bounds = morsel_boundaries(probe_keys.size, shards)
    tasks = [
        (lambda s=start, e=stop: probe_shard(s, e)) for start, stop in bounds
    ]
    report = run_morsels(tasks, workers=workers)
    if on_report is not None:
        on_report(report)
    left_parts = [left for left, __ in report.results]
    right_parts = [right for __, right in report.results]
    return JoinResult(
        left_indices=np.concatenate(left_parts)
        if left_parts
        else np.empty(0, dtype=np.int64),
        right_indices=np.concatenate(right_parts)
        if right_parts
        else np.empty(0, dtype=np.int64),
        output_order=JoinOutputOrder.PROBE_ORDER,
        structure_bytes=structure,
    )


# ---------------------------------------------------------------------------
# exchange (hash repartition) kernels


def hash_partition(
    keys: np.ndarray, partitions: int
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Stable hash partitioning: the Exchange operator's shuffle.

    Rows are assigned ``murmur3(key) % partitions`` and stably reordered
    so each partition is one contiguous run; equal keys always land in
    the same partition, and within a partition the original row order is
    preserved (the bit-identity invariant of the exchange kernels).

    :returns: ``(order, bounds)`` — the permutation to apply to every
        row-aligned array, and per-partition ``[start, stop)`` ranges
        into the permuted arrays (empty partitions yield empty ranges).
    """
    if partitions < 1:
        raise PreconditionError(f"partitions must be >= 1, got {partitions}")
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    assignment = (murmur3_finalizer(keys) % np.uint64(partitions)).astype(
        np.int64
    )
    order = np.argsort(assignment, kind="stable")
    counts = np.bincount(assignment, minlength=partitions)
    edges = np.concatenate([[0], np.cumsum(counts)])
    bounds = [
        (int(edges[i]), int(edges[i + 1])) for i in range(partitions)
    ]
    return order, bounds


def exchange_group_by(
    keys: np.ndarray,
    values: np.ndarray | None,
    algorithm: GroupingAlgorithm,
    workers: int | None = None,
    num_distinct_hint: int | None = None,
    backend: str = "thread",
    on_report=None,
) -> GroupingResult:
    """Grouping through an exchange: hash-partition, group each partition
    locally, concatenate the disjoint partials through the sorting merge.

    Unlike the sharding loop of :func:`parallel_group_by`, partitions are
    disjoint in key space, so the merge never combines partial groups —
    it only interleaves sorted key runs. The payoff the cost model sees:
    no ``workers x num_groups`` merge blow-up at huge NDV.

    :raises PreconditionError: for algorithms repartitioning breaks
        (see :data:`EXCHANGE_GROUPING_ALGORITHMS`).
    """
    if algorithm not in EXCHANGE_GROUPING_ALGORITHMS:
        raise PreconditionError(
            f"exchange grouping cannot run {algorithm.value!r} locally: "
            "hash partitioning destroys clusteredness and density"
        )
    from repro.engine.parallel import get_executor_config

    if workers is None:
        workers = get_executor_config().workers
    workers = max(int(workers), 1)
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if workers == 1 or keys.size == 0:
        return group_by(keys, values, algorithm, num_distinct_hint=num_distinct_hint)
    order, bounds = hash_partition(keys, workers)
    part_keys = keys[order]
    part_values = (
        np.ascontiguousarray(values)[order] if values is not None else None
    )
    if backend == "process":
        from repro.engine.procpool import get_shared_store, run_process_tasks

        store = get_shared_store()
        keys_ref = store.publish(part_keys)
        values_ref = (
            store.publish(part_values) if part_values is not None else None
        )
        tasks = [
            (
                "group",
                {
                    "keys": keys_ref,
                    "values": values_ref,
                    "start": start,
                    "stop": stop,
                    "algorithm": algorithm.value,
                    "num_distinct_hint": num_distinct_hint,
                },
            )
            for start, stop in bounds
            if stop > start
        ]
        report = run_process_tasks(tasks, workers=workers)
        partials = [
            GroupingResult(
                keys=r["keys"],
                counts=r["counts"],
                sums=r["sums"],
                key_order=KeyOrder(r["key_order"]),
            )
            for r in report.results
        ]
    else:
        tasks = [
            (
                lambda s=start, e=stop: group_by(
                    part_keys[s:e],
                    part_values[s:e] if part_values is not None else None,
                    algorithm,
                    num_distinct_hint=num_distinct_hint,
                )
            )
            for start, stop in bounds
            if stop > start
        ]
        report = run_morsels(tasks, workers=workers)
        partials = report.results
    if on_report is not None:
        on_report(report)
    return merge_partials(partials)


def exchange_join(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    algorithm: JoinAlgorithm,
    workers: int | None = None,
    num_distinct_hint: int | None = None,
    backend: str = "thread",
    on_report=None,
) -> JoinResult:
    """Join through an exchange: hash-partition *both* sides, join each
    partition locally with the serial kernel, then restore probe order.

    Equal keys co-locate, so the partition-local joins are exhaustive;
    carrying global row ids through the partition permutations and
    stable-sorting the concatenated matches by global probe row restores
    the serial kernels' probe-major output bit-for-bit (ties stay
    build-ascending: all matches of one probe row live in one partition,
    where the local kernel already emits them ascending). Unlike the
    shared-build :func:`parallel_join`, the *build* phase parallelises
    too — the niche the cost model prices it for.

    :raises PreconditionError: for algorithms repartitioning breaks
        (see :data:`EXCHANGE_JOIN_ALGORITHMS`).
    """
    if algorithm not in EXCHANGE_JOIN_ALGORITHMS:
        raise PreconditionError(
            f"exchange join cannot run {algorithm.value!r} locally: "
            "partitioning breaks its precondition or tie order"
        )
    from repro.engine.parallel import get_executor_config

    if workers is None:
        workers = get_executor_config().workers
    workers = max(int(workers), 1)
    build_keys = np.ascontiguousarray(build_keys, dtype=np.int64)
    probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
    if workers == 1 or build_keys.size == 0 or probe_keys.size == 0:
        return join(
            build_keys, probe_keys, algorithm, num_distinct_hint=num_distinct_hint
        )
    build_order, build_bounds = hash_partition(build_keys, workers)
    probe_order, probe_bounds = hash_partition(probe_keys, workers)
    part_build = build_keys[build_order]
    part_probe = probe_keys[probe_order]
    ranges = [
        (bs, be, ps, pe)
        for (bs, be), (ps, pe) in zip(build_bounds, probe_bounds)
        # A partition with no build rows matches nothing; one with no
        # probe rows emits nothing. Either way there is no work.
        if pe > ps and be > bs
    ]
    if backend == "process":
        from repro.engine.procpool import get_shared_store, run_process_tasks

        store = get_shared_store()
        build_ref = store.publish(part_build)
        probe_ref = store.publish(part_probe)
        tasks = [
            (
                "join_partition",
                {
                    "build": build_ref,
                    "probe": probe_ref,
                    "build_start": bs,
                    "build_stop": be,
                    "probe_start": ps,
                    "probe_stop": pe,
                    "algorithm": algorithm.value,
                    "num_distinct_hint": num_distinct_hint,
                },
            )
            for bs, be, ps, pe in ranges
        ]
        report = run_process_tasks(tasks, workers=workers)
        locals_ = [(r["left"], r["right"]) for r in report.results]
    else:
        tasks = [
            (
                lambda b0=bs, b1=be, p0=ps, p1=pe: (
                    lambda r: (r.left_indices, r.right_indices)
                )(
                    join(
                        part_build[b0:b1],
                        part_probe[p0:p1],
                        algorithm,
                        num_distinct_hint=num_distinct_hint,
                    )
                )
            )
            for bs, be, ps, pe in ranges
        ]
        report = run_morsels(tasks, workers=workers)
        locals_ = report.results
    if on_report is not None:
        on_report(report)
    left_parts = []
    right_parts = []
    structure = int(
        build_order.nbytes
        + probe_order.nbytes
        + part_build.nbytes
        + part_probe.nbytes
    )
    for (bs, be, ps, pe), (left_local, right_local) in zip(ranges, locals_):
        left_parts.append(build_order[bs + left_local])
        right_parts.append(probe_order[ps + right_local])
    if left_parts:
        left_all = np.concatenate(left_parts)
        right_all = np.concatenate(right_parts)
    else:
        left_all = np.empty(0, dtype=np.int64)
        right_all = np.empty(0, dtype=np.int64)
    restore = np.argsort(right_all, kind="stable")
    return JoinResult(
        left_indices=left_all[restore].astype(np.int64),
        right_indices=right_all[restore].astype(np.int64),
        output_order=JoinOutputOrder.PROBE_ORDER,
        structure_bytes=structure,
    )
