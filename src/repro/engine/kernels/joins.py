"""The five join implementations corresponding to Table 2.

Footnote 1 of the paper: *"a join is merely a co-group-operation with
exactly two inputs"* — so every §4.1 grouping algorithm has a join
counterpart, and Table 2 costs all five:

=====  ====================================================  ==============
name   build / probe strategy                                output order
=====  ====================================================  ==============
HJ     hash table on the build side, stream the probe side   probe side's
SPHJ   dense-domain direct array on the build side           probe side's
OJ     merge of two key-sorted inputs                        key-ascending
SOJ    sort both inputs, then OJ                              key-ascending
BSJ    sorted build array, binary-search every probe          probe side's
=====  ====================================================  ==============

All kernels are equi-joins returning matching row-index pairs. The "output
order" column is the crucial DQO plan property behind Figure 5: HJ/SPHJ/BSJ
stream the probe input and hence *preserve its row order* (DESIGN.md
substitution #5a), while OJ/SOJ emit key order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import PreconditionError
from repro.indexes.hash_table import OpenAddressingHashTable
from repro.indexes.perfect_hash import StaticPerfectHash


class JoinAlgorithm(enum.Enum):
    """The five join implementation variants of Table 2."""

    HJ = "hash"
    SPHJ = "static_perfect_hash"
    OJ = "order"  # merge join over pre-sorted inputs
    SOJ = "sort_order"  # sort-merge join
    BSJ = "binary_search"


class JoinOutputOrder(enum.Enum):
    """Row-order guarantee of a join kernel's output."""

    #: matches appear in probe-side (right input) row order.
    PROBE_ORDER = "probe_order"
    #: matches appear in ascending join-key order.
    KEY_SORTED = "key_sorted"


@dataclass(frozen=True)
class JoinResult:
    """Matching row-index pairs of an equi-join."""

    #: indices into the left (build) input, one per output row.
    left_indices: np.ndarray
    #: indices into the right (probe) input, one per output row.
    right_indices: np.ndarray
    output_order: JoinOutputOrder
    #: bytes of the build-side structure the kernel erected (hash table,
    #: SPH array, sort permutations, ...) — Table 2's footprint column.
    structure_bytes: int = 0

    @property
    def num_rows(self) -> int:
        """Number of matches."""
        return int(self.left_indices.size)

    def memory_bytes(self) -> int:
        """Total bytes: the index-pair arrays plus the build structure."""
        return (
            int(self.left_indices.nbytes)
            + int(self.right_indices.nbytes)
            + self.structure_bytes
        )

    def canonical_pairs(self) -> list[tuple[int, int]]:
        """Sorted (left, right) index pairs, for comparing join kernels."""
        return sorted(
            zip(self.left_indices.tolist(), self.right_indices.tolist())
        )


def _expand_matches(
    probe_slots: np.ndarray,
    slot_offsets: np.ndarray,
    slot_counts: np.ndarray,
    build_rows_grouped: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-probe slot hits into (build_row, probe_row) pairs.

    ``build_rows_grouped`` lists build row ids grouped by slot;
    ``slot_offsets[s] .. slot_offsets[s] + slot_counts[s]`` is slot ``s``'s
    range in it. Probes with slot -1 produce no output. The expansion is
    probe-major, preserving probe order.
    """
    hit = probe_slots >= 0
    hit_rows = np.flatnonzero(hit)
    hit_slots = probe_slots[hit_rows]
    lengths = slot_counts[hit_slots]
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    probe_out = np.repeat(hit_rows, lengths)
    # Per output row, its rank within its probe's match list:
    boundaries = np.cumsum(lengths)
    ranks = np.arange(total, dtype=np.int64) - np.repeat(
        boundaries - lengths, lengths
    )
    starts = np.repeat(slot_offsets[hit_slots], lengths)
    build_out = build_rows_grouped[starts + ranks]
    return build_out.astype(np.int64), probe_out.astype(np.int64)


def _group_build_rows(
    build_slots: np.ndarray, num_slots: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group build row ids by slot: returns (offsets, counts, grouped rows)."""
    counts = np.bincount(build_slots, minlength=num_slots).astype(np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    order = np.argsort(build_slots, kind="stable")
    return offsets, counts, order.astype(np.int64)


def hash_join(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    num_distinct_hint: int | None = None,
    hash_name: str = "murmur3",
) -> JoinResult:
    """HJ: build a hash table on ``build_keys``, stream ``probe_keys``.

    Handles duplicate keys on both sides (full inner equi-join semantics).
    Output preserves probe order — the property Figure 5's 2.8x case rests
    on (DESIGN.md substitution #5a).
    """
    build_keys = np.ascontiguousarray(build_keys, dtype=np.int64)
    probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinResult(empty, empty.copy(), JoinOutputOrder.PROBE_ORDER)
    capacity = num_distinct_hint if num_distinct_hint else int(build_keys.size)
    table = OpenAddressingHashTable(capacity, hash_name=hash_name)
    build_slots = table.build(build_keys)
    offsets, counts, grouped = _group_build_rows(build_slots, table.num_keys)
    probe_slots = table.probe(probe_keys)
    left, right = _expand_matches(probe_slots, offsets, counts, grouped)
    structure = table.memory_bytes() + int(
        offsets.nbytes + counts.nbytes + grouped.nbytes
    )
    return JoinResult(
        left, right, JoinOutputOrder.PROBE_ORDER, structure_bytes=structure
    )


def perfect_hash_join(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    min_density: float = 0.5,
) -> JoinResult:
    """SPHJ: dense-domain direct-array join (Table 2's SPHJ).

    The build side's key domain must be dense; the probe side streams and
    indexes directly into the array, so output preserves probe order.

    :raises PreconditionError: when the build-side domain is too sparse.
    """
    build_keys = np.ascontiguousarray(build_keys, dtype=np.int64)
    probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinResult(empty, empty.copy(), JoinOutputOrder.PROBE_ORDER)
    sph = StaticPerfectHash.for_keys(build_keys, min_density=min_density)
    build_slots = np.asarray(sph.slot(build_keys))
    offsets, counts, grouped = _group_build_rows(build_slots, sph.num_slots)
    raw = probe_keys - np.int64(sph.min_key)
    in_domain = (raw >= 0) & (raw < sph.num_slots)
    probe_slots = np.where(in_domain, raw, -1)
    left, right = _expand_matches(probe_slots, offsets, counts, grouped)
    structure = sph.memory_bytes() + int(
        offsets.nbytes + counts.nbytes + grouped.nbytes
    )
    return JoinResult(
        left, right, JoinOutputOrder.PROBE_ORDER, structure_bytes=structure
    )


def merge_join(
    left_keys: np.ndarray, right_keys: np.ndarray, validate: bool = False
) -> JoinResult:
    """OJ: merge two key-sorted inputs (Table 2's OJ).

    :param validate: verify both inputs are sorted (one extra pass each).
    :raises PreconditionError: when ``validate`` and an input is unsorted.
    """
    left_keys = np.ascontiguousarray(left_keys, dtype=np.int64)
    right_keys = np.ascontiguousarray(right_keys, dtype=np.int64)
    if validate:
        for name, keys in (("left", left_keys), ("right", right_keys)):
            if keys.size > 1 and not bool(np.all(keys[:-1] <= keys[1:])):
                raise PreconditionError(
                    f"merge join requires sorted inputs; {name} is unsorted"
                )
    if left_keys.size == 0 or right_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinResult(empty, empty.copy(), JoinOutputOrder.KEY_SORTED)
    # For each right row, its matching left range [lo, hi).
    lo = np.searchsorted(left_keys, right_keys, side="left")
    hi = np.searchsorted(left_keys, right_keys, side="right")
    lengths = (hi - lo).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinResult(empty, empty.copy(), JoinOutputOrder.KEY_SORTED)
    right_out = np.repeat(
        np.arange(right_keys.size, dtype=np.int64), lengths
    )
    boundaries = np.cumsum(lengths)
    ranks = np.arange(total, dtype=np.int64) - np.repeat(
        boundaries - lengths, lengths
    )
    left_out = np.repeat(lo, lengths) + ranks
    # Right keys are sorted, so probe-major expansion IS key order here.
    return JoinResult(
        left_out.astype(np.int64),
        right_out,
        JoinOutputOrder.KEY_SORTED,
        structure_bytes=int(lo.nbytes + hi.nbytes),
    )


def sort_merge_join(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> JoinResult:
    """SOJ: sort both inputs, then merge (Table 2's SOJ)."""
    left_keys = np.ascontiguousarray(left_keys, dtype=np.int64)
    right_keys = np.ascontiguousarray(right_keys, dtype=np.int64)
    left_order = np.argsort(left_keys, kind="stable")
    right_order = np.argsort(right_keys, kind="stable")
    merged = merge_join(left_keys[left_order], right_keys[right_order])
    return JoinResult(
        left_indices=left_order[merged.left_indices],
        right_indices=right_order[merged.right_indices],
        output_order=JoinOutputOrder.KEY_SORTED,
        # SOJ pays for both sort permutations on top of OJ's structure.
        structure_bytes=int(left_order.nbytes + right_order.nbytes)
        + merged.structure_bytes,
    )


def binary_search_join(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> JoinResult:
    """BSJ: sorted array on the build side, binary-search each probe
    (Table 2's BSJ). Output preserves probe order."""
    build_keys = np.ascontiguousarray(build_keys, dtype=np.int64)
    probe_keys = np.ascontiguousarray(probe_keys, dtype=np.int64)
    if build_keys.size == 0 or probe_keys.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinResult(empty, empty.copy(), JoinOutputOrder.PROBE_ORDER)
    build_order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[build_order]
    lo = np.searchsorted(sorted_build, probe_keys, side="left")
    hi = np.searchsorted(sorted_build, probe_keys, side="right")
    lengths = (hi - lo).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinResult(empty, empty.copy(), JoinOutputOrder.PROBE_ORDER)
    probe_out = np.repeat(np.arange(probe_keys.size, dtype=np.int64), lengths)
    boundaries = np.cumsum(lengths)
    ranks = np.arange(total, dtype=np.int64) - np.repeat(
        boundaries - lengths, lengths
    )
    left_out = build_order[np.repeat(lo, lengths) + ranks]
    return JoinResult(
        left_out.astype(np.int64),
        probe_out,
        JoinOutputOrder.PROBE_ORDER,
        structure_bytes=int(
            build_order.nbytes + sorted_build.nbytes + lo.nbytes + hi.nbytes
        ),
    )


def join(
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
    algorithm: JoinAlgorithm,
    num_distinct_hint: int | None = None,
    validate: bool = False,
) -> JoinResult:
    """Dispatch to the chosen Table 2 join kernel."""
    if algorithm is JoinAlgorithm.HJ:
        return hash_join(build_keys, probe_keys, num_distinct_hint)
    if algorithm is JoinAlgorithm.SPHJ:
        return perfect_hash_join(build_keys, probe_keys)
    if algorithm is JoinAlgorithm.OJ:
        return merge_join(build_keys, probe_keys, validate=validate)
    if algorithm is JoinAlgorithm.SOJ:
        return sort_merge_join(build_keys, probe_keys)
    if algorithm is JoinAlgorithm.BSJ:
        return binary_search_join(build_keys, probe_keys)
    raise PreconditionError(f"unknown join algorithm: {algorithm!r}")


#: Kernel function per algorithm (for harnesses that sweep them).
JOIN_KERNELS = {
    JoinAlgorithm.HJ: hash_join,
    JoinAlgorithm.SPHJ: perfect_hash_join,
    JoinAlgorithm.OJ: merge_join,
    JoinAlgorithm.SOJ: sort_merge_join,
    JoinAlgorithm.BSJ: binary_search_join,
}
