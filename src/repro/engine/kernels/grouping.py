"""The five grouping implementations of §4.1, as vectorised kernels.

Each §4.1 algorithm factors into two stages:

1. a **slot assignment** — map every input row to a dense group slot id
   (this stage is where the algorithms differ: hash table, perfect hash,
   run detection, sort + run detection, or binary search);
2. an **aggregation** over slots — the paper's kernels compute COUNT and
   SUM on the fly into an array; here stage 2 is shared ``bincount``-based
   code so that the *measured difference between algorithms is exactly the
   slot-assignment difference*, as in the paper.

Per DESIGN.md substitution #1 all five are implemented at the same batch
abstraction level; their relative costs then mirror the paper's:

=====  ==========================================  ===================
name   slot assignment                             asymptotic per row
=====  ==========================================  ===================
HG     open-addressing hash table, Murmur3         O(1) + random access
SPHG   ``key - min_key`` (static perfect hash)     O(1) sequential
OG     run boundary detection (requires clustered) O(1) sequential
SOG    full sort, then OG                          O(log n)
BSG    binary search in sorted key array           O(log #groups)
=====  ==========================================  ===================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro._util.arrays import runs_of
from repro.errors import PreconditionError
from repro.indexes.hash_table import OpenAddressingHashTable
from repro.indexes.perfect_hash import StaticPerfectHash


class GroupingAlgorithm(enum.Enum):
    """The five grouping implementation variants of §4.1."""

    #: Hash-based Grouping — ``std::unordered_map`` + Murmur3 in the paper.
    HG = "hash"
    #: Static Perfect Hash-based Grouping — key as array offset.
    SPHG = "static_perfect_hash"
    #: Order-based Grouping — requires input clustered by the key.
    OG = "order"
    #: Sort & Order-based Grouping — sort first, then OG.
    SOG = "sort_order"
    #: Binary Search-based Grouping — sorted key array + binary search.
    BSG = "binary_search"


class KeyOrder(enum.Enum):
    """Order in which a grouping result's group keys are produced.

    §2.1's local-vs-global discussion hinges on this: a blackbox hash
    table yields an order *"we have to assume ... is unordered to be on
    the safe side"*, whereas SPH/order/binary-search variants yield sorted
    or first-occurrence orders the optimiser may exploit downstream.
    """

    #: group keys ascending.
    SORTED = "sorted"
    #: group keys in order of first appearance in the input.
    FIRST_OCCURRENCE = "first_occurrence"
    #: no usable guarantee (blackbox hash table order).
    UNSPECIFIED = "unspecified"


@dataclass(frozen=True)
class GroupingAssignment:
    """Stage-1 output: per-row slot ids plus the slot -> key mapping."""

    #: for each input row, the dense id of its group (``0..num_groups-1``).
    slots: np.ndarray
    #: for each slot id, the group key it represents.
    group_keys: np.ndarray
    #: guaranteed order of :attr:`group_keys`.
    key_order: KeyOrder
    #: bytes of the auxiliary structure stage 1 built (hash table, SPH
    #: array, sort order, ...) — the Table 1 footprint of the algorithm.
    structure_bytes: int = 0

    @property
    def num_groups(self) -> int:
        """Number of groups."""
        return int(self.group_keys.size)

    def memory_bytes(self) -> int:
        """Total bytes: the slot/key arrays plus the stage-1 structure."""
        return (
            int(self.slots.nbytes)
            + int(self.group_keys.nbytes)
            + self.structure_bytes
        )


@dataclass(frozen=True)
class GroupingResult:
    """Stage-2 output: one row per group with COUNT and SUM aggregates."""

    #: distinct group keys, in :attr:`key_order` order.
    keys: np.ndarray
    #: COUNT(*) per group.
    counts: np.ndarray
    #: SUM(value) per group; all zeros when no value column was given.
    sums: np.ndarray
    key_order: KeyOrder

    @property
    def num_groups(self) -> int:
        """Number of groups."""
        return int(self.keys.size)

    def sorted_by_key(self) -> "GroupingResult":
        """A canonical (key-ascending) copy, for comparing results across
        algorithms with different output orders."""
        if self.key_order is KeyOrder.SORTED:
            return self
        order = np.argsort(self.keys, kind="stable")
        return GroupingResult(
            keys=self.keys[order],
            counts=self.counts[order],
            sums=self.sums[order],
            key_order=KeyOrder.SORTED,
        )


# ---------------------------------------------------------------------------
# Stage 1: slot assignment, one function per §4.1 algorithm.
# ---------------------------------------------------------------------------


def hash_slots(
    keys: np.ndarray,
    num_distinct_hint: int | None = None,
    hash_name: str = "murmur3",
) -> GroupingAssignment:
    """HG slot assignment: insert every key into a hash table (§4.1 HG).

    :param num_distinct_hint: the paper *"always assume[s] the number of
        distinct values to be known"*; when omitted, the table is sized
        pessimistically at ``len(keys)``.
    :param hash_name: MOLECULE-level hash-function choice (Table 1).
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    capacity = num_distinct_hint if num_distinct_hint else max(int(keys.size), 1)
    table = OpenAddressingHashTable(capacity, hash_name=hash_name)
    slots = table.build(keys) if keys.size else np.empty(0, dtype=np.int64)
    return GroupingAssignment(
        slots=slots,
        group_keys=table.slot_keys(),
        # Insertion order is an artefact of hash + arrival order; per §2.1
        # a consumer must treat it as unordered.
        key_order=KeyOrder.UNSPECIFIED,
        structure_bytes=table.memory_bytes(),
    )


def perfect_hash_slots(
    keys: np.ndarray,
    min_key: int | None = None,
    max_key: int | None = None,
    min_density: float = 0.5,
) -> GroupingAssignment:
    """SPHG slot assignment: the key *is* the slot (§4.1 SPHG, §2.1).

    :param min_key: domain lower bound; measured from the data if omitted.
    :param max_key: domain upper bound; measured from the data if omitted.
    :param min_density: density guard threshold (see
        :class:`repro.indexes.perfect_hash.StaticPerfectHash`).
    :raises PreconditionError: on an empty input with no explicit domain,
        or on a too-sparse domain.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if min_key is None or max_key is None:
        if keys.size == 0:
            raise PreconditionError(
                "perfect_hash_slots on empty input requires an explicit domain"
            )
        min_key = int(keys.min()) if min_key is None else min_key
        max_key = int(keys.max()) if max_key is None else max_key
    sph = StaticPerfectHash(min_key, max_key, min_density=0.0)
    raw_slots = sph.slot_checked(keys)
    occupancy = np.bincount(raw_slots, minlength=sph.num_slots)
    occupied = occupancy > 0
    num_occupied = int(np.count_nonzero(occupied))
    if sph.num_slots and num_occupied / sph.num_slots < min_density:
        raise PreconditionError(
            "static perfect hashing requires a dense key domain: density "
            f"{num_occupied / sph.num_slots:.4f} < required {min_density:.4f}"
        )
    structure_bytes = sph.memory_bytes()
    if num_occupied == sph.num_slots:
        # Minimal SPH: slots are exactly the compacted key domain.
        slots = raw_slots
        group_keys = sph.key_of_slot(np.arange(sph.num_slots, dtype=np.int64))
    else:
        # Non-minimal: compact away the unused slots.
        compaction = np.cumsum(occupied) - 1
        slots = compaction[raw_slots]
        group_keys = sph.key_of_slot(np.flatnonzero(occupied).astype(np.int64))
        structure_bytes += int(compaction.nbytes)
    return GroupingAssignment(
        slots=slots.astype(np.int64),
        group_keys=np.asarray(group_keys, dtype=np.int64),
        key_order=KeyOrder.SORTED,
        structure_bytes=structure_bytes,
    )


def order_slots(keys: np.ndarray, validate: bool = False) -> GroupingAssignment:
    """OG slot assignment: runs of equal keys are the groups (§4.1 OG).

    Precondition: the input is *clustered* ("partitioned by the grouping
    key"); a globally sorted input satisfies this.

    :param validate: verify the clustering precondition (costs one extra
        pass); when false, violating the precondition silently produces
        one group per run, i.e. duplicate group keys.
    :raises PreconditionError: when ``validate`` and the input is not
        clustered.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    starts, run_values = runs_of(keys)
    if validate and run_values.size != np.unique(run_values).size:
        raise PreconditionError(
            "order-based grouping requires input clustered by the grouping key"
        )
    boundaries = np.append(starts, keys.size)
    lengths = np.diff(boundaries)
    slots = np.repeat(
        np.arange(run_values.size, dtype=np.int64), lengths
    )
    sorted_keys = bool(
        run_values.size <= 1 or np.all(run_values[:-1] < run_values[1:])
    )
    return GroupingAssignment(
        slots=slots,
        group_keys=run_values.astype(np.int64),
        key_order=KeyOrder.SORTED if sorted_keys else KeyOrder.FIRST_OCCURRENCE,
        # OG inspects run boundaries only; no auxiliary structure beyond
        # the per-run arrays.
        structure_bytes=int(starts.nbytes) + int(lengths.nbytes),
    )


def sort_order_slots(keys: np.ndarray) -> GroupingAssignment:
    """SOG slot assignment: sort, then OG (§4.1 SOG).

    The returned slots refer to the *original* row positions, so downstream
    aggregation is identical to every other algorithm's.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_assignment = order_slots(keys[order])
    slots = np.empty(keys.size, dtype=np.int64)
    slots[order] = sorted_assignment.slots
    return GroupingAssignment(
        slots=slots,
        group_keys=sorted_assignment.group_keys,
        key_order=KeyOrder.SORTED,
        # SOG pays for the sort permutation on top of OG's run arrays.
        structure_bytes=int(order.nbytes)
        + sorted_assignment.structure_bytes,
    )


def binary_search_slots(
    keys: np.ndarray, distinct_keys: np.ndarray | None = None
) -> GroupingAssignment:
    """BSG slot assignment: binary search in a sorted key array (§4.1 BSG).

    :param distinct_keys: the sorted distinct grouping keys, when known
        (the paper assumes NDV is known; knowing the keys themselves is the
        analogous AV-style precomputation). Derived from the input when
        omitted.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if distinct_keys is None:
        distinct_keys = np.unique(keys)
    else:
        distinct_keys = np.ascontiguousarray(distinct_keys, dtype=np.int64)
        if distinct_keys.size > 1 and not bool(
            np.all(distinct_keys[:-1] < distinct_keys[1:])
        ):
            raise PreconditionError(
                "distinct_keys must be strictly increasing"
            )
    slots = np.searchsorted(distinct_keys, keys)
    if keys.size and (
        int(slots.max(initial=0)) >= distinct_keys.size
        or not bool(np.all(distinct_keys[slots] == keys))
    ):
        raise PreconditionError("input key not present in distinct_keys")
    return GroupingAssignment(
        slots=slots.astype(np.int64),
        group_keys=distinct_keys,
        key_order=KeyOrder.SORTED,
        structure_bytes=int(distinct_keys.nbytes),
    )


# ---------------------------------------------------------------------------
# Stage 2: shared aggregation, plus the one-call kernels.
# ---------------------------------------------------------------------------


def aggregate_assignment(
    assignment: GroupingAssignment, values: np.ndarray | None
) -> GroupingResult:
    """Compute COUNT and SUM per group from a slot assignment."""
    num_groups = assignment.num_groups
    counts = np.bincount(assignment.slots, minlength=num_groups).astype(np.int64)
    if values is None:
        sums = np.zeros(num_groups, dtype=np.int64)
    else:
        values = np.asarray(values)
        if values.size != assignment.slots.size:
            raise PreconditionError(
                f"values length {values.size} != keys length "
                f"{assignment.slots.size}"
            )
        sums_f = np.bincount(
            assignment.slots, weights=values.astype(np.float64), minlength=num_groups
        )
        if np.issubdtype(values.dtype, np.integer):
            sums = np.rint(sums_f).astype(np.int64)
        else:
            sums = sums_f
    return GroupingResult(
        keys=assignment.group_keys,
        counts=counts,
        sums=sums,
        key_order=assignment.key_order,
    )


def group_by(
    keys: np.ndarray,
    values: np.ndarray | None,
    algorithm: GroupingAlgorithm,
    num_distinct_hint: int | None = None,
    validate: bool = False,
) -> GroupingResult:
    """Group ``keys`` with the chosen §4.1 algorithm, computing COUNT + SUM.

    This is the function the Figure 4 benchmarks time.

    :param keys: grouping key per row.
    :param values: SUM input per row, or None for COUNT-only.
    :param algorithm: which of the five implementations to run.
    :param num_distinct_hint: known NDV (sizes HG's table).
    :param validate: verify algorithm preconditions (OG clustering).
    :raises PreconditionError: when the algorithm's precondition fails
        (SPHG on sparse domains always fails; OG only fails when
        ``validate`` is set).
    """
    if algorithm is GroupingAlgorithm.HG:
        assignment = hash_slots(keys, num_distinct_hint)
    elif algorithm is GroupingAlgorithm.SPHG:
        assignment = perfect_hash_slots(keys)
    elif algorithm is GroupingAlgorithm.OG:
        assignment = order_slots(keys, validate=validate)
    elif algorithm is GroupingAlgorithm.SOG:
        assignment = sort_order_slots(keys)
    elif algorithm is GroupingAlgorithm.BSG:
        assignment = binary_search_slots(keys)
    else:
        raise PreconditionError(f"unknown grouping algorithm: {algorithm!r}")
    return aggregate_assignment(assignment, values)


#: Slot-assignment function per algorithm (for harnesses that sweep them).
GROUPING_KERNELS = {
    GroupingAlgorithm.HG: hash_slots,
    GroupingAlgorithm.SPHG: perfect_hash_slots,
    GroupingAlgorithm.OG: order_slots,
    GroupingAlgorithm.SOG: sort_order_slots,
    GroupingAlgorithm.BSG: binary_search_slots,
}
