"""Vectorised numpy kernels — the algorithm implementations benchmarked in
Figure 4 (grouping) and costed in Table 2 (grouping + joins)."""

from repro.engine.kernels.grouping import (
    GROUPING_KERNELS,
    GroupingAlgorithm,
    GroupingAssignment,
    GroupingResult,
    KeyOrder,
    aggregate_assignment,
    binary_search_slots,
    group_by,
    hash_slots,
    order_slots,
    perfect_hash_slots,
    sort_order_slots,
)
from repro.engine.kernels.parallel import (
    PARALLEL_PROBE_ALGORITHMS,
    merge_partials,
    parallel_group_by,
    parallel_join,
)
from repro.engine.kernels.rle_grouping import rle_compress_with_sums, rle_group_by
from repro.engine.kernels.joins import (
    JOIN_KERNELS,
    JoinAlgorithm,
    JoinOutputOrder,
    JoinResult,
    binary_search_join,
    hash_join,
    join,
    merge_join,
    perfect_hash_join,
    sort_merge_join,
)

__all__ = [
    "GROUPING_KERNELS",
    "GroupingAlgorithm",
    "GroupingAssignment",
    "GroupingResult",
    "JOIN_KERNELS",
    "JoinAlgorithm",
    "JoinOutputOrder",
    "JoinResult",
    "KeyOrder",
    "aggregate_assignment",
    "binary_search_join",
    "binary_search_slots",
    "group_by",
    "hash_join",
    "hash_slots",
    "join",
    "merge_join",
    "merge_partials",
    "order_slots",
    "PARALLEL_PROBE_ALGORITHMS",
    "parallel_group_by",
    "parallel_join",
    "perfect_hash_join",
    "rle_compress_with_sums",
    "rle_group_by",
    "perfect_hash_slots",
    "sort_merge_join",
    "sort_order_slots",
]
