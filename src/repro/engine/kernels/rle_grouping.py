"""Grouping directly over run-length-encoded columns.

§2.2 lists *"compressed (and how exactly?)"* among the DQO plan
properties. Here is the payoff for knowing *exactly how*: an RLE column
is physically clustered by value, so grouping degenerates to aggregating
run metadata — COUNT is a sum of run lengths, touching ``num_runs``
elements instead of ``decoded_size``. On well-compressed data this is the
largest constant-factor win in the whole kernel zoo, and it is only
reachable if the optimiser knows the compression scheme, not just
"compressed: yes".
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernels.grouping import GroupingResult, KeyOrder
from repro.errors import PreconditionError
from repro.storage.rle import RunLengthEncoded


def rle_group_by(
    encoded: RunLengthEncoded,
    run_value_sums: np.ndarray | None = None,
) -> GroupingResult:
    """Group an RLE column without decoding it.

    :param encoded: the run-length encoded grouping keys.
    :param run_value_sums: optional per-run sums of a payload column
        (aligned with ``encoded.values``); when given, the result's SUM
        aggregates are computed from them. Producing per-run payload sums
        is the storage layer's job when it RLE-compresses a table region.
    :returns: COUNT (and SUM) per distinct key, key-ascending.
    :raises PreconditionError: if ``run_value_sums`` misaligns.
    """
    if run_value_sums is not None and run_value_sums.shape != encoded.values.shape:
        raise PreconditionError(
            f"run_value_sums shape {run_value_sums.shape} does not match "
            f"runs {encoded.values.shape}"
        )
    if encoded.num_runs == 0:
        return GroupingResult(
            keys=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            sums=np.empty(0, dtype=np.int64),
            key_order=KeyOrder.SORTED,
        )
    keys, inverse = np.unique(encoded.values, return_inverse=True)
    counts = np.bincount(
        inverse, weights=encoded.lengths.astype(np.float64), minlength=keys.size
    )
    if run_value_sums is None:
        sums = np.zeros(keys.size, dtype=np.int64)
    else:
        raw = np.bincount(
            inverse,
            weights=run_value_sums.astype(np.float64),
            minlength=keys.size,
        )
        sums = (
            np.rint(raw).astype(np.int64)
            if np.issubdtype(run_value_sums.dtype, np.integer)
            else raw
        )
    return GroupingResult(
        keys=keys.astype(np.int64),
        counts=np.rint(counts).astype(np.int64),
        sums=sums,
        key_order=KeyOrder.SORTED,
    )


def rle_compress_with_sums(
    keys: np.ndarray, values: np.ndarray
) -> tuple[RunLengthEncoded, np.ndarray]:
    """RLE-compress ``keys`` and keep per-run sums of ``values`` — what a
    storage layer materialises so :func:`rle_group_by` can aggregate
    without touching row data."""
    from repro.storage.rle import rle_encode

    if keys.shape != values.shape:
        raise PreconditionError(
            f"keys shape {keys.shape} does not match values {values.shape}"
        )
    encoded = rle_encode(keys)
    if encoded.num_runs == 0:
        return encoded, np.empty(0, dtype=values.dtype)
    boundaries = np.concatenate([[0], np.cumsum(encoded.lengths)])
    run_sums = np.add.reduceat(values, boundaries[:-1])
    return encoded, run_sums
