"""Scalar expressions evaluated over chunks.

A small, explicit expression tree: column references, literals, arithmetic,
comparisons, and boolean connectives. Expressions evaluate vectorised
against a chunk (a mapping of column name to numpy array) and are used by
filter and projection operators and by the SQL frontend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ExecutionError

#: evaluation context: column name -> values for the current chunk.
ChunkData = Mapping[str, np.ndarray]


class Expression:
    """Base class of all scalar expressions."""

    def evaluate(self, chunk: ChunkData) -> np.ndarray:
        """Evaluate against one chunk, returning one value per row."""
        raise NotImplementedError

    def referenced_columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        raise NotImplementedError

    # Operator sugar so tests and examples can write ``col('a') + 1 > col('b')``.

    def __add__(self, other: object) -> "BinaryOp":
        return BinaryOp("+", self, _wrap(other))

    def __sub__(self, other: object) -> "BinaryOp":
        return BinaryOp("-", self, _wrap(other))

    def __mul__(self, other: object) -> "BinaryOp":
        return BinaryOp("*", self, _wrap(other))

    def __eq__(self, other: object):  # type: ignore[override]
        return BinaryOp("=", self, _wrap(other))

    def __ne__(self, other: object):  # type: ignore[override]
        return BinaryOp("<>", self, _wrap(other))

    def __lt__(self, other: object) -> "BinaryOp":
        return BinaryOp("<", self, _wrap(other))

    def __le__(self, other: object) -> "BinaryOp":
        return BinaryOp("<=", self, _wrap(other))

    def __gt__(self, other: object) -> "BinaryOp":
        return BinaryOp(">", self, _wrap(other))

    def __ge__(self, other: object) -> "BinaryOp":
        return BinaryOp(">=", self, _wrap(other))

    def __and__(self, other: object) -> "BooleanOp":
        return BooleanOp("and", self, _wrap(other))

    def __or__(self, other: object) -> "BooleanOp":
        return BooleanOp("or", self, _wrap(other))

    def __invert__(self) -> "NotOp":
        return NotOp(self)

    def __hash__(self) -> int:
        return hash(repr(self))


def _wrap(value: object) -> "Expression":
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float, bool, np.integer, np.floating)):
        return Literal(value)
    raise ExecutionError(
        f"cannot use {type(value).__name__} as an expression operand"
    )


@dataclass(frozen=True, eq=False)
class ColumnRef(Expression):
    """A reference to a column of the current chunk by name."""

    name: str

    def evaluate(self, chunk: ChunkData) -> np.ndarray:
        if self.name not in chunk:
            raise ExecutionError(
                f"column {self.name!r} not in chunk; have {sorted(chunk)}"
            )
        return chunk[self.name]

    def referenced_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


def col(name: str) -> ColumnRef:
    """Shorthand constructor: ``col('R.A')``."""
    return ColumnRef(name)


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A constant value broadcast over the chunk."""

    value: int | float | bool

    def evaluate(self, chunk: ChunkData) -> np.ndarray:
        length = len(next(iter(chunk.values()))) if chunk else 0
        return np.full(length, self.value)

    def referenced_columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return repr(self.value)


_ARITHMETIC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}

_COMPARISONS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """An arithmetic or comparison operation on two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC and self.op not in _COMPARISONS:
            raise ExecutionError(f"unknown binary operator {self.op!r}")

    def evaluate(self, chunk: ChunkData) -> np.ndarray:
        function = _ARITHMETIC.get(self.op) or _COMPARISONS[self.op]
        return function(self.left.evaluate(chunk), self.right.evaluate(chunk))

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class BooleanOp(Expression):
    """AND / OR over two boolean sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ExecutionError(f"unknown boolean operator {self.op!r}")

    def evaluate(self, chunk: ChunkData) -> np.ndarray:
        function = np.logical_and if self.op == "and" else np.logical_or
        return function(self.left.evaluate(chunk), self.right.evaluate(chunk))

    def referenced_columns(self) -> set[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.upper()} {self.right!r})"


@dataclass(frozen=True, eq=False)
class NotOp(Expression):
    """Boolean negation."""

    operand: Expression

    def evaluate(self, chunk: ChunkData) -> np.ndarray:
        return np.logical_not(self.operand.evaluate(chunk))

    def referenced_columns(self) -> set[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"
