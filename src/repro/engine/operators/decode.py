"""Dictionary decode operator.

When a plan reads a dictionary-encoded Algorithmic View (codes instead of
values), the encoded column must be mapped back to original values before
leaving the plan. :class:`DecodeColumn` does exactly that, streaming:
codes in, values out, all other columns untouched. Because the encoding
is order-preserving, every order/clusteredness property of the stream
survives decoding.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.operators.base import Chunk, PhysicalOperator
from repro.errors import ExecutionError
from repro.storage.dictionary import DictionaryEncoded
from repro.storage.schema import ColumnSpec, Schema
from repro.storage.dtypes import DataType


class DecodeColumn(PhysicalOperator):
    """Replace one column's dictionary codes with their original values."""

    def __init__(
        self,
        child: PhysicalOperator,
        column: str,
        encoding: DictionaryEncoded,
    ) -> None:
        super().__init__(children=[child])
        if column not in child.output_schema:
            raise ExecutionError(
                f"decode column {column!r} not in input schema"
            )
        self._column = column
        self._encoding = encoding

    @property
    def output_schema(self) -> Schema:
        specs = []
        for spec in self.children[0].output_schema:
            if spec.name == self._column:
                dtype = DataType.from_numpy(self._encoding.dictionary.dtype)
                specs.append(ColumnSpec(spec.name, dtype))
            else:
                specs.append(spec)
        return Schema(specs)

    def chunks(self) -> Iterator[Chunk]:
        for chunk in self.children[0].chunks():
            data = dict(chunk.data())
            data[self._column] = self._encoding.decode_codes(
                data[self._column]
            )
            decoded = Chunk(data)
            # Working set: the pinned dictionary plus one decoded chunk.
            self._note_memory(
                self._encoding.memory_bytes() + decoded.memory_bytes()
            )
            yield decoded

    def describe(self) -> str:
        return f"DecodeColumn({self._column})"
