"""Sort and partition operators.

``Sort`` is the classic pipeline breaker. ``PartitionBy`` is the paper's
Figure 2 granule made executable: it consumes its input and exposes *"a
bundle of independent producers"* — one producer per group — without
deciding how downstream code consumes them.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.kernels.grouping import (
    GroupingAlgorithm,
    GroupingAssignment,
    hash_slots,
    order_slots,
    perfect_hash_slots,
    sort_order_slots,
)
from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
    table_to_chunks,
)
from repro.errors import ExecutionError
from repro.storage.schema import Schema
from repro.storage.table import Table


class Sort(PhysicalOperator):
    """Materialise the input, emit it sorted by the given key columns."""

    def __init__(
        self,
        child: PhysicalOperator,
        keys: list[str],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__(children=[child])
        schema = child.output_schema
        for key in keys:
            if key not in schema:
                raise ExecutionError(f"sort key {key!r} not in input schema")
        if not keys:
            raise ExecutionError("sort needs at least one key column")
        self._keys = list(keys)
        self._chunk_size = chunk_size

    @property
    def output_schema(self) -> Schema:
        return self.children[0].output_schema

    def chunks(self) -> Iterator[Chunk]:
        table = self.children[0].to_table()
        ordered = table.sort_by(self._keys)
        # Sort buffer: the materialised input plus the reordered copy.
        self._note_memory(table.memory_bytes() + ordered.memory_bytes())
        yield from table_to_chunks(ordered, self._chunk_size)

    def describe(self) -> str:
        return f"Sort(by={self._keys})"


class PartitionBy(PhysicalOperator):
    """Figure 2's ``partitionBy``: one producer per group.

    Consumes the input, assigns rows to groups with a selectable
    implementation (the very decision DQO optimises), and then offers the
    groups both as a single slot-tagged stream (:meth:`chunks`, column
    ``__slot__`` appended) and as true independent producers
    (:meth:`producers`).
    """

    SLOT_COLUMN = "__slot__"

    def __init__(
        self,
        child: PhysicalOperator,
        key: str,
        algorithm: GroupingAlgorithm = GroupingAlgorithm.HG,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__(children=[child])
        if key not in child.output_schema:
            raise ExecutionError(f"partition key {key!r} not in input schema")
        self._key = key
        self._algorithm = algorithm
        self._chunk_size = chunk_size
        self._materialised: Table | None = None
        self._assignment: GroupingAssignment | None = None

    @property
    def output_schema(self) -> Schema:
        return self.children[0].output_schema

    @property
    def key(self) -> str:
        """The partitioning key column."""
        return self._key

    def _ensure_materialised(self) -> tuple[Table, GroupingAssignment]:
        if self._materialised is None or self._assignment is None:
            table = self.children[0].to_table()
            keys = table[self._key]
            if self._algorithm is GroupingAlgorithm.HG:
                assignment = hash_slots(keys)
            elif self._algorithm is GroupingAlgorithm.SPHG:
                assignment = perfect_hash_slots(keys)
            elif self._algorithm is GroupingAlgorithm.OG:
                assignment = order_slots(keys, validate=True)
            elif self._algorithm is GroupingAlgorithm.SOG:
                assignment = sort_order_slots(keys)
            else:
                # BSG assignment also yields a valid partitioning.
                from repro.engine.kernels.grouping import binary_search_slots

                assignment = binary_search_slots(keys)
            self._materialised = table
            self._assignment = assignment
            self._note_memory(
                table.memory_bytes() + assignment.memory_bytes()
            )
        return self._materialised, self._assignment

    def num_partitions(self) -> int:
        """Number of groups (produced bundles)."""
        __, assignment = self._ensure_materialised()
        return assignment.num_groups

    def chunks(self) -> Iterator[Chunk]:
        """The input stream with a dense ``__slot__`` group id appended."""
        table, assignment = self._ensure_materialised()
        names = list(table.schema.names)
        for start in range(0, max(table.num_rows, 1), self._chunk_size):
            stop = min(start + self._chunk_size, table.num_rows)
            data = {name: table[name][start:stop] for name in names}
            data[self.SLOT_COLUMN] = assignment.slots[start:stop]
            yield Chunk(data)
            if stop >= table.num_rows:
                return

    def producers(self) -> Iterator[tuple[int, Table]]:
        """Figure 2 semantics: yield ``(group_key, rows_of_that_group)``
        pairs — a bundle of independent producers."""
        table, assignment = self._ensure_materialised()
        order = np.argsort(assignment.slots, kind="stable")
        sorted_slots = assignment.slots[order]
        boundaries = np.searchsorted(
            sorted_slots, np.arange(assignment.num_groups + 1)
        )
        for group in range(assignment.num_groups):
            rows = order[boundaries[group] : boundaries[group + 1]]
            yield int(assignment.group_keys[group]), table.take(rows)

    def describe(self) -> str:
        return f"PartitionBy(key={self._key}, impl={self._algorithm.value})"
