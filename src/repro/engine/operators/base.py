"""The physical operator protocol: chunked pull iteration.

Operators follow the vectorised descendant of the volcano model the paper
cites ([3] MonetDB/X100): instead of one tuple per ``next()`` call, each
step yields a :class:`Chunk` of a few thousand rows as parallel numpy
arrays. Pipeline breakers (sort, grouping, join build sides) materialise
their input; streaming operators (scan, filter, project, join probe sides)
pass chunks through.
"""

from __future__ import annotations

import threading
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.service.context import charge_active_context, check_active_context
from repro.storage.schema import Schema
from repro.storage.table import Table

#: default rows per chunk, in the vectorised sweet-spot range.
DEFAULT_CHUNK_SIZE = 4096

#: guards the read-compare-write accounting updates below: morsel workers
#: report into the same operator instance concurrently.
_ACCOUNTING_LOCK = threading.Lock()


class Chunk:
    """A horizontal slice of a relation: equal-length named arrays."""

    __slots__ = ("_data", "_num_rows")

    def __init__(self, data: Mapping[str, np.ndarray]) -> None:
        lengths = {name: len(values) for name, values in data.items()}
        if len(set(lengths.values())) > 1:
            raise ExecutionError(f"chunk arrays have unequal lengths: {lengths}")
        self._data = dict(data)
        self._num_rows = next(iter(lengths.values())) if lengths else 0

    @property
    def num_rows(self) -> int:
        """Rows in this chunk."""
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        """Names of the chunk's columns, in order."""
        return list(self._data)

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._data:
            raise ExecutionError(
                f"chunk has no column {name!r}; have {sorted(self._data)}"
            )
        return self._data[name]

    def __contains__(self, name: str) -> bool:
        return name in self._data

    def data(self) -> dict[str, np.ndarray]:
        """The underlying name -> array mapping (shared, do not mutate)."""
        return self._data

    def select(self, names: list[str]) -> "Chunk":
        """A chunk with only ``names``, in the given order."""
        return Chunk({name: self[name] for name in names})

    def filter(self, mask: np.ndarray) -> "Chunk":
        """Rows where ``mask`` is true."""
        return Chunk({name: values[mask] for name, values in self._data.items()})

    def memory_bytes(self) -> int:
        """Total bytes of the chunk's arrays."""
        return sum(int(values.nbytes) for values in self._data.values())


class PhysicalOperator:
    """Base class of all physical operators.

    Subclasses implement :meth:`chunks` (the data flow) and expose
    :attr:`output_schema`. ``children`` enables generic plan walking.

    The ``estimated_*`` class attributes are the optimiser's predictions
    for this node, attached by :func:`repro.core.plan.to_operator` when a
    plan is lowered from an optimised :class:`~repro.core.plan.PhysicalNode`
    tree. Hand-built operator trees keep the ``None`` defaults, which
    :func:`repro.obs.instrument.instrumented` reads as "no estimate" —
    q-error reporting then stays silent for those nodes.
    """

    #: optimiser-estimated output cardinality (None = not optimised).
    estimated_rows: float | None = None
    #: optimiser-estimated cumulative cost in cost-model units.
    estimated_cost: float | None = None
    #: optimiser-estimated distinct groups (join/group-by nodes only).
    estimated_groups: float | None = None
    #: the plan-node kind ('scan', 'join', ...) this operator lowers.
    plan_op: str = ""
    #: the algorithm family the optimiser chose (e.g. 'HG', 'SPHJ').
    plan_algorithm: str = ""
    #: shape hash of the plan subtree this operator lowers (see
    #: :func:`repro.core.plan.plan_fingerprint`; "" = not optimised).
    #: The root operator's value is the whole query's plan hash — the
    #: key the plan-regression sentinel watches for flips.
    plan_fingerprint: str = ""
    #: peak working-set bytes observed during the latest execution; a
    #: class attribute so operators that never note memory stay at 0
    #: without any per-instance cost.
    _peak_memory_bytes: int = 0
    #: workers the latest execution actually scheduled across (0 = this
    #: operator never ran a morsel batch; 1 = batches ran inline/serial).
    _parallel_degree: int = 0
    #: summed worker wall seconds of the latest execution's morsel batches.
    _parallel_busy_seconds: float = 0.0
    #: disk segments this operator read during the latest execution (class
    #: attributes, like the memory peak: only segment scans ever note I/O).
    _segments_read: int = 0
    #: disk segments zone maps proved empty (skipped without reading).
    _segments_skipped: int = 0
    #: cold payload bytes the buffer pool read from disk for this operator.
    _bytes_read: int = 0

    def __init__(self, children: list["PhysicalOperator"]) -> None:
        self.children = children

    def memory_bytes(self) -> int:
        """Peak bytes of working state (build structures, sort buffers,
        materialised inputs/outputs) this operator held while producing
        its latest output. 0 until the operator has executed, and for
        purely pass-through operators. Child operators account for their
        own state; this value is per-node, not cumulative."""
        return self._peak_memory_bytes

    def reset_memory_accounting(self) -> None:
        """Forget the recorded peak and parallelism facts (called before
        a fresh instrumented execution, so repeated runs never report
        stale numbers)."""
        self._peak_memory_bytes = 0
        self._parallel_degree = 0
        self._parallel_busy_seconds = 0.0
        self._segments_read = 0
        self._segments_skipped = 0
        self._bytes_read = 0

    def _note_memory(self, nbytes: int) -> None:
        """Record a working-set high-water mark (monotone per run).

        Thread-safe: parallel morsels executing inside one operator may
        report concurrently, and an unlocked read-compare-write would
        drop peaks. Also charges the active
        :class:`~repro.service.context.QueryContext` (if any), so a
        governed query's memory budget is enforced at the same points
        the profiler observes."""
        with _ACCOUNTING_LOCK:
            if nbytes > self._peak_memory_bytes:
                self._peak_memory_bytes = int(nbytes)
        charge_active_context(nbytes)

    def parallel_degree(self) -> int:
        """Workers the latest execution scheduled morsels across (0 when
        the operator ran no morsel batch at all)."""
        return self._parallel_degree

    def worker_busy_seconds(self) -> float:
        """Summed worker wall seconds of the latest execution's morsel
        batches (across all workers; compare against the operator's own
        wall time for effective speedup)."""
        return self._parallel_busy_seconds

    def io_counters(self) -> tuple[int, int, int]:
        """``(segments_read, segments_skipped, bytes_read)`` of the latest
        execution — all zero for operators that never touch disk."""
        return (self._segments_read, self._segments_skipped, self._bytes_read)

    def _note_io(
        self, segments_read: int = 0, segments_skipped: int = 0, bytes_read: int = 0
    ) -> None:
        """Accumulate disk I/O facts (thread-safe, like :meth:`_note_memory` —
        morsel workers may report into one operator concurrently)."""
        with _ACCOUNTING_LOCK:
            self._segments_read = self._segments_read + int(segments_read)
            self._segments_skipped = self._segments_skipped + int(segments_skipped)
            self._bytes_read = self._bytes_read + int(bytes_read)

    def _note_parallelism(self, workers_used: int, busy_seconds: float) -> None:
        """Record a morsel batch's scheduling facts (accumulates per run)."""
        with _ACCOUNTING_LOCK:
            if workers_used > self._parallel_degree:
                self._parallel_degree = int(workers_used)
            self._parallel_busy_seconds = (
                self._parallel_busy_seconds + float(busy_seconds)
            )

    @property
    def output_schema(self) -> Schema:
        """Schema of the rows this operator produces."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Display name used by ``explain`` output."""
        return type(self).__name__

    def chunks(self) -> Iterator[Chunk]:
        """Yield the operator's output as a stream of chunks."""
        raise NotImplementedError

    def to_table(self) -> Table:
        """Drain the operator into a materialised :class:`Table`."""
        schema = self.output_schema
        pieces: dict[str, list[np.ndarray]] = {name: [] for name in schema.names}
        for chunk in self.chunks():
            check_active_context()
            for name in schema.names:
                pieces[name].append(chunk[name])
        data = {}
        for spec in schema:
            arrays = pieces[spec.name]
            if arrays:
                data[spec.name] = np.concatenate(arrays)
            else:
                data[spec.name] = np.empty(0, dtype=spec.dtype.numpy_dtype)
        return Table.from_arrays(
            data, dtypes={spec.name: spec.dtype for spec in schema}
        )

    def explain(self, indent: int = 0) -> str:
        """A textual tree rendering of this operator subtree."""
        lines = [f"{'  ' * indent}{self.describe()}"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description used by :meth:`explain`."""
        return self.name


def table_to_chunks(table: Table, chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Chunk]:
    """Slice a table into chunks of at most ``chunk_size`` rows."""
    if chunk_size <= 0:
        raise ExecutionError(f"chunk_size must be > 0, got {chunk_size}")
    names = list(table.schema.names)
    if table.num_rows == 0:
        yield Chunk({name: table[name] for name in names})
        return
    for start in range(0, table.num_rows, chunk_size):
        check_active_context()
        stop = min(start + chunk_size, table.num_rows)
        yield Chunk({name: table[name][start:stop] for name in names})
