"""Index range scan: the "unclustered B-tree" access path of §1.

Where a :class:`~repro.engine.operators.scan.TableScan` + filter reads
every row, :class:`IndexRangeScan` consults an unclustered B+-tree that
maps column values to row positions, gathers only the matching rows, and
re-applies nothing. Row order of the output follows the *index* (value
order), so the scanned column comes out sorted — an access-path choice
with a DQO plan-property side effect, exactly §1's point.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
    table_to_chunks,
)
from repro.errors import ExecutionError
from repro.indexes.btree import BPlusTree
from repro.storage.schema import Schema
from repro.storage.table import Table


def build_row_index(table: Table, column: str, order: int = 64) -> BPlusTree:
    """Build an unclustered B+-tree from column values to row-id lists."""
    tree = BPlusTree(order=order)
    values = table[column]
    # Bulk path: group row ids by value, then bulkload sorted keys.
    sort_order = np.argsort(values, kind="stable")
    sorted_values = values[sort_order]
    if sorted_values.size == 0:
        return tree
    change = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
    starts = np.concatenate([[0], change])
    stops = np.concatenate([change, [sorted_values.size]])
    keys = sorted_values[starts]
    row_lists = [
        sort_order[start:stop].astype(np.int64)
        for start, stop in zip(starts, stops)
    ]
    tree.bulkload(keys, row_lists)
    return tree


class IndexRangeScan(PhysicalOperator):
    """Scan the rows of ``table`` whose ``column`` lies in ``[low, high]``
    via an unclustered B+-tree, in ascending ``column`` order."""

    def __init__(
        self,
        table: Table,
        column: str,
        index: BPlusTree,
        low: int,
        high: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__(children=[])
        if column not in table.schema:
            raise ExecutionError(f"index column {column!r} not in schema")
        self._table = table
        self._column = column
        self._index = index
        self._low = low
        self._high = high
        self._chunk_size = chunk_size

    @property
    def output_schema(self) -> Schema:
        return self._table.schema

    def chunks(self) -> Iterator[Chunk]:
        row_lists = [
            rows for __, rows in self._index.range(self._low, self._high)
        ]
        if row_lists:
            row_ids = np.concatenate(row_lists)
        else:
            row_ids = np.empty(0, dtype=np.int64)
        gathered = self._table.take(row_ids)
        # Working set: the consulted index plus the gathered row copy.
        self._note_memory(
            self._index.memory_bytes()
            + int(row_ids.nbytes)
            + gathered.memory_bytes()
        )
        yield from table_to_chunks(gathered, self._chunk_size)

    def describe(self) -> str:
        return (
            f"IndexRangeScan({self._column} in [{self._low}, {self._high}], "
            f"rows={self._table.num_rows})"
        )
