"""The equi-join physical operator, parameterised by the Table 2 algorithm.

Like :class:`repro.engine.operators.grouping.GroupBy`, this is one operator
class with the implementation family as an explicit parameter. The build
side is the left child, the probe side the right child — fixed sides, as
assumed by the Figure 5 reconstruction (DESIGN.md substitution #5).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.kernels.joins import (
    JoinAlgorithm,
    JoinOutputOrder,
    binary_search_join,
    hash_join,
    merge_join,
    perfect_hash_join,
    sort_merge_join,
)
from repro.engine.kernels.parallel import (
    EXCHANGE_JOIN_ALGORITHMS,
    PARALLEL_PROBE_ALGORITHMS,
    exchange_join,
    parallel_join,
)
from repro.engine.parallel import BACKENDS, get_executor_config
from repro.service.context import check_active_context, get_active_context
from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
    table_to_chunks,
)
from repro.errors import ExecutionError
from repro.storage.schema import Schema
from repro.storage.table import Table


class Join(PhysicalOperator):
    """Inner equi-join: ``left.left_key = right.right_key``.

    Output schema is the concatenation of both input schemas; the caller
    must pre-qualify ambiguous column names (see :meth:`Table.qualified`).

    :param parallel: the optimiser's MOLECULE-level ``loop`` decision for
        the probe phase. ``True`` forces the shared-build, sharded-probe
        morsel path (HJ/SPHJ/BSJ; output is bit-identical to serial),
        ``False`` forces serial, ``None`` (default) auto-parallelises
        large probe sides when the process-wide
        :class:`~repro.engine.parallel.ExecutorConfig` has more than one
        worker. OJ/SOJ always run serially.
    :param exchange: the MACROMOLECULE-level repartition decision.
        ``True`` hash-partitions *both* sides and joins each partition
        pair locally — the build phase parallelises too, unlike the
        shared-build probe sharding. HJ/BSJ only; output is restored to
        the exact serial probe-major order.
    :param backend: which pool runs the parallel work: ``"thread"``,
        ``"process"`` (shared-memory workers,
        :mod:`repro.engine.procpool`), or ``None`` (default) to follow
        the process-wide executor configuration.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_key: str,
        right_key: str,
        algorithm: JoinAlgorithm = JoinAlgorithm.HJ,
        num_distinct_hint: int | None = None,
        validate: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        parallel: bool | None = None,
        exchange: bool = False,
        backend: str | None = None,
    ) -> None:
        super().__init__(children=[left, right])
        if left_key not in left.output_schema:
            raise ExecutionError(f"left key {left_key!r} not in left schema")
        if right_key not in right.output_schema:
            raise ExecutionError(f"right key {right_key!r} not in right schema")
        overlap = set(left.output_schema.names) & set(right.output_schema.names)
        if overlap:
            raise ExecutionError(
                f"join inputs share column name(s) {sorted(overlap)}; "
                "qualify them first"
            )
        if exchange and algorithm not in EXCHANGE_JOIN_ALGORITHMS:
            raise ExecutionError(
                f"exchange join supports "
                f"{sorted(a.value for a in EXCHANGE_JOIN_ALGORITHMS)}, "
                f"not {algorithm.value!r}"
            )
        if backend is not None and backend not in BACKENDS:
            raise ExecutionError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self._left_key = left_key
        self._right_key = right_key
        self._algorithm = algorithm
        self._num_distinct_hint = num_distinct_hint
        self._validate = validate
        self._chunk_size = chunk_size
        self._parallel = parallel
        self._exchange = bool(exchange)
        self._backend = backend

    @property
    def output_schema(self) -> Schema:
        return self.children[0].output_schema.concat(self.children[1].output_schema)

    @property
    def algorithm(self) -> JoinAlgorithm:
        """The selected join implementation."""
        return self._algorithm

    @property
    def output_order(self) -> JoinOutputOrder:
        """The row-order guarantee of this join's output — the plan
        property the optimiser propagates."""
        if self._algorithm in (JoinAlgorithm.OJ, JoinAlgorithm.SOJ):
            return JoinOutputOrder.KEY_SORTED
        return JoinOutputOrder.PROBE_ORDER

    def _probe_shards(self, probe_rows: int) -> int:
        """Probe-morsel count for this execution (1 = serial kernel).

        Under a governed :class:`~repro.service.context.QueryContext`,
        large probes shard into morsel-sized pieces even when only one
        worker is configured: the morsels then run inline with a
        deadline/cancellation poll between each, keeping the query's
        abort latency at morsel (tens of ms) rather than whole-kernel
        (hundreds of ms) granularity. HJ/SPHJ/BSJ shard outputs are
        bit-identical to the serial kernel, so results are unchanged.
        """
        if self._algorithm not in PARALLEL_PROBE_ALGORITHMS:
            return 1
        config = get_executor_config()
        governed = (
            get_active_context() is not None
            and self._parallel is not False
            and probe_rows > config.morsel_rows
        )
        if governed:
            morsels = -(-probe_rows // config.morsel_rows)
            return max(config.workers, morsels)
        if self._parallel is False or config.workers <= 1:
            return 1
        if self._parallel is None and probe_rows < config.min_parallel_rows:
            return 1
        return config.workers

    def chunks(self) -> Iterator[Chunk]:
        left_table = self.children[0].to_table()
        right_table = self.children[1].to_table()
        check_active_context()
        build_keys = left_table[self._left_key]
        probe_keys = right_table[self._right_key]
        backend = self._backend or get_executor_config().backend
        workers = get_executor_config().workers
        shards = self._probe_shards(right_table.num_rows)
        note = lambda report: self._note_parallelism(  # noqa: E731
            report.workers_used, report.busy_seconds
        )
        if self._exchange and workers > 1:
            result = exchange_join(
                build_keys,
                probe_keys,
                self._algorithm,
                num_distinct_hint=self._num_distinct_hint,
                backend=backend,
                on_report=note,
            )
        elif shards > 1 and backend == "process":
            from repro.engine.procpool import process_join

            result = process_join(
                build_keys,
                probe_keys,
                self._algorithm,
                shards=shards,
                num_distinct_hint=self._num_distinct_hint,
                on_report=note,
            )
        elif shards > 1:
            result = parallel_join(
                build_keys,
                probe_keys,
                self._algorithm,
                shards=shards,
                num_distinct_hint=self._num_distinct_hint,
                on_report=note,
            )
        elif self._algorithm is JoinAlgorithm.HJ:
            result = hash_join(build_keys, probe_keys, self._num_distinct_hint)
        elif self._algorithm is JoinAlgorithm.SPHJ:
            result = perfect_hash_join(build_keys, probe_keys)
        elif self._algorithm is JoinAlgorithm.OJ:
            result = merge_join(build_keys, probe_keys, validate=self._validate)
        elif self._algorithm is JoinAlgorithm.SOJ:
            result = sort_merge_join(build_keys, probe_keys)
        elif self._algorithm is JoinAlgorithm.BSJ:
            result = binary_search_join(build_keys, probe_keys)
        else:
            raise ExecutionError(f"unknown algorithm {self._algorithm!r}")
        data: dict[str, np.ndarray] = {}
        for name in left_table.schema.names:
            data[name] = left_table[name][result.left_indices]
        for name in right_table.schema.names:
            data[name] = right_table[name][result.right_indices]
        output = Table.from_arrays(
            data, dtypes={s.name: s.dtype for s in self.output_schema}
        )
        # Working set: both materialised inputs, the kernel's build-side
        # structure plus match-index arrays, and the gathered output.
        self._note_memory(
            left_table.memory_bytes()
            + right_table.memory_bytes()
            + result.memory_bytes()
            + output.memory_bytes()
        )
        yield from table_to_chunks(output, self._chunk_size)

    def describe(self) -> str:
        if self._exchange:
            loop = ", loop=exchange"
        elif self._parallel:
            loop = ", loop=parallel"
        else:
            loop = ""
        if self._backend == "process":
            loop += ", backend=process"
        return (
            f"Join({self._left_key} = {self._right_key}, "
            f"impl={self._algorithm.value}{loop})"
        )
