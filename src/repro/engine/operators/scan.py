"""Table scan and streaming row operators: filter, project, limit."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.expressions import Expression
from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
    table_to_chunks,
)
from repro.engine.parallel import get_executor_config, run_morsels
from repro.errors import ExecutionError
from repro.storage.dtypes import DataType
from repro.storage.schema import ColumnSpec, Schema
from repro.storage.table import Table


class TableScan(PhysicalOperator):
    """Stream a materialised table as chunks."""

    def __init__(self, table: Table, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        super().__init__(children=[])
        self._table = table
        self._chunk_size = chunk_size

    @property
    def output_schema(self) -> Schema:
        return self._table.schema

    @property
    def table(self) -> Table:
        """The scanned table."""
        return self._table

    def chunks(self) -> Iterator[Chunk]:
        # The scan pins its table for the duration of the query.
        self._note_memory(self._table.memory_bytes())
        yield from table_to_chunks(self._table, self._chunk_size)

    def describe(self) -> str:
        return f"TableScan(rows={self._table.num_rows})"


class Filter(PhysicalOperator):
    """Keep rows where a boolean expression holds. Streaming.

    With a multi-worker :class:`~repro.engine.parallel.ExecutorConfig`,
    incoming chunks are batched and the predicate+filter morsels run on
    the shared worker pool; output chunk order is preserved, so parallel
    and serial execution produce identical streams. ``parallel=False``
    pins the serial path.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: Expression,
        parallel: bool | None = None,
    ) -> None:
        super().__init__(children=[child])
        missing = predicate.referenced_columns() - set(child.output_schema.names)
        if missing:
            raise ExecutionError(
                f"filter references missing column(s): {sorted(missing)}"
            )
        self._predicate = predicate
        self._parallel = parallel

    @property
    def output_schema(self) -> Schema:
        return self.children[0].output_schema

    def _filter_chunk(self, chunk: Chunk) -> Chunk:
        mask = np.asarray(self._predicate.evaluate(chunk.data()), dtype=bool)
        filtered = chunk.filter(mask)
        # Working set: the mask plus the filtered copy of one chunk.
        self._note_memory(int(mask.nbytes) + filtered.memory_bytes())
        return filtered

    def chunks(self) -> Iterator[Chunk]:
        config = get_executor_config()
        workers = config.workers
        if self._parallel is False or workers <= 1:
            for chunk in self.children[0].chunks():
                yield self._filter_chunk(chunk)
            return
        # Morsel mode: evaluate a batch of chunks concurrently, yield in
        # arrival order (determinism), then pull the next batch.
        batch: list[Chunk] = []
        batch_size = workers * 4
        for chunk in self.children[0].chunks():
            batch.append(chunk)
            if len(batch) < batch_size:
                continue
            report = run_morsels(
                [(lambda c=c: self._filter_chunk(c)) for c in batch]
            )
            self._note_parallelism(report.workers_used, report.busy_seconds)
            yield from report.results
            batch = []
        if batch:
            report = run_morsels(
                [(lambda c=c: self._filter_chunk(c)) for c in batch]
            )
            self._note_parallelism(report.workers_used, report.busy_seconds)
            yield from report.results

    def describe(self) -> str:
        return f"Filter({self._predicate!r})"


class Project(PhysicalOperator):
    """Evaluate named expressions per row. Streaming.

    :param outputs: (alias, expression) pairs in output column order.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        outputs: list[tuple[str, Expression]],
    ) -> None:
        super().__init__(children=[child])
        if not outputs:
            raise ExecutionError("projection must produce at least one column")
        available = set(child.output_schema.names)
        for alias, expression in outputs:
            missing = expression.referenced_columns() - available
            if missing:
                raise ExecutionError(
                    f"projection {alias!r} references missing column(s): "
                    f"{sorted(missing)}"
                )
        self._outputs = list(outputs)

    @property
    def output_schema(self) -> Schema:
        child_schema = self.children[0].output_schema
        specs = []
        for alias, expression in self._outputs:
            referenced = expression.referenced_columns()
            if len(referenced) == 1:
                source = next(iter(referenced))
                dtype = child_schema[source].dtype
            else:
                dtype = DataType.INT64
            specs.append(ColumnSpec(alias, dtype))
        return Schema(specs)

    def chunks(self) -> Iterator[Chunk]:
        for chunk in self.children[0].chunks():
            projected = Chunk(
                {
                    alias: np.asarray(expression.evaluate(chunk.data()))
                    for alias, expression in self._outputs
                }
            )
            self._note_memory(projected.memory_bytes())
            yield projected

    def describe(self) -> str:
        inner = ", ".join(
            f"{expression!r} AS {alias}" for alias, expression in self._outputs
        )
        return f"Project({inner})"


class Limit(PhysicalOperator):
    """Pass through at most ``count`` rows, then stop pulling. Streaming."""

    def __init__(self, child: PhysicalOperator, count: int) -> None:
        super().__init__(children=[child])
        if count < 0:
            raise ExecutionError(f"limit must be >= 0, got {count}")
        self._count = count

    @property
    def output_schema(self) -> Schema:
        return self.children[0].output_schema

    def chunks(self) -> Iterator[Chunk]:
        remaining = self._count
        for chunk in self.children[0].chunks():
            if remaining <= 0:
                return
            if chunk.num_rows <= remaining:
                remaining -= chunk.num_rows
                yield chunk
            else:
                mask = np.zeros(chunk.num_rows, dtype=bool)
                mask[:remaining] = True
                remaining = 0
                yield chunk.filter(mask)
                return

    def describe(self) -> str:
        return f"Limit({self._count})"
