"""The out-of-core scan: pinned row groups with zone-map segment skipping.

:class:`SegmentScan` is what a scan over a disk-resident table lowers to
(see :func:`repro.core.plan.to_operator`). It walks the table segment by
segment; before touching a segment it consults the zone maps against its
pushed-down predicates and skips segments provably empty — the skip is
free (manifest metadata only, no I/O). Unpruned segments are pinned as a
:meth:`~repro.storage.disk.table.DiskTable.row_group` through the buffer
pool, sliced into vectorised chunks, and released.

The pushed-down predicates only *skip*; they are not applied row-wise
here. The Filter above the scan still evaluates them, so results are
bit-identical to the in-memory path — the zone maps merely prove which
segments cannot contribute.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.engine.expressions import Expression
from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
)
from repro.service.context import check_active_context
from repro.storage.disk.table import DiskTable
from repro.storage.schema import ColumnSpec, Schema


class SegmentScan(PhysicalOperator):
    """Stream a disk-resident table, skipping zone-map-pruned segments.

    :param table: the disk table to scan.
    :param alias: relation alias; output columns are ``alias.column``
        (empty = raw column names), matching ``Table.qualified``.
    :param predicates: pushed-down conjuncts used for segment skipping
        only — never applied row-wise here.
    """

    def __init__(
        self,
        table: DiskTable,
        alias: str = "",
        predicates: Sequence[Expression] = (),
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        super().__init__(children=[])
        self._table = table
        self._alias = alias
        self._predicates = tuple(predicates)
        self._chunk_size = chunk_size

    @property
    def table(self) -> DiskTable:
        """The scanned disk table."""
        return self._table

    @property
    def output_schema(self) -> Schema:
        prefix = f"{self._alias}." if self._alias else ""
        return Schema(
            ColumnSpec(f"{prefix}{spec.name}", spec.dtype)
            for spec in self._table.schema
        )

    def _qualify(self, arrays: dict) -> dict:
        if not self._alias:
            return dict(arrays)
        return {f"{self._alias}.{name}": values for name, values in arrays.items()}

    def chunks(self) -> Iterator[Chunk]:
        table = self._table
        produced = False
        for index in range(table.num_segments):
            check_active_context()
            if table.segment_prunable(index, self._predicates, self._alias):
                self._note_io(segments_skipped=1)
                continue
            with table.row_group(index) as group:
                self._note_io(segments_read=1, bytes_read=group.cold_bytes)
                # The pinned decoded group is this scan's working set.
                self._note_memory(group.nbytes)
                data = self._qualify(group.arrays)
                for start in range(0, group.num_rows, self._chunk_size):
                    stop = min(start + self._chunk_size, group.num_rows)
                    produced = True
                    yield Chunk(
                        {name: values[start:stop] for name, values in data.items()}
                    )
        if not produced:
            # Preserve the engine convention: even an empty relation
            # yields one zero-row chunk carrying the schema.
            schema = self.output_schema
            yield Chunk(
                {
                    spec.name: np.empty(0, dtype=spec.dtype.numpy_dtype)
                    for spec in schema
                }
            )

    def describe(self) -> str:
        pushed = f", pushed={len(self._predicates)}" if self._predicates else ""
        return (
            f"SegmentScan(rows={self._table.num_rows}, "
            f"segments={self._table.num_segments}{pushed})"
        )
