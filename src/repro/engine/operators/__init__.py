"""Physical operators: the chunked, vectorised execution layer."""

from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
    table_to_chunks,
)
from repro.engine.operators.decode import DecodeColumn
from repro.engine.operators.grouping import GroupBy
from repro.engine.operators.index_scan import IndexRangeScan, build_row_index
from repro.engine.operators.joins import Join
from repro.engine.operators.scan import Filter, Limit, Project, TableScan
from repro.engine.operators.segment_scan import SegmentScan
from repro.engine.operators.sort import PartitionBy, Sort

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "Chunk",
    "DecodeColumn",
    "Filter",
    "GroupBy",
    "IndexRangeScan",
    "Join",
    "Limit",
    "PartitionBy",
    "PhysicalOperator",
    "Project",
    "SegmentScan",
    "Sort",
    "TableScan",
    "build_row_index",
    "table_to_chunks",
]
