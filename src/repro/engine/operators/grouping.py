"""The group-by physical operator, parameterised by the §4.1 algorithm.

One operator class, five behaviours: the ``algorithm`` constructor argument
selects among HG / SPHG / OG / SOG / BSG. This is deliberate — the paper's
point is that "physical grouping operator" hides an algorithm choice; here
that choice is an explicit, optimiser-visible parameter rather than five
unrelated operators.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.engine.aggregates import (
    AggregateFunction,
    AggregateSpec,
    compute_aggregate,
)
from repro.engine.kernels.grouping import (
    GroupingAlgorithm,
    KeyOrder,
    binary_search_slots,
    hash_slots,
    order_slots,
    perfect_hash_slots,
    sort_order_slots,
)
from repro.engine.operators.base import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    PhysicalOperator,
    table_to_chunks,
)
from repro.engine.kernels.parallel import EXCHANGE_GROUPING_ALGORITHMS
from repro.engine.operators.scan import TableScan
from repro.engine.parallel import (
    BACKENDS,
    get_executor_config,
    morsel_boundaries,
    run_morsels,
)
from repro.errors import ExecutionError
from repro.service.context import check_active_context
from repro.storage.dtypes import DataType
from repro.storage.schema import ColumnSpec, Schema
from repro.storage.table import Table


def decompose_partials(aggregates: list[AggregateSpec]) -> list[AggregateSpec]:
    """Aggregates rewritten for partial (shard/partition-local) runs.

    AVG is decomposed into partial SUM and COUNT columns (suffixes
    ``@sum`` / ``@count``) so partials merge losslessly; everything else
    is already decomposable as-is.
    """
    partial_specs: list[AggregateSpec] = []
    for spec in aggregates:
        if spec.function is AggregateFunction.AVG:
            partial_specs.append(
                AggregateSpec(
                    AggregateFunction.SUM, spec.column, f"{spec.alias}@sum"
                )
            )
            partial_specs.append(
                AggregateSpec(
                    AggregateFunction.COUNT, None, f"{spec.alias}@count"
                )
            )
        else:
            partial_specs.append(spec)
    return partial_specs


def group_partial(
    table: Table,
    key: str,
    aggregates: list[AggregateSpec],
    algorithm,
    num_distinct_hint: int | None = None,
) -> Table:
    """Group one shard/partition serially into a partial-aggregate table.

    This is the per-morsel unit of work shared by the thread pool and the
    process workers (:mod:`repro.engine.procpool` ships it table slices
    rebuilt from shared memory); ``aggregates`` must already be
    decomposed (:func:`decompose_partials`). ``algorithm`` accepts the
    enum or its string value (process payloads carry the value).
    """
    if not isinstance(algorithm, GroupingAlgorithm):
        algorithm = GroupingAlgorithm(algorithm)
    partial = GroupBy(
        TableScan(table),
        key=key,
        aggregates=list(aggregates),
        algorithm=algorithm,
        num_distinct_hint=num_distinct_hint,
        # A partial is already one unit of parallel work: pinning serial
        # stops it re-sharding (unbounded recursion under a small
        # min_parallel_rows setting).
        parallel=False,
    )
    return partial.to_table()


def _partial_bytes(partial) -> int:
    """Working-set bytes of one partial result (a Table from the thread
    path, a plain {name: array} dict from the process path)."""
    if hasattr(partial, "memory_bytes"):
        return partial.memory_bytes()
    return sum(array.nbytes for array in partial.values())


class GroupBy(PhysicalOperator):
    """Group rows by one key column and evaluate aggregates.

    :param child: input operator.
    :param key: grouping key column name.
    :param aggregates: the aggregates to compute per group.
    :param algorithm: which §4.1 implementation performs the grouping.
    :param num_distinct_hint: known NDV (the paper assumes it known).
    :param validate: verify the algorithm's precondition at runtime.
    :param shards: morsel count for the Figure 3(e) parallel-load variant:
        with ``shards > 1`` the input splits into shards, each grouped
        independently on the shared worker pool
        (:mod:`repro.engine.parallel`), and the decomposable partial
        aggregates are merged. The merged output is key-sorted.
    :param parallel: the optimiser's MOLECULE-level ``loop`` decision.
        ``True`` forces morsel-parallel execution (one shard per
        configured worker), ``False`` forces the serial path, and
        ``None`` (default) auto-parallelises large inputs when the
        process-wide :class:`~repro.engine.parallel.ExecutorConfig` has
        more than one worker.
    :param exchange: the MACROMOLECULE-level repartition decision.
        ``True`` hash-partitions the input on the key, groups each
        (disjoint) partition locally, and concatenates — only HG/SOG/BSG
        survive partitioning (OG loses clusteredness, SPHG density).
    :param backend: which pool runs the parallel work: ``"thread"``,
        ``"process"`` (shared-memory workers,
        :mod:`repro.engine.procpool`), or ``None`` (default) to follow
        the process-wide executor configuration.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        key: str,
        aggregates: list[AggregateSpec],
        algorithm: GroupingAlgorithm = GroupingAlgorithm.HG,
        num_distinct_hint: int | None = None,
        validate: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        shards: int = 1,
        parallel: bool | None = None,
        exchange: bool = False,
        backend: str | None = None,
    ) -> None:
        super().__init__(children=[child])
        schema = child.output_schema
        if key not in schema:
            raise ExecutionError(f"grouping key {key!r} not in input schema")
        for spec in aggregates:
            if spec.column is not None and spec.column not in schema:
                raise ExecutionError(
                    f"aggregate input column {spec.column!r} not in schema"
                )
        aliases = [key] + [spec.alias for spec in aggregates]
        if len(set(aliases)) != len(aliases):
            raise ExecutionError(f"duplicate output column names: {aliases}")
        self._key = key
        self._aggregates = list(aggregates)
        self._algorithm = algorithm
        self._num_distinct_hint = num_distinct_hint
        self._validate = validate
        self._chunk_size = chunk_size
        if shards < 1:
            raise ExecutionError(f"shards must be >= 1, got {shards}")
        if exchange and algorithm not in EXCHANGE_GROUPING_ALGORITHMS:
            raise ExecutionError(
                f"exchange grouping supports "
                f"{sorted(a.value for a in EXCHANGE_GROUPING_ALGORITHMS)}, "
                f"not {algorithm.value!r}"
            )
        if backend is not None and backend not in BACKENDS:
            raise ExecutionError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self._shards = shards
        self._parallel = parallel
        self._exchange = bool(exchange)
        self._backend = backend

    @property
    def output_schema(self) -> Schema:
        key_dtype = self.children[0].output_schema[self._key].dtype
        specs = [ColumnSpec(self._key, key_dtype)]
        specs.extend(
            ColumnSpec(spec.alias, spec.output_dtype) for spec in self._aggregates
        )
        return Schema(specs)

    @property
    def algorithm(self) -> GroupingAlgorithm:
        """The selected grouping implementation."""
        return self._algorithm

    @property
    def output_key_order(self) -> KeyOrder:
        """The key order this operator's output will exhibit — the plan
        property the optimiser propagates (without running the operator)."""
        if self._algorithm is GroupingAlgorithm.HG:
            return KeyOrder.UNSPECIFIED
        if self._algorithm is GroupingAlgorithm.OG:
            # Sorted only if the input was sorted; clustered input yields
            # first-occurrence order. Statically we can only promise that.
            return KeyOrder.FIRST_OCCURRENCE
        return KeyOrder.SORTED

    def _effective_shards(self, num_rows: int) -> int:
        """Morsel count for this execution: the explicit ``shards``
        argument wins; otherwise the ``parallel`` mode consults the
        process-wide executor configuration."""
        if self._shards > 1:
            return self._shards
        config = get_executor_config()
        if self._parallel is False or config.workers <= 1:
            return 1
        if self._parallel is None and num_rows < config.min_parallel_rows:
            return 1
        return config.workers

    def _effective_backend(self) -> str:
        """Which pool parallel work runs on: the pinned ``backend``
        argument, else the process-wide executor configuration."""
        return self._backend or get_executor_config().backend

    def chunks(self) -> Iterator[Chunk]:
        table = self.children[0].to_table()
        check_active_context()
        workers = get_executor_config().workers
        if self._exchange and table.num_rows and workers > 1:
            yield from self._exchange_chunks(table, workers)
            return
        shards = self._effective_shards(table.num_rows)
        if shards > 1 and table.num_rows:
            yield from self._sharded_chunks(table, shards)
            return
        keys = table[self._key]
        if self._algorithm is GroupingAlgorithm.HG:
            assignment = hash_slots(keys, self._num_distinct_hint)
        elif self._algorithm is GroupingAlgorithm.SPHG:
            assignment = perfect_hash_slots(keys)
        elif self._algorithm is GroupingAlgorithm.OG:
            assignment = order_slots(keys, validate=self._validate)
        elif self._algorithm is GroupingAlgorithm.SOG:
            assignment = sort_order_slots(keys)
        elif self._algorithm is GroupingAlgorithm.BSG:
            assignment = binary_search_slots(keys)
        else:
            raise ExecutionError(f"unknown algorithm {self._algorithm!r}")
        key_dtype = self.output_schema[self._key].dtype
        data: dict[str, np.ndarray] = {
            self._key: assignment.group_keys.astype(key_dtype.numpy_dtype)
        }
        for spec in self._aggregates:
            values = table[spec.column] if spec.column is not None else None
            data[spec.alias] = compute_aggregate(
                spec, assignment.slots, assignment.num_groups, values
            )
        result = Table.from_arrays(
            data, dtypes={s.name: s.dtype for s in self.output_schema}
        )
        # Working set: the materialised input, the slot assignment with
        # its algorithm structure (HG's hash table vs SPHG's dense array
        # — the Table 1 contrast), and the group-state output arrays.
        self._note_memory(
            table.memory_bytes()
            + assignment.memory_bytes()
            + result.memory_bytes()
        )
        yield from table_to_chunks(result, self._chunk_size)

    def _group_slice(self, table: Table) -> Table:
        """Group one shard into a partial-aggregate table."""
        return group_partial(
            table,
            self._key,
            decompose_partials(self._aggregates),
            self._algorithm,
            self._num_distinct_hint,
        )

    def _partial_tables(self, table: Table, boundaries):
        """Run the partial grouping of each ``(start, stop)`` slice on the
        effective backend; returns ``(partials, MorselReport)``."""
        if self._effective_backend() == "process":
            return self._process_partials(table, boundaries)
        tasks = [
            (lambda s=start, e=stop: self._group_slice(table.slice(s, e)))
            for start, stop in boundaries
        ]
        report = run_morsels(tasks)
        return report.results, report

    def _process_partials(self, table: Table, boundaries):
        """Partial grouping on the shared-memory process pool: publish the
        needed columns once, ship only (start, stop) bounds per morsel."""
        from repro.engine.procpool import get_shared_store, run_process_tasks

        store = get_shared_store()
        partial_specs = decompose_partials(self._aggregates)
        needed = [self._key] + sorted(
            {
                spec.column
                for spec in partial_specs
                if spec.column is not None and spec.column != self._key
            }
        )
        # ascontiguousarray may copy (sliced inputs): the keepalive list
        # holds those copies until the batch has drained, since the store
        # unlinks a published segment when its source array is collected.
        keepalive = [np.ascontiguousarray(table[name]) for name in needed]
        base = {
            "columns": {
                name: store.publish(array)
                for name, array in zip(needed, keepalive)
            },
            "key": self._key,
            "aggregates": [
                (spec.function.value, spec.column, spec.alias)
                for spec in partial_specs
            ],
            "algorithm": self._algorithm.value,
            "num_distinct_hint": self._num_distinct_hint,
        }
        tasks = [
            ("group_table", {**base, "start": start, "stop": stop})
            for start, stop in boundaries
        ]
        report = run_process_tasks(tasks)
        del keepalive
        return report.results, report

    def _sharded_chunks(self, table: Table, shards: int) -> Iterator[Chunk]:
        boundaries = morsel_boundaries(table.num_rows, shards)
        partials, report = self._partial_tables(table, boundaries)
        self._note_parallelism(report.workers_used, report.busy_seconds)
        merged = self._merge_partials(partials)
        self._note_memory(
            table.memory_bytes()
            + sum(_partial_bytes(part) for part in partials)
            + merged.memory_bytes()
        )
        yield from table_to_chunks(merged, self._chunk_size)

    def _exchange_chunks(self, table: Table, partitions: int) -> Iterator[Chunk]:
        """The repartitioning path: hash-partition rows on the key, group
        each partition locally (partitions are key-disjoint, so partials
        share no groups), and merge. Output is key-sorted, same as the
        sharded path's merge."""
        from repro.engine.kernels.parallel import hash_partition

        order, bounds = hash_partition(table[self._key], partitions)
        permuted = table.take(order)
        boundaries = [(start, stop) for start, stop in bounds if stop > start]
        partials, report = self._partial_tables(permuted, boundaries)
        self._note_parallelism(report.workers_used, report.busy_seconds)
        merged = self._merge_partials(partials)
        self._note_memory(
            table.memory_bytes()
            + permuted.memory_bytes()
            + sum(_partial_bytes(part) for part in partials)
            + merged.memory_bytes()
        )
        yield from table_to_chunks(merged, self._chunk_size)

    def _merge_partials(self, partials: list[Table]) -> Table:
        all_keys = np.concatenate([part[self._key] for part in partials])
        merged_keys, inverse = np.unique(all_keys, return_inverse=True)
        key_dtype = self.output_schema[self._key].dtype
        data: dict[str, np.ndarray] = {
            self._key: merged_keys.astype(key_dtype.numpy_dtype)
        }

        def gather(column: str) -> np.ndarray:
            return np.concatenate([part[column] for part in partials])

        def exact_sum(values: np.ndarray) -> np.ndarray:
            # Integer partials merge with exact int64 scatter-adds; a
            # float64 detour (bincount weights) would round >= 2**53.
            if np.issubdtype(values.dtype, np.integer):
                out = np.zeros(merged_keys.size, dtype=np.int64)
                np.add.at(out, inverse, values.astype(np.int64))
                return out
            return np.bincount(
                inverse,
                weights=values.astype(np.float64),
                minlength=merged_keys.size,
            )

        for spec in self._aggregates:
            if spec.function in (AggregateFunction.COUNT, AggregateFunction.SUM):
                data[spec.alias] = exact_sum(gather(spec.alias))
            elif spec.function is AggregateFunction.MIN:
                out = np.full(
                    merged_keys.size, np.iinfo(np.int64).max, dtype=np.int64
                )
                np.minimum.at(out, inverse, gather(spec.alias).astype(np.int64))
                data[spec.alias] = out
            elif spec.function is AggregateFunction.MAX:
                out = np.full(
                    merged_keys.size, np.iinfo(np.int64).min, dtype=np.int64
                )
                np.maximum.at(out, inverse, gather(spec.alias).astype(np.int64))
                data[spec.alias] = out
            elif spec.function is AggregateFunction.AVG:
                sums = exact_sum(gather(f"{spec.alias}@sum"))
                counts = exact_sum(gather(f"{spec.alias}@count"))
                data[spec.alias] = sums / counts
            else:
                raise ExecutionError(
                    f"cannot merge partials of {spec.function!r}"
                )
        return Table.from_arrays(
            data, dtypes={s.name: s.dtype for s in self.output_schema}
        )

    def describe(self) -> str:
        aggs = ", ".join(
            f"{spec.function.value.upper()}({spec.column or '*'}) AS {spec.alias}"
            for spec in self._aggregates
        )
        if self._exchange:
            loop = ", loop=exchange"
        elif self._shards > 1:
            loop = f", shards={self._shards}"
        elif self._parallel:
            loop = ", loop=parallel"
        else:
            loop = ""
        if self._backend == "process":
            loop += ", backend=process"
        return (
            f"GroupBy(key={self._key}, impl={self._algorithm.value}{loop}, "
            f"[{aggs}])"
        )
