"""Plan execution entry points.

Besides running plans, this module is the engine's observability
surface: :func:`execute` reports into the process-wide metrics/tracer
handles (no-ops unless :func:`repro.obs.enable_observability` was
called), and :func:`explain_analyze` runs a plan under per-operator
instrumentation and renders the tree annotated with actuals — the
runtime counterpart of :func:`explain`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util.timer import Timer
from repro.engine.operators.base import PhysicalOperator
from repro.obs.feedback import FeedbackStore
from repro.obs.instrument import OperatorStats, instrumented
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.runtime import get_metrics, get_tracer
from repro.storage.table import Table

#: q-error histogram bucket upper bounds — 1.0 is a perfect estimate,
#: each bucket roughly doubles the misestimation factor.
QERROR_BUCKETS = (1.1, 1.25, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0)


def execute(root: PhysicalOperator) -> Table:
    """Run a physical operator tree to completion and return the result."""
    metrics = get_metrics()
    tracer = get_tracer()
    if not (metrics.enabled or tracer.enabled):
        return root.to_table()
    with tracer.span("engine.execute", root=root.name):
        with Timer() as timer:
            result = root.to_table()
    if metrics.enabled:
        metrics.counter("engine.executions", exist_ok=True).inc()
        metrics.counter("engine.rows_out", exist_ok=True).inc(result.num_rows)
        metrics.histogram(
            "engine.execute_seconds", DEFAULT_BUCKETS, exist_ok=True
        ).observe(timer.elapsed)
    return result


def execute_timed(root: PhysicalOperator) -> tuple[Table, float]:
    """Run a plan and also return its wall-clock execution time in seconds."""
    with Timer() as timer:
        result = execute(root)
    return result, timer.elapsed


def explain(root: PhysicalOperator) -> str:
    """Render a plan tree as indented text."""
    return root.explain()


@dataclass
class AnalyzedPlan:
    """Result of :func:`explain_analyze`: the output table plus the
    measured per-operator stats tree."""

    #: the query result (the plan really ran).
    table: Table
    #: per-operator actuals, mirroring the plan tree.
    root: OperatorStats
    #: end-to-end wall seconds, including the driver loop.
    wall_seconds: float

    def render(self) -> str:
        """The plan tree annotated with measured actuals (and, for
        optimised plans, estimates + per-operator q-error)."""
        lines = [
            self.root.render(),
            f"Execution time: {self.wall_seconds * 1e3:.3f}ms "
            f"({self.table.num_rows:,} row(s) out)",
        ]
        worst = self.max_qerror
        if worst is not None:
            lines.append(f"Worst cardinality q-error: {worst:.2f}")
        return "\n".join(lines)

    @property
    def max_qerror(self) -> float | None:
        """The worst per-operator cardinality q-error, or None when no
        operator carries an estimate."""
        errors = [
            node.qerror
            for node in self.root.walk()
            if node.qerror is not None
        ]
        return max(errors) if errors else None

    def qerrors(self) -> list[tuple[str, float]]:
        """(operator kind, q-error) for every estimate-carrying node,
        in plan pre-order."""
        return [
            (node.operator_kind, node.qerror)
            for node in self.root.walk()
            if node.qerror is not None
        ]

    def __str__(self) -> str:
        return self.render()


def explain_analyze(
    root: PhysicalOperator, feedback: FeedbackStore | None = None
) -> AnalyzedPlan:
    """EXPLAIN ANALYZE: run ``root`` instrumented and report actuals.

    Every operator's rows in/out, chunks produced, and self vs.
    cumulative wall time are measured while the plan executes for
    real; the instrumentation hooks are removed afterwards, so the
    plan can be re-run at full speed.

    For plans lowered from an optimised plan tree
    (:func:`repro.core.plan.to_operator`), each operator's estimated
    cardinality is joined against the measured actuals: the rendering
    gains ``est ... rows · act ... · q=...`` annotations, per-operator
    q-errors feed the process-wide ``optimizer.qerror`` histogram when
    metrics are enabled, and — when a :class:`~repro.obs.feedback.
    FeedbackStore` is passed — (estimate, actual, seconds) samples are
    accumulated for cost-model refitting.
    """
    with instrumented(root) as stats:
        with Timer() as timer:
            table = root.to_table()
    analyzed = AnalyzedPlan(table=table, root=stats, wall_seconds=timer.elapsed)
    metrics = get_metrics()
    if metrics.enabled:
        histogram = metrics.histogram(
            "optimizer.qerror", QERROR_BUCKETS, exist_ok=True
        )
        for __, error in analyzed.qerrors():
            if math.isfinite(error):
                histogram.observe(error)
            else:
                metrics.counter(
                    "optimizer.qerror_unbounded", exist_ok=True
                ).inc()
    if feedback is not None:
        feedback.record_plan(stats)
    return analyzed
