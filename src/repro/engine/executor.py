"""Plan execution entry points."""

from __future__ import annotations

from repro._util.timer import Timer
from repro.engine.operators.base import PhysicalOperator
from repro.storage.table import Table


def execute(root: PhysicalOperator) -> Table:
    """Run a physical operator tree to completion and return the result."""
    return root.to_table()


def execute_timed(root: PhysicalOperator) -> tuple[Table, float]:
    """Run a plan and also return its wall-clock execution time in seconds."""
    with Timer() as timer:
        result = root.to_table()
    return result, timer.elapsed


def explain(root: PhysicalOperator) -> str:
    """Render a plan tree as indented text."""
    return root.explain()
