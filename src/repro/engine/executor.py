"""Plan execution entry points.

Besides running plans, this module is the engine's observability
surface: :func:`execute` reports into the process-wide metrics/tracer
handles (no-ops unless :func:`repro.obs.enable_observability` was
called), and :func:`explain_analyze` runs a plan under per-operator
instrumentation and renders the tree annotated with actuals — the
runtime counterpart of :func:`explain`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util.timer import Timer
from repro.engine.operators.base import PhysicalOperator
from repro.engine.parallel import get_executor_config, parallel_execution
from repro.obs.feedback import FeedbackStore
from repro.obs.instrument import OperatorStats, format_bytes, instrumented
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.querylog import get_query_log
from repro.obs.runtime import get_metrics, get_tracer
from repro.service.context import (
    QueryContext,
    activate_context,
    get_active_context,
)
from repro.storage.table import Table

#: q-error histogram bucket upper bounds — 1.0 is a perfect estimate,
#: each bucket roughly doubles the misestimation factor.
QERROR_BUCKETS = (1.1, 1.25, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0)

#: memory histogram bucket upper bounds, in bytes (4KiB .. 4GiB).
MEMORY_BUCKETS = (
    4096.0,
    65536.0,
    1048576.0,
    16777216.0,
    268435456.0,
    4294967296.0,
)


def execute(
    root: PhysicalOperator,
    workers: int | None = None,
    context: QueryContext | None = None,
) -> Table:
    """Run a physical operator tree to completion and return the result.

    :param workers: run the plan under a scoped worker-count override —
        the morsel-parallel pipeline driver. ``None`` keeps the ambient
        :func:`repro.engine.parallel.get_executor_config` setting
        (``REPRO_WORKERS``); ``1`` forces serial execution.
    :param context: run the plan governed by a
        :class:`~repro.service.context.QueryContext` — operators and the
        morsel scheduler poll its deadline/cancellation token at
        chunk/morsel granularity and charge working sets against its
        memory budget. ``None`` (the default) keeps whatever context is
        already active on the calling thread, if any.
    :raises repro.errors.DeadlineExceeded: governed deadline passed.
    :raises repro.errors.QueryCancelled: governed token triggered.
    :raises repro.errors.MemoryBudgetExceeded: governed budget exceeded.
    """
    if context is not None:
        with activate_context(context):
            return execute(root, workers=workers)
    if workers is not None:
        with parallel_execution(workers):
            return execute(root)
    metrics = get_metrics()
    tracer = get_tracer()
    query_log = get_query_log()
    if not (metrics.enabled or tracer.enabled or query_log is not None):
        return root.to_table()
    active = get_active_context()
    span_tags = {"root": root.name}
    if active is not None:
        span_tags["trace_id"] = active.trace_id
        span_tags["query_id"] = active.query_id
    io_before = _tree_io_counters(root)
    with tracer.span("engine.execute", **span_tags):
        with Timer() as timer:
            result = root.to_table()
    if metrics.enabled:
        metrics.counter("engine.executions", exist_ok=True).inc()
        metrics.counter("engine.rows_out", exist_ok=True).inc(result.num_rows)
        metrics.histogram(
            "engine.execute_seconds", DEFAULT_BUCKETS, exist_ok=True
        ).observe(timer.elapsed)
    if query_log is not None:
        executor = get_executor_config()
        entry = {
            "kind": "execute",
            "root": root.name,
            "plan": root.explain(),
            "rows_out": result.num_rows,
            "wall_seconds": timer.elapsed,
            "backend": executor.backend,
            "workers": executor.workers,
        }
        if root.estimated_rows is not None:
            entry["estimated_rows"] = root.estimated_rows
            entry["estimated_cost"] = root.estimated_cost
        if root.plan_fingerprint:
            entry["plan_hash"] = root.plan_fingerprint
        # Out-of-core facts, as a delta over this run (operator I/O
        # counters accumulate until the next instrumented reset).
        read, skipped, cold = (
            after - before
            for after, before in zip(_tree_io_counters(root), io_before)
        )
        if read or skipped:
            entry["segments_read"] = read
            entry["segments_skipped"] = skipped
            entry["bytes_read"] = cold
        query_log.append(entry)
    return result


def _tree_io_counters(root: PhysicalOperator) -> tuple[int, int, int]:
    """Summed (segments_read, segments_skipped, bytes_read) over the
    tree, each shared node counted once."""
    seen: set[int] = set()
    read = skipped = cold = 0
    for operator in _walk_operators(root):
        if id(operator) in seen:
            continue
        seen.add(id(operator))
        r, s, b = operator.io_counters()
        read += r
        skipped += s
        cold += b
    return (read, skipped, cold)


def _walk_operators(root: PhysicalOperator):
    yield root
    for child in root.children:
        yield from _walk_operators(child)


def execute_timed(
    root: PhysicalOperator, workers: int | None = None
) -> tuple[Table, float]:
    """Run a plan and also return its wall-clock execution time in seconds."""
    with Timer() as timer:
        result = execute(root, workers=workers)
    return result, timer.elapsed


def explain(root: PhysicalOperator) -> str:
    """Render a plan tree as indented text."""
    return root.explain()


@dataclass
class AnalyzedPlan:
    """Result of :func:`explain_analyze`: the output table plus the
    measured per-operator stats tree."""

    #: the query result (the plan really ran).
    table: Table
    #: per-operator actuals, mirroring the plan tree.
    root: OperatorStats
    #: end-to-end wall seconds, including the driver loop.
    wall_seconds: float

    def render(self) -> str:
        """The plan tree annotated with measured actuals (and, for
        optimised plans, estimates + per-operator q-error)."""
        lines = [
            self.root.render(),
            f"Execution time: {self.wall_seconds * 1e3:.3f}ms "
            f"({self.table.num_rows:,} row(s) out)",
            "Peak operator memory: "
            f"{format_bytes(self.peak_memory_bytes)} "
            "(sum of per-node peaks)",
        ]
        worst = self.max_qerror
        if worst is not None:
            lines.append(f"Worst cardinality q-error: {worst:.2f}")
        read, skipped, cold = self.io_totals
        if read or skipped:
            lines.append(
                f"Storage I/O: {read} segment(s) read, "
                f"{skipped} skipped via zone maps, "
                f"{format_bytes(cold)} cold from disk"
            )
        return "\n".join(lines)

    @property
    def io_totals(self) -> tuple[int, int, int]:
        """Summed ``(segments_read, segments_skipped, bytes_read)`` over
        every operator (all zero for fully in-memory plans)."""
        seen: set[int] = set()
        read = skipped = cold = 0
        for node in self.root.walk():
            if id(node) in seen:
                continue
            seen.add(id(node))
            read += node.segments_read
            skipped += node.segments_skipped
            cold += node.bytes_read
        return (read, skipped, cold)

    @property
    def peak_memory_bytes(self) -> int:
        """Sum of every operator's peak working-set bytes (each node
        counted once even when shared across a diamond plan)."""
        seen: set[int] = set()
        total = 0
        for node in self.root.walk():
            if id(node) in seen:
                continue
            seen.add(id(node))
            total += node.peak_memory_bytes
        return total

    @property
    def max_qerror(self) -> float | None:
        """The worst per-operator cardinality q-error, or None when no
        operator carries an estimate."""
        errors = [
            node.qerror
            for node in self.root.walk()
            if node.qerror is not None
        ]
        return max(errors) if errors else None

    def qerrors(self) -> list[tuple[str, float]]:
        """(operator kind, q-error) for every estimate-carrying node,
        in plan pre-order."""
        return [
            (node.operator_kind, node.qerror)
            for node in self.root.walk()
            if node.qerror is not None
        ]

    def __str__(self) -> str:
        return self.render()


def explain_analyze(
    root: PhysicalOperator,
    feedback: FeedbackStore | None = None,
    workers: int | None = None,
    context: QueryContext | None = None,
) -> AnalyzedPlan:
    """EXPLAIN ANALYZE: run ``root`` instrumented and report actuals.

    Every operator's rows in/out, chunks produced, and self vs.
    cumulative wall time are measured while the plan executes for
    real; the instrumentation hooks are removed afterwards, so the
    plan can be re-run at full speed.

    For plans lowered from an optimised plan tree
    (:func:`repro.core.plan.to_operator`), each operator's estimated
    cardinality is joined against the measured actuals: the rendering
    gains ``est ... rows · act ... · q=...`` annotations, per-operator
    q-errors feed the process-wide ``optimizer.qerror`` histogram when
    metrics are enabled, and — when a :class:`~repro.obs.feedback.
    FeedbackStore` is passed — (estimate, actual, seconds) samples are
    accumulated for cost-model refitting.

    With a multi-worker configuration (ambient ``REPRO_WORKERS`` or the
    ``workers`` override) the rendering annotates each morsel-parallel
    node with its parallelism degree and summed worker busy time.

    Like :func:`execute`, an optional ``context`` governs the run with a
    deadline / cancellation token / memory budget.
    """
    if context is not None:
        with activate_context(context):
            return explain_analyze(root, feedback=feedback, workers=workers)
    if workers is not None:
        with parallel_execution(workers):
            return explain_analyze(root, feedback=feedback)
    with instrumented(root) as stats:
        with Timer() as timer:
            table = root.to_table()
    analyzed = AnalyzedPlan(table=table, root=stats, wall_seconds=timer.elapsed)
    metrics = get_metrics()
    if metrics.enabled:
        histogram = metrics.histogram(
            "optimizer.qerror", QERROR_BUCKETS, exist_ok=True
        )
        for __, error in analyzed.qerrors():
            if math.isfinite(error):
                histogram.observe(error)
            else:
                metrics.counter(
                    "optimizer.qerror_unbounded", exist_ok=True
                ).inc()
        per_operator = metrics.histogram(
            "operator.bytes", MEMORY_BUCKETS, exist_ok=True
        )
        seen: set[int] = set()
        for node in stats.walk():
            if id(node) in seen:
                continue
            seen.add(id(node))
            per_operator.observe(node.peak_memory_bytes)
        metrics.histogram(
            "query.peak_bytes", MEMORY_BUCKETS, exist_ok=True
        ).observe(analyzed.peak_memory_bytes)
    if feedback is not None:
        feedback.record_plan(stats)
    query_log = get_query_log()
    if query_log is not None:
        from repro.obs.profile import QueryProfile

        active = get_active_context()
        query_log.append(
            QueryProfile.from_analyzed(
                analyzed,
                trace_id=active.trace_id if active is not None else "",
                plan_hash=root.plan_fingerprint,
            ).to_dict()
        )
    return analyzed
