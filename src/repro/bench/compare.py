"""Benchmark artifact comparison — the perf regression gate.

:func:`write_json_artifact` records each benchmark run as JSON (timings
plus a metrics snapshot). This module diffs two such artifacts and turns
"the numbers moved" into an actionable verdict:

- every timing shared by both artifacts is compared as a relative delta
  (``current/baseline - 1``) against a configurable threshold;
- timings present in the baseline but *missing* from the current run
  are treated as regressions too — a gate that goes green because a
  benchmark vanished is worse than a red one;
- metric snapshots (counters, histogram count/sum/p50/p90/p99) are
  diffed informationally, so a timing regression arrives with its
  likely cause attached (e.g. ``optimizer.candidates_generated`` doubled).

CLI (exit code 1 on regression, 0 otherwise)::

    python -m repro.bench.compare baseline.json current.json --threshold 0.15
    python -m repro.bench.compare BENCH_baseline.json   # self-diff smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.bench.reporting import render_table

#: default relative slowdown budget: 15% over baseline fails the gate.
DEFAULT_THRESHOLD = 0.15

#: baselines at or below this many seconds are treated as zero: a ratio
#: against clock-noise (or a literal 0.0 from a degenerate run) would
#: report million-percent "regressions" that mean nothing.
ZERO_BASELINE_S = 1e-9

#: timing-record keys probed for "the" scalar seconds of one timing, in
#: preference order (best-of-N is the conventional micro-benchmark stat).
_TIMING_KEYS = ("best_s", "seconds", "median_s", "mean_s")


def load_artifact(path: str | Path) -> dict:
    """Read one :func:`~repro.bench.reporting.write_json_artifact` file.

    :raises ValueError: when the file is not a JSON object with a
        ``timings`` mapping (anything else was not written by the
        harness and would fail later with a worse message).
    """
    target = Path(path)
    record = json.loads(target.read_text())
    if not isinstance(record, dict) or not isinstance(
        record.get("timings"), dict
    ):
        raise ValueError(
            f"{target} is not a benchmark artifact (expected a JSON "
            "object with a 'timings' mapping)"
        )
    return record


def timing_seconds(record: Any) -> float | None:
    """The scalar seconds of one timing record, or None when the record
    carries no recognisable number."""
    if isinstance(record, (int, float)):
        return float(record)
    if isinstance(record, Mapping):
        for key in _TIMING_KEYS:
            value = record.get(key)
            if isinstance(value, (int, float)):
                return float(value)
    return None


@dataclass(frozen=True)
class TimingDelta:
    """One timing's baseline-vs-current verdict."""

    label: str
    baseline_s: float | None
    current_s: float | None
    #: relative change ``current/baseline - 1``; None when not computable
    #: (a side is missing, or the baseline is zero).
    delta: float | None
    #: 'ok' | 'regression' | 'improvement' | 'missing-baseline' |
    #: 'missing-current' | 'zero-baseline'
    status: str

    @property
    def is_regression(self) -> bool:
        """True when this delta should fail the gate."""
        return self.status in ("regression", "missing-current")


@dataclass(frozen=True)
class MetricDelta:
    """One metric's relative change (informational, never gates)."""

    name: str
    baseline: float
    current: float
    delta: float | None


@dataclass
class ComparisonReport:
    """The full diff of two benchmark artifacts."""

    baseline_name: str
    current_name: str
    threshold: float
    timings: list[TimingDelta] = field(default_factory=list)
    metrics: list[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[TimingDelta]:
        """Timings that fail the gate, worst first."""
        failing = [t for t in self.timings if t.is_regression]
        return sorted(
            failing,
            key=lambda t: t.delta if t.delta is not None else float("inf"),
            reverse=True,
        )

    @property
    def ok(self) -> bool:
        """True when no timing regressed."""
        return not self.regressions

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any timing regressed."""
        return 0 if self.ok else 1

    def render(self) -> str:
        """The report as fixed-width terminal text."""

        def fmt_seconds(value: float | None) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}ms"

        def fmt_delta(value: float | None) -> str:
            if value is None:
                return "-"
            if value == float("inf"):
                return "∞"
            return f"{value:+.1%}"

        def fmt_timing_delta(timing: TimingDelta) -> str:
            # A non-zero current over a (near-)zero baseline is an
            # unbounded ratio: show "∞", not a nonsense percentage.
            if (
                timing.status == "zero-baseline"
                and timing.current_s is not None
                and timing.current_s > ZERO_BASELINE_S
            ):
                return "∞"
            return fmt_delta(timing.delta)

        rows = [
            [t.label, fmt_seconds(t.baseline_s), fmt_seconds(t.current_s),
             fmt_timing_delta(t), t.status]
            for t in self.timings
        ]
        lines = [
            f"bench compare: {self.baseline_name!r} -> "
            f"{self.current_name!r} (threshold {self.threshold:+.0%})",
            render_table(
                ["timing", "baseline", "current", "delta", "status"], rows
            ),
        ]
        changed = [m for m in self.metrics if m.delta]
        if changed:
            lines.append("")
            lines.append(
                render_table(
                    ["metric", "baseline", "current", "delta"],
                    [
                        [m.name, f"{m.baseline:g}", f"{m.current:g}",
                         fmt_delta(m.delta)]
                        for m in changed
                    ],
                    title="metrics (informational):",
                )
            )
        lines.append("")
        if self.ok:
            lines.append(
                f"OK: {len(self.timings)} timing(s) within "
                f"{self.threshold:.0%} of baseline"
            )
        else:
            worst = self.regressions[0]
            lines.append(
                f"REGRESSION: {len(self.regressions)} timing(s) over "
                f"budget; worst is {worst.label!r} "
                f"({fmt_delta(worst.delta)} vs. baseline)"
            )
        return "\n".join(lines)


def _flatten_metrics(snapshot: Any) -> dict[str, float]:
    """Scalar view of a metrics snapshot: counters/gauges as-is,
    histograms as ``name.count`` / ``name.sum`` / ``name.p50``..."""
    flat: dict[str, float] = {}
    if not isinstance(snapshot, Mapping):
        return flat
    for name, value in snapshot.items():
        if isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, Mapping):
            for key in ("count", "sum", "p50", "p90", "p99"):
                sub = value.get(key)
                if isinstance(sub, (int, float)):
                    flat[f"{name}.{key}"] = float(sub)
    return flat


def compare_artifacts(
    baseline: Mapping,
    current: Mapping,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonReport:
    """Diff two artifacts (as returned by :func:`load_artifact`).

    :param threshold: relative slowdown budget; a timing is a regression
        when ``current/baseline - 1`` exceeds it *strictly*, so a delta
        landing exactly on the threshold still passes.
    :raises ValueError: when ``threshold`` is negative.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    baseline_timings = dict(baseline.get("timings") or {})
    current_timings = dict(current.get("timings") or {})
    deltas: list[TimingDelta] = []
    for label in sorted(set(baseline_timings) | set(current_timings)):
        base_s = timing_seconds(baseline_timings.get(label))
        cur_s = timing_seconds(current_timings.get(label))
        if label not in baseline_timings or base_s is None:
            deltas.append(
                TimingDelta(label, None, cur_s, None, "missing-baseline")
            )
            continue
        if label not in current_timings or cur_s is None:
            deltas.append(
                TimingDelta(label, base_s, None, None, "missing-current")
            )
            continue
        if base_s <= ZERO_BASELINE_S:
            # No ratio against a (near-)zero baseline; report, never
            # gate. The rendering shows "∞" when the current side is
            # non-zero, but ``delta`` stays None so nothing downstream
            # does arithmetic on it.
            deltas.append(
                TimingDelta(label, base_s, cur_s, None, "zero-baseline")
            )
            continue
        delta = cur_s / base_s - 1.0
        if delta > threshold:
            status = "regression"
        elif delta < -threshold:
            status = "improvement"
        else:
            status = "ok"
        deltas.append(TimingDelta(label, base_s, cur_s, delta, status))

    base_metrics = _flatten_metrics(baseline.get("metrics"))
    cur_metrics = _flatten_metrics(current.get("metrics"))
    def metric_delta(base: float, cur: float) -> float | None:
        if abs(base) > ZERO_BASELINE_S:
            return cur / base - 1.0
        # Near-zero baseline: an unchanged metric has no delta; a grown
        # one has an unbounded relative change.
        return float("inf") if abs(cur) > ZERO_BASELINE_S else None

    metric_deltas = [
        MetricDelta(
            name,
            base_metrics[name],
            cur_metrics[name],
            metric_delta(base_metrics[name], cur_metrics[name]),
        )
        for name in sorted(set(base_metrics) & set(cur_metrics))
    ]
    return ComparisonReport(
        baseline_name=str(baseline.get("name", "?")),
        current_name=str(current.get("name", "?")),
        threshold=threshold,
        timings=deltas,
        metrics=metric_deltas,
    )


def compare_files(
    baseline_path: str | Path,
    current_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> ComparisonReport:
    """:func:`compare_artifacts` over two artifact files."""
    return compare_artifacts(
        load_artifact(baseline_path), load_artifact(current_path), threshold
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description=(
            "Diff two benchmark JSON artifacts and fail on timing "
            "regressions. With a single artifact, self-diff it (a "
            "smoke check of the artifact and the gate itself)."
        ),
    )
    parser.add_argument("baseline", help="baseline artifact JSON")
    parser.add_argument(
        "current",
        nargs="?",
        default=None,
        help="current artifact JSON (omit to self-diff the baseline)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=(
            "relative slowdown budget, e.g. 0.15 = fail beyond +15%% "
            "(default %(default)s)"
        ),
    )
    options = parser.parse_args(argv)
    try:
        report = compare_files(
            options.baseline,
            options.current if options.current is not None else options.baseline,
            threshold=options.threshold,
        )
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
