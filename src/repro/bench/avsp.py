"""AVSP experiment runner: budget sweeps over generated workloads.

§3/§6: the Algorithmic View Selection Problem is *"absolutely
workload-dependent"*. This module makes that dependence visible: it
sweeps the build-cost budget and the workload's property mix, reporting
the selected views and the benefit landscape.

Run as a script::

    python -m repro.bench.avsp [--tables N] [--queries N]
"""

from __future__ import annotations

import argparse

from repro.avs.selection import (
    enumerate_candidates,
    exhaustive_avsp,
    greedy_avsp,
    workload_cost,
)
from repro.bench.reporting import render_table
from repro.datagen.workload import Workload, make_workload


def run_budget_sweep(
    workload: Workload, budgets: list[float]
) -> list[list[str]]:
    """Greedy AVSP at each budget; rows for a report table."""
    base_cost = workload_cost(workload)
    rows = []
    for budget in budgets:
        result = greedy_avsp(workload, budget=budget)
        rows.append(
            [
                f"{budget:,.0f}",
                f"{len(result.selected)}",
                f"{result.build_cost:,.0f}",
                f"{result.benefit:,.0f}",
                f"{result.benefit / base_cost:.1%}",
            ]
        )
    return rows


def run_property_mix_sweep(
    num_tables: int, num_queries: int, budget: float, seed: int = 0
) -> list[list[str]]:
    """How the best selection changes with the workload's property mix."""
    rows = []
    for sorted_fraction, dense_fraction in (
        (0.0, 0.0),
        (0.0, 1.0),
        (1.0, 0.0),
        (0.5, 0.5),
    ):
        workload = make_workload(
            num_tables=num_tables,
            num_queries=num_queries,
            sorted_fraction=sorted_fraction,
            dense_fraction=dense_fraction,
            seed=seed,
        )
        result = greedy_avsp(workload, budget=budget)
        kinds = sorted({c.kind.value for c in result.selected})
        rows.append(
            [
                f"{sorted_fraction:.0%}",
                f"{dense_fraction:.0%}",
                f"{result.benefit:,.0f}",
                ", ".join(kinds) if kinds else "(none)",
            ]
        )
    return rows


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=4)
    parser.add_argument("--queries", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = make_workload(
        num_tables=args.tables, num_queries=args.queries, seed=args.seed
    )
    base = workload_cost(workload)
    candidates = enumerate_candidates(workload)
    print(
        f"workload: {len(workload)} queries over {args.tables} tables, "
        f"baseline cost {base:,.0f}, {len(candidates)} candidate views\n"
    )
    budgets = [base * fraction for fraction in (0.01, 0.05, 0.2, 1.0)]
    print(
        render_table(
            ["budget", "#views", "spent", "benefit", "benefit %"],
            run_budget_sweep(workload, budgets),
            title="greedy AVSP, budget sweep",
        )
    )
    print()
    if len(candidates) <= 14:
        exact = exhaustive_avsp(workload, budget=budgets[-1])
        greedy = greedy_avsp(workload, budget=budgets[-1])
        gap = (
            (exact.benefit - greedy.benefit) / exact.benefit
            if exact.benefit
            else 0.0
        )
        print(f"greedy gap vs exact at the largest budget: {gap:.2%}\n")
    print(
        render_table(
            ["sorted %", "dense %", "benefit", "selected kinds"],
            run_property_mix_sweep(args.tables, args.queries, budgets[-1]),
            title="workload dependence: property mix sweep (same budget)",
        )
    )


if __name__ == "__main__":
    main()
