"""Table 2: the cost models, rendered symbolically and evaluated.

Prints the paper's formulas and evaluates each at the Figure 5
cardinalities (|R| = 45,000, |S| = 90,000, join output 90,000, 20,000
groups), which makes the Figure 5 arithmetic auditable by eye: e.g.
HJ + HG = 4·135,000 + 4·90,000 = 900,000 and SPHJ + SPHG = 225,000,
hence the 4x cell.

Run as a script::

    python -m repro.bench.table2
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.core.cost.paper import PaperCostModel
from repro.datagen.join import PAPER_NUM_GROUPS, PAPER_R_ROWS, PAPER_S_ROWS
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm

#: symbolic formulas, verbatim from Table 2.
GROUPING_FORMULAS = {
    GroupingAlgorithm.HG: "4 * |R|",
    GroupingAlgorithm.OG: "|R|",
    GroupingAlgorithm.SOG: "|R|*log2|R| + |R|",
    GroupingAlgorithm.SPHG: "|R|",
    GroupingAlgorithm.BSG: "|R|*log2(#groups)",
}

JOIN_FORMULAS = {
    JoinAlgorithm.HJ: "4 * (|R| + |S|)",
    JoinAlgorithm.OJ: "|R| + |S|",
    JoinAlgorithm.SOJ: "|R|*log2|R| + |S|*log2|S| + |R| + |S|",
    JoinAlgorithm.SPHJ: "|R| + |S|",
    JoinAlgorithm.BSJ: "|R|*log2(#groups) + |S|*log2(#groups)",
}


def render_table2(
    join_input_rows: int = PAPER_R_ROWS,
    probe_rows: int = PAPER_S_ROWS,
    grouping_input_rows: int = PAPER_S_ROWS,
    num_groups: int = PAPER_NUM_GROUPS,
) -> str:
    """Render both halves of Table 2 with evaluated values."""
    model = PaperCostModel()
    grouping_rows = []
    for algorithm, formula in GROUPING_FORMULAS.items():
        value = model.grouping_cost(algorithm, grouping_input_rows, num_groups)
        grouping_rows.append([algorithm.name, formula, f"{value:,.0f}"])
    join_rows = []
    for algorithm, formula in JOIN_FORMULAS.items():
        value = model.join_cost(
            algorithm, join_input_rows, probe_rows, num_groups
        )
        join_rows.append([algorithm.name, formula, f"{value:,.0f}"])
    grouping_table = render_table(
        ["grouping", "formula", f"at |R|={grouping_input_rows:,}"],
        grouping_rows,
        title=(
            "Table 2 (grouping) — evaluated at the Figure 5 join output "
            f"({grouping_input_rows:,} rows, {num_groups:,} groups)"
        ),
    )
    join_table = render_table(
        ["join", "formula", f"at |R|={join_input_rows:,}, |S|={probe_rows:,}"],
        join_rows,
        title="Table 2 (joins) — evaluated at the Figure 5 base tables",
    )
    return grouping_table + "\n\n" + join_table


def main() -> None:
    """CLI entry point."""
    print(render_table2())


if __name__ == "__main__":
    main()
