"""Figure 4: grouping performance on the sortedness x density grid.

Reproduces the paper's four panels — runtime of the five grouping
implementations as the number of groups grows from a handful to 40,000 —
plus the zoom-in finding that BSG beats HG for very small group counts on
unsorted-sparse data (paper: up to 14 groups).

Scale substitution (DESIGN.md #2): default 2,000,000 rows instead of the
paper's 100,000,000. The claims under reproduction are *shapes*:

* sorted panels: OG fastest and flat; SOG pays a pointless re-sort.
* sorted & dense: SPHG ties OG; HG several times slower.
* unsorted & dense: SPHG best and flat; HG grows with group count.
* unsorted & sparse: HG wins broadly, but BSG wins below a small
  crossover group count.

Run as a script::

    python -m repro.bench.figure4 [--rows N] [--crossover]
    python -m repro.bench.figure4 --profile fig4_profile.html

``--profile`` runs one representative shape (unsorted & dense, the
SPHG-vs-HG panel) through the operator engine under full profiling and
writes a self-contained HTML report plus folded flamegraph stacks; the
profile also lands in the active query log when ``REPRO_QUERY_LOG`` is
set.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro._util.timer import time_callable
from repro.bench.reporting import Series, render_ascii_chart, render_table
from repro.datagen.grouping import (
    FIGURE4_GRID,
    Density,
    Sortedness,
    make_grouping_dataset,
)
from repro.engine.kernels.grouping import GroupingAlgorithm, group_by
from repro.engine.kernels.parallel import parallel_group_by
from repro.errors import PreconditionError

#: the paper's x-axis: group counts up to 40,000.
DEFAULT_GROUP_COUNTS = (100, 1_000, 5_000, 10_000, 20_000, 40_000)
DEFAULT_ROWS = 2_000_000


def applicable_algorithms(
    sortedness: Sortedness, density: Density
) -> list[GroupingAlgorithm]:
    """Which algorithms each Figure 4 panel plots (the paper omits the
    inapplicable ones: SPHG on sparse, OG on unsorted)."""
    algorithms = [GroupingAlgorithm.HG, GroupingAlgorithm.SOG, GroupingAlgorithm.BSG]
    if sortedness is Sortedness.SORTED:
        algorithms.append(GroupingAlgorithm.OG)
    if density is Density.DENSE:
        algorithms.append(GroupingAlgorithm.SPHG)
    return algorithms


@dataclass
class PanelResult:
    """Measurements of one Figure 4 panel."""

    sortedness: Sortedness
    density: Density
    #: algorithm -> list of (num_groups, milliseconds).
    series: dict[GroupingAlgorithm, list[tuple[int, float]]] = field(
        default_factory=dict
    )

    @property
    def title(self) -> str:
        """Panel title in the paper's terms."""
        return f"{self.sortedness.value} & {self.density.value}"

    def fastest_at(self, num_groups: int) -> GroupingAlgorithm:
        """The winning algorithm at one group count."""
        best_algorithm = None
        best_time = float("inf")
        for algorithm, points in self.series.items():
            for g, ms in points:
                if g == num_groups and ms < best_time:
                    best_time = ms
                    best_algorithm = algorithm
        if best_algorithm is None:
            raise ValueError(f"no measurement at {num_groups} groups")
        return best_algorithm


@dataclass
class Figure4Result:
    """All four panels."""

    rows: int
    panels: list[PanelResult] = field(default_factory=list)
    #: morsel workers the measured kernels ran with (1 = serial kernels).
    workers: int = 1

    def panel(self, sortedness: Sortedness, density: Density) -> PanelResult:
        """Fetch one panel."""
        for panel in self.panels:
            if panel.sortedness is sortedness and panel.density is density:
                return panel
        raise ValueError(f"no panel {sortedness} x {density}")


def _measured_group_by(dataset, algorithm, num_groups: int, workers: int):
    """The kernel call one measurement times: serial with one worker,
    the Figure 3(e) sharded parallel load otherwise."""
    if workers > 1:
        return parallel_group_by(
            dataset.keys,
            dataset.payload,
            algorithm,
            shards=workers,
            num_distinct_hint=num_groups,
            workers=workers,
        )
    return group_by(
        dataset.keys,
        dataset.payload,
        algorithm,
        num_distinct_hint=num_groups,
    )


def run_figure4(
    rows: int = DEFAULT_ROWS,
    group_counts: tuple[int, ...] = DEFAULT_GROUP_COUNTS,
    repeats: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> Figure4Result:
    """Measure all four panels.

    :param workers: morsel workers; > 1 measures the parallel-load
        variant (``workers`` shards on ``workers`` pool threads).
    """
    result = Figure4Result(rows=rows, workers=max(int(workers), 1))
    for sortedness, density in FIGURE4_GRID:
        panel = PanelResult(sortedness=sortedness, density=density)
        for algorithm in applicable_algorithms(sortedness, density):
            panel.series[algorithm] = []
        for num_groups in group_counts:
            if num_groups > rows:
                continue
            dataset = make_grouping_dataset(
                rows,
                num_groups,
                sortedness=sortedness,
                density=density,
                seed=seed,
            )
            for algorithm in applicable_algorithms(sortedness, density):
                timing = time_callable(
                    lambda a=algorithm, d=dataset, g=num_groups: (
                        _measured_group_by(d, a, g, result.workers)
                    ),
                    repeats=repeats,
                    warmup=1,
                )
                panel.series[algorithm].append((num_groups, timing.best_ms))
        result.panels.append(panel)
    return result


@dataclass
class CrossoverResult:
    """The zoom-in of Figure 4's unsorted-sparse panel."""

    #: (num_groups, HG ms, BSG ms) measurements.
    points: list[tuple[int, float, float]] = field(default_factory=list)
    #: largest group count at which BSG still beat HG (0 if never).
    crossover_groups: int = 0


def run_crossover(
    rows: int = DEFAULT_ROWS,
    group_counts: tuple[int, ...] = (2, 4, 8, 14, 16, 24, 32, 48, 64, 128, 256),
    repeats: int = 3,
    seed: int = 0,
) -> CrossoverResult:
    """Measure the BSG-vs-HG small-group-count crossover on unsorted &
    sparse data (paper: BSG wins up to 14 groups)."""
    result = CrossoverResult()
    for num_groups in group_counts:
        dataset = make_grouping_dataset(
            rows,
            num_groups,
            sortedness=Sortedness.UNSORTED,
            density=Density.SPARSE,
            seed=seed,
        )
        hg = time_callable(
            lambda d=dataset, g=num_groups: group_by(
                d.keys, d.payload, GroupingAlgorithm.HG, num_distinct_hint=g
            ),
            repeats=repeats,
            warmup=1,
        ).best_ms
        bsg = time_callable(
            lambda d=dataset: group_by(
                d.keys, d.payload, GroupingAlgorithm.BSG
            ),
            repeats=repeats,
            warmup=1,
        ).best_ms
        result.points.append((num_groups, hg, bsg))
        if bsg < hg:
            result.crossover_groups = num_groups
    return result


def render_figure4(result: Figure4Result) -> str:
    """Render all four panels as tables + ASCII charts."""
    workers = (
        f", {result.workers} workers" if result.workers > 1 else ""
    )
    sections = [
        f"Figure 4 — grouping runtime [ms] vs #groups "
        f"(n={result.rows:,} rows{workers}; paper used 100M)"
    ]
    for panel in result.panels:
        group_counts = sorted(
            {g for points in panel.series.values() for g, __ in points}
        )
        headers = ["#groups"] + [a.name for a in panel.series]
        rows = []
        for g in group_counts:
            row = [f"{g:,}"]
            for algorithm in panel.series:
                ms = dict(panel.series[algorithm]).get(g)
                row.append(f"{ms:,.1f}" if ms is not None else "-")
            rows.append(row)
        sections.append(render_table(headers, rows, title=f"[{panel.title}]"))
        sections.append(
            render_ascii_chart(
                [
                    Series(a.name, [(float(g), ms) for g, ms in points])
                    for a, points in panel.series.items()
                ],
                title=f"[{panel.title}]",
                x_label="#groups",
                y_label="ms",
            )
        )
    return "\n\n".join(sections)


def render_crossover(result: CrossoverResult) -> str:
    """Render the zoom-in measurements."""
    rows = [
        [f"{g:,}", f"{hg:,.1f}", f"{bsg:,.1f}", "BSG" if bsg < hg else "HG"]
        for g, hg, bsg in result.points
    ]
    table = render_table(
        ["#groups", "HG [ms]", "BSG [ms]", "winner"],
        rows,
        title=(
            "Figure 4 zoom-in (unsorted & sparse): BSG vs HG at small "
            "group counts"
        ),
    )
    verdict = (
        f"\nBSG beats HG up to {result.crossover_groups} groups "
        "(paper: up to 14 groups on their hardware)."
        if result.crossover_groups
        else "\nBSG never beat HG at the measured points."
    )
    return table + verdict


def profile_shape_run(
    rows: int = DEFAULT_ROWS,
    num_groups: int = 20_000,
    sortedness: Sortedness = Sortedness.UNSORTED,
    density: Density = Density.DENSE,
    seed: int = 0,
):
    """One Figure 4 shape run through the operator engine, profiled.

    Returns a :class:`~repro.obs.profile.QueryProfile` whose grouping
    operator carries the per-algorithm memory footprint (Table 1's
    "Memory req." column, measured).
    """
    from repro.engine.aggregates import count_star
    from repro.engine.operators.grouping import GroupBy
    from repro.engine.operators.scan import TableScan
    from repro.obs.profile import capture_profile
    from repro.storage.table import Table

    dataset = make_grouping_dataset(
        rows, num_groups, sortedness=sortedness, density=density, seed=seed
    )
    table = Table.from_arrays({"K": dataset.keys})
    algorithm = (
        GroupingAlgorithm.SPHG
        if density is Density.DENSE
        else GroupingAlgorithm.HG
    )
    plan = GroupBy(
        TableScan(table),
        key="K",
        aggregates=[count_star()],
        algorithm=algorithm,
        num_distinct_hint=num_groups,
    )
    return capture_profile(
        plan,
        query=(
            f"figure4 shape run: {sortedness.value} & {density.value}, "
            f"{rows:,} rows, {num_groups:,} groups, {algorithm.value}"
        ),
    )


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "morsel workers for the measured kernels (> 1 measures the "
            "parallel-load variants; recorded in the JSON artifact)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="ARTIFACT",
        default="",
        help="also write the sweep as a benchmark JSON artifact",
    )
    parser.add_argument(
        "--crossover",
        action="store_true",
        help="also run the BSG-vs-HG zoom-in",
    )
    parser.add_argument(
        "--profile",
        metavar="REPORT_HTML",
        default="",
        help=(
            "skip the sweep; profile one shape run and write a "
            "standalone HTML report (+ .folded flamegraph stacks)"
        ),
    )
    args = parser.parse_args()
    if args.profile:
        from pathlib import Path

        profile = profile_shape_run(rows=args.rows)
        report = Path(args.profile)
        report.write_text(profile.to_html(), encoding="utf-8")
        folded = report.with_suffix(".folded")
        folded.write_text(profile.to_folded_stacks(), encoding="utf-8")
        print(profile.render())
        print(f"wrote HTML report: {report}")
        print(f"wrote folded stacks: {folded}")
        return
    result = run_figure4(
        rows=args.rows, repeats=args.repeats, workers=args.workers
    )
    print(render_figure4(result))
    if args.json:
        from repro.bench.reporting import write_json_artifact

        timings = {
            f"{panel.sortedness.value}_{panel.density.value}/"
            f"{algorithm.name}@{num_groups}": ms / 1e3
            for panel in result.panels
            for algorithm, points in panel.series.items()
            for num_groups, ms in points
        }
        path = write_json_artifact(
            args.json,
            "figure4",
            timings,
            meta={
                "rows": result.rows,
                "repeats": args.repeats,
                "workers": result.workers,
            },
        )
        print(f"\nwrote JSON artifact: {path}")
    if args.crossover:
        print()
        print(render_crossover(run_crossover(rows=args.rows, repeats=args.repeats)))


if __name__ == "__main__":
    main()
