"""Benchmark harness: regenerates every table and figure of the paper's
evaluation section (see DESIGN.md §3 for the experiment index).

Each module doubles as a script::

    python -m repro.bench.table1
    python -m repro.bench.table2
    python -m repro.bench.figure4 --crossover
    python -m repro.bench.figure5 --execute
    python -m repro.bench.compare baseline.json current.json

The last one is the perf regression gate: it diffs two
:func:`write_json_artifact` outputs and exits non-zero when a timing
regressed beyond the threshold (see :mod:`repro.bench.compare`).
"""

from repro.bench.compare import (
    ComparisonReport,
    MetricDelta,
    TimingDelta,
    compare_artifacts,
    compare_files,
    load_artifact,
    timing_seconds,
)
from repro.bench.figure4 import (
    CrossoverResult,
    Figure4Result,
    PanelResult,
    render_crossover,
    render_figure4,
    run_crossover,
    run_figure4,
)
from repro.bench.figure5 import (
    PAPER_FACTORS,
    Figure5Cell,
    Figure5Result,
    render_figure5,
    run_figure5,
)
from repro.bench.reporting import (
    Series,
    make_artifact,
    render_ascii_chart,
    render_table,
    write_json_artifact,
)
from repro.bench.table2 import render_table2

__all__ = [
    "ComparisonReport",
    "CrossoverResult",
    "Figure4Result",
    "Figure5Cell",
    "Figure5Result",
    "MetricDelta",
    "PAPER_FACTORS",
    "PanelResult",
    "Series",
    "TimingDelta",
    "compare_artifacts",
    "compare_files",
    "load_artifact",
    "make_artifact",
    "render_ascii_chart",
    "render_crossover",
    "render_figure4",
    "render_figure5",
    "render_table",
    "render_table2",
    "run_crossover",
    "run_figure4",
    "run_figure5",
    "timing_seconds",
    "write_json_artifact",
]
