"""Table 1: the granularity hierarchy, rendered.

Also reports the concrete decision-space sizes at each level of this
library's physiological lattice, making the paper's abstract table
measurable: how many grouping recipes exist when the optimiser may decide
down to each level?

Run as a script::

    python -m repro.bench.table1
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.core.granularity import Granularity, render_table1
from repro.core.physiological import count_recipes


def render_lattice_sizes() -> str:
    """Recipes reachable per depth cap (the SQO -> DQO dial)."""
    rows = []
    for level in (
        Granularity.ORGANELLE,
        Granularity.MACROMOLECULE,
        Granularity.MOLECULE,
    ):
        rows.append([level.name, str(count_recipes(level))])
    return render_table(
        ["optimiser reach", "grouping recipes"],
        rows,
        title="Decision-space size per granularity cap (this library's lattice)",
    )


def main() -> None:
    """CLI entry point."""
    print("Table 1 — granularity concepts (biology vs query optimisation)\n")
    print(render_table1())
    print()
    print(render_lattice_sizes())


if __name__ == "__main__":
    main()
