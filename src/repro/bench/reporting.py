"""Textual reporting: fixed-width tables, ASCII line charts, and
machine-readable JSON benchmark artifacts.

The harness renders every figure/table of the paper as terminal text so
that runs are reproducible without a plotting stack (nothing to install,
output diffs cleanly). :func:`write_json_artifact` additionally persists
each run as JSON — timings plus an optional metrics snapshot — so
benchmark results can be diffed, plotted, or tracked across commits
without re-parsing the ASCII output.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping


def render_table(
    headers: list[str], rows: list[list[str]], title: str = ""
) -> str:
    """A fixed-width table with a header rule.

    :raises ValueError: when any row's cell count differs from the
        header's column count (a ragged row would otherwise be silently
        truncated by ``zip``).
    """
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cell(s) but the table has "
                f"{len(headers)} column(s): {row!r}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows), 1)
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(header.ljust(w) for header, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """One plotted line: a label and (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)


def render_ascii_chart(
    series: list[Series],
    title: str = "",
    width: int = 68,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """A multi-series ASCII scatter/line chart.

    Each series is drawn with its own glyph; axes are linear and the
    legend maps glyphs to labels. Good enough to eyeball the Figure 4
    shapes (who is flat, who grows, who crosses whom).
    """
    glyphs = "ox+*#@%&"
    populated = [s for s in series if s.points]
    if not populated:
        return f"{title}\n(no data)"
    xs = [x for s in populated for x, __ in s.points]
    ys = [y for s in populated for __, y in s.points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for __ in range(height)]
    for index, s in enumerate(populated):
        glyph = glyphs[index % len(glyphs)]
        for x, y in s.points:
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][column] = glyph
    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:,.1f}"
    bottom_label = f"{y_min:,.1f}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_min:,.0f}".ljust(width - 12) + f"{x_max:,.0f}"
    lines.append(" " * (margin + 1) + x_axis)
    if x_label:
        lines.append(" " * (margin + 1) + x_label)
    legend = "   ".join(
        f"{glyphs[index % len(glyphs)]} = {s.label}"
        for index, s in enumerate(populated)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


# -- JSON benchmark artifacts ------------------------------------------------


def _timing_record(value: Any) -> Any:
    """Normalise one timing entry to JSON-friendly data.

    Accepts a :class:`repro._util.timer.TimingResult` (duck-typed on
    ``samples``), a bare number of seconds, or any mapping/JSON value,
    which is passed through.
    """
    samples = getattr(value, "samples", None)
    if samples is not None:
        record = {
            "samples_s": list(samples),
            "best_s": value.best,
            "mean_s": value.mean,
        }
        if hasattr(value, "median"):
            record["median_s"] = value.median
        if hasattr(value, "p95"):
            record["p95_s"] = value.p95
        return record
    if isinstance(value, (int, float)):
        return {"seconds": float(value)}
    return value


def make_artifact(
    name: str,
    timings: Mapping[str, Any],
    metrics: Any = None,
    meta: Mapping[str, Any] | None = None,
) -> dict:
    """A machine-readable record of one benchmark run.

    :param name: benchmark identifier (e.g. ``"figure4/sorted-dense"``).
    :param timings: label -> :class:`~repro._util.timer.TimingResult`,
        seconds, or pre-built mapping.
    :param metrics: a :class:`repro.obs.MetricsRegistry` (its snapshot is
        embedded), a plain snapshot mapping, or None.
    :param meta: free-form extra context (rows, seeds, config names...).
    """
    snapshot = metrics
    if hasattr(metrics, "snapshot"):
        snapshot = metrics.snapshot()
    return {
        "name": name,
        "timings": {label: _timing_record(t) for label, t in timings.items()},
        "metrics": snapshot,
        "meta": dict(meta or {}),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }


def write_json_artifact(
    path: str | Path,
    name: str,
    timings: Mapping[str, Any],
    metrics: Any = None,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write a :func:`make_artifact` record to ``path`` as JSON.

    Parent directories are created; the written path is returned so
    callers can log it next to their ASCII tables.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    artifact = make_artifact(name, timings, metrics, meta)
    target.write_text(json.dumps(artifact, indent=2, sort_keys=True, default=str))
    return target
