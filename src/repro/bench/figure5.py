"""Figure 5: DQO-over-SQO plan-cost improvement factors.

Reproduces §4.3: the query ::

    SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A;

optimised under SQO and DQO for every combination of {R sorted/unsorted}
x {S sorted/unsorted} x {sparse/dense}, reporting cost(SQO)/cost(DQO).
The paper's grid::

                     sparse   dense
    R sorted, S sorted   1x      1x
    R sorted, S unsorted 1x      4x
    R unsorted, S sorted 1x      2.8x
    R unsorted, S unsort 1x      4x

Cardinalities per the paper (|S| = |join| = 90,000; 20,000 groups) with
|R| = 45,000 reconstructed from the published factors (DESIGN.md
substitution #4). Join build/probe sides stay as written in the query
(substitution #5); run with ``--commutation`` to see how the grid changes
when the optimiser may swap sides.

Run as a script::

    python -m repro.bench.figure5 [--execute] [--commutation]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro._util.timer import time_callable
from repro.bench.reporting import render_table
from repro.core.cost.model import CostModel
from repro.core.optimizer.dqo import optimize_dqo
from repro.core.optimizer.sqo import optimize_sqo
from repro.core.plan import to_operator
from repro.datagen.grouping import Density, Sortedness
from repro.datagen.join import make_join_scenario
from repro.sql.planner import plan_query

#: the §4.3 query, verbatim.
QUERY = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"

#: the paper's published grid (sparse, dense) per sortedness row.
PAPER_FACTORS: dict[tuple[Sortedness, Sortedness], tuple[float, float]] = {
    (Sortedness.SORTED, Sortedness.SORTED): (1.0, 1.0),
    (Sortedness.SORTED, Sortedness.UNSORTED): (1.0, 4.0),
    (Sortedness.UNSORTED, Sortedness.SORTED): (1.0, 2.8),
    (Sortedness.UNSORTED, Sortedness.UNSORTED): (1.0, 4.0),
}


@dataclass
class Figure5Cell:
    """One grid cell's outcome."""

    r_sortedness: Sortedness
    s_sortedness: Sortedness
    density: Density
    sqo_cost: float
    dqo_cost: float
    sqo_plan: str
    dqo_plan: str
    #: measured wall-clock seconds, when --execute was requested.
    sqo_seconds: float | None = None
    dqo_seconds: float | None = None

    @property
    def factor(self) -> float:
        """cost(SQO) / cost(DQO)."""
        return self.sqo_cost / self.dqo_cost if self.dqo_cost else float("inf")

    @property
    def measured_speedup(self) -> float | None:
        """Wall-clock speedup, when executed."""
        if self.sqo_seconds is None or not self.dqo_seconds:
            return None
        return self.sqo_seconds / self.dqo_seconds


@dataclass
class Figure5Result:
    """The full 4x2 grid."""

    cells: list[Figure5Cell] = field(default_factory=list)

    def cell(
        self, r: Sortedness, s: Sortedness, density: Density
    ) -> Figure5Cell:
        """Fetch one cell."""
        for cell in self.cells:
            if (
                cell.r_sortedness is r
                and cell.s_sortedness is s
                and cell.density is density
            ):
                return cell
        raise ValueError(f"no cell ({r}, {s}, {density})")


def run_figure5(
    n_r: int | None = None,
    n_s: int | None = None,
    num_groups: int | None = None,
    execute_plans: bool = False,
    consider_commutation: bool = False,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> Figure5Result:
    """Optimise (and optionally execute) all eight configurations.

    Cardinality arguments default to the paper's values; pass smaller ones
    for quick runs (``execute_plans`` at full size takes a few seconds per
    cell).
    """
    kwargs = {}
    if n_r is not None:
        kwargs["n_r"] = n_r
    if n_s is not None:
        kwargs["n_s"] = n_s
    if num_groups is not None:
        kwargs["num_groups"] = num_groups
    result = Figure5Result()
    for (r_sort, s_sort) in PAPER_FACTORS:
        for density in (Density.SPARSE, Density.DENSE):
            scenario = make_join_scenario(
                r_sortedness=r_sort,
                s_sortedness=s_sort,
                density=density,
                seed=seed,
                **kwargs,
            )
            catalog = scenario.build_catalog()
            logical = plan_query(QUERY, catalog)
            sqo = optimize_sqo(
                logical,
                catalog,
                cost_model,
                consider_commutation=consider_commutation,
            )
            dqo = optimize_dqo(
                logical,
                catalog,
                cost_model,
                consider_commutation=consider_commutation,
            )
            cell = Figure5Cell(
                r_sortedness=r_sort,
                s_sortedness=s_sort,
                density=density,
                sqo_cost=sqo.cost,
                dqo_cost=dqo.cost,
                sqo_plan=_plan_summary(sqo.plan),
                dqo_plan=_plan_summary(dqo.plan),
            )
            if execute_plans:
                sqo_operator = to_operator(sqo.plan, catalog)
                dqo_operator = to_operator(dqo.plan, catalog)
                cell.sqo_seconds = time_callable(
                    sqo_operator.to_table, repeats=3, warmup=1
                ).best
                cell.dqo_seconds = time_callable(
                    dqo_operator.to_table, repeats=3, warmup=1
                ).best
            result.cells.append(cell)
    return result


def _plan_summary(plan) -> str:
    """Compact `GROUPING(JOIN)` signature of a plan."""
    grouping = join = None
    sorts = 0
    for node in plan.walk():
        if node.op == "group_by":
            grouping = node.grouping_algorithm.name
        elif node.op == "join":
            join = node.join_algorithm.name
        elif node.op == "sort":
            sorts += 1
    summary = f"{grouping}({join})" if join else f"{grouping}"
    if sorts:
        summary += f"+{sorts}sort"
    return summary


def render_figure5(result: Figure5Result, execute_plans: bool = False) -> str:
    """Render the grid next to the paper's published factors."""
    headers = [
        "R",
        "S",
        "density",
        "SQO cost",
        "DQO cost",
        "factor",
        "paper",
        "SQO plan",
        "DQO plan",
    ]
    if execute_plans:
        headers.append("measured speedup")
    rows = []
    for cell in result.cells:
        paper_sparse, paper_dense = PAPER_FACTORS[
            (cell.r_sortedness, cell.s_sortedness)
        ]
        paper = paper_dense if cell.density is Density.DENSE else paper_sparse
        row = [
            cell.r_sortedness.value,
            cell.s_sortedness.value,
            cell.density.value,
            f"{cell.sqo_cost:,.0f}",
            f"{cell.dqo_cost:,.0f}",
            f"{cell.factor:.1f}x",
            f"{paper:.1f}x",
            cell.sqo_plan,
            cell.dqo_plan,
        ]
        if execute_plans:
            speedup = cell.measured_speedup
            row.append(f"{speedup:.1f}x" if speedup is not None else "-")
        rows.append(row)
    return render_table(
        headers,
        rows,
        title=(
            "Figure 5 — improvement factors of DQO over SQO "
            "(estimated plan costs; |R|=45,000 reconstructed, "
            "|S|=|join|=90,000, 20,000 groups)"
        ),
    )


def main() -> None:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--execute",
        action="store_true",
        help="also execute both plans per cell and report wall-clock speedup",
    )
    parser.add_argument(
        "--commutation",
        action="store_true",
        help="allow the optimiser to swap join build/probe sides (ablation)",
    )
    args = parser.parse_args()
    result = run_figure5(
        execute_plans=args.execute, consider_commutation=args.commutation
    )
    print(render_figure5(result, execute_plans=args.execute))
    if args.commutation:
        print(
            "\n(commutation enabled: the 'R sorted, S unsorted, dense' cell "
            "drops to 2.8x because SQO may now build on S and stream sorted "
            "R — the paper's 4x assumes the syntactic build side)"
        )


if __name__ == "__main__":
    main()
