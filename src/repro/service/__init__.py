"""The query service: sessions, admission control, deadlines, cancellation.

This package turns the library into something you can *serve traffic
with*: :class:`QueryService` runs SQL end-to-end (parse → optimise with
the plan cache → morsel-parallel execution) under per-query resource
governance, :class:`AdmissionController` bounds concurrency with
priority classes and load shedding, :class:`Session` scopes client
settings, and :class:`QueryServer` exposes it all over a JSON-lines TCP
protocol with graceful shutdown.

Submodules import lazily (PEP 562): the engine imports
:mod:`repro.service.context` from its hot path, and an eager package
``__init__`` would close an import cycle through the executor.
"""

from __future__ import annotations

_EXPORTS = {
    "CancellationToken": "repro.service.context",
    "QueryContext": "repro.service.context",
    "activate_context": "repro.service.context",
    "check_active_context": "repro.service.context",
    "get_active_context": "repro.service.context",
    "AdmissionConfig": "repro.service.admission",
    "AdmissionController": "repro.service.admission",
    "AdmissionSlot": "repro.service.admission",
    "Priority": "repro.service.admission",
    "QueryOutcome": "repro.service.session",
    "QueryService": "repro.service.session",
    "ServiceConfig": "repro.service.session",
    "Session": "repro.service.session",
    "QueryServer": "repro.service.server",
    "ServiceClient": "repro.service.server",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
