"""The query service and its sessions: SQL end-to-end under governance.

:class:`QueryService` is the in-process serving core: it takes SQL text
through ``repro.sql`` (parse + plan), the unified optimiser with a
shared :class:`~repro.core.optimizer.plancache.PlanCache`, and
morsel-parallel execution — every stage governed by one
:class:`~repro.service.context.QueryContext` (deadline, cancellation,
memory budget) and gated by the :class:`~repro.service.admission.
AdmissionController`.

Under pressure the service degrades gracefully instead of falling over:
a query admitted degraded (deep queue) runs **serial** (workers=1) with
a **shallow** SQO-depth search — each query is slower, but the system
keeps its throughput and its tail latency bounded.

:class:`Session` is the client-facing handle: scoped settings (deadline,
priority, workers, memory budget) that apply to that session's queries
only, plus per-session statistics. Sessions are cheap; make one per
logical client. The TCP front-end (:mod:`repro.service.server`) maps
each connection to one session.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.core.optimizer.base import (
    OptimizationResult,
    dqo_config,
    sqo_config,
)
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.core.optimizer.plancache import DEFAULT_CAPACITY, PlanCache
from repro.core.plan import to_operator
from repro.engine.executor import execute, explain_analyze
from repro.engine.parallel import get_executor_config, parallel_execution
from repro.errors import (
    AdmissionRejected,
    QueryCancelled,
    ReproError,
    ServiceError,
)
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.profile import QueryProfile
from repro.obs.querylog import QueryLog, get_query_log
from repro.obs.sentinel import (
    BaselineStore,
    Sentinel,
    SentinelAlert,
    SentinelConfig,
    SentinelThread,
)
from repro.obs.runtime import get_metrics, get_tracer
from repro.obs.slo import SLObjective, SLOTracker
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    Priority,
)
from repro.service.context import (
    CancellationToken,
    QueryContext,
    activate_context,
)
from repro.sql import plan_query
from repro.storage.catalog import Catalog
from repro.storage.table import Table

_SESSION_IDS = itertools.count(1)

#: the per-request stage taxonomy, in lifecycle order. ``queue`` is the
#: admission wait, ``parse`` covers SQL → logical plan, ``plan_cache``
#: is the optimiser call when it resolved from the cache, ``optimize``
#: when it enumerated, ``execute`` the physical run, and ``serialize``
#: (stamped by the TCP server) the wire encoding of the result.
STAGES = ("queue", "parse", "plan_cache", "optimize", "execute", "serialize")

#: distinct query texts whose cumulative execute time the service tracks
#: for the ``obs.top`` dashboard's "top queries" panel.
TOP_QUERIES_CAPACITY = 64

#: spec-fingerprint -> SQL entries the service remembers so ``why`` can
#: resolve a fingerprint seen in an alert or log row back to query text.
FINGERPRINT_INDEX_CAPACITY = 256


def observe_stage(
    metrics, stage: str, seconds: float, trace_id: str = ""
) -> None:
    """Record one stage duration into its tagged histogram
    (``service.stage_seconds.<stage>``), exemplared with ``trace_id``."""
    if metrics.enabled:
        metrics.histogram(
            f"service.stage_seconds.{stage}", DEFAULT_BUCKETS, exist_ok=True
        ).observe(seconds, trace_id=trace_id)


@dataclass(frozen=True)
class ServiceConfig:
    """The service's policy dials (admission policy rides along)."""

    #: admission policy (concurrency, queue bound, degradation point).
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: morsel workers per query; None resolves the ambient executor
    #: configuration (``REPRO_WORKERS``) at query time.
    workers: int | None = None
    #: execution backend the optimiser plans for ("thread" / "process");
    #: None resolves the ambient executor configuration (``REPRO_BACKEND``)
    #: at query time.
    backend: str | None = None
    #: optimise deep (DQO) by default; False = shallow (SQO).
    deep: bool = True
    #: deadline applied when a query names none (seconds, None = none).
    default_deadline: float | None = None
    #: memory budget applied when a query names none (bytes, None = none).
    default_memory_budget: int | None = None
    #: plan-cache capacity (plans), shared across the service's queries.
    plan_cache_capacity: int = DEFAULT_CAPACITY
    #: latency objectives per priority class; None takes the defaults in
    #: :data:`repro.obs.slo.DEFAULT_OBJECTIVES`.
    slo_objectives: "dict[Priority, SLObjective] | None" = None
    #: sliding window the SLO tracker evaluates over, in seconds.
    slo_window_seconds: float = 300.0
    #: plan-regression sentinel dials; None takes the defaults. The
    #: sentinel thread only starts when a query log is active (it has
    #: nothing to tail otherwise) — see :meth:`QueryService.
    #: attach_sentinel`.
    sentinel: SentinelConfig | None = None
    #: persist sentinel baselines here (None = in-memory only).
    sentinel_baseline_path: str | None = None
    #: sentinel log-tail poll interval, seconds.
    sentinel_interval_seconds: float = 2.0
    #: advise the admission controller into degraded posture while a
    #: critical sentinel alert is fresh (containment; default off).
    sentinel_degrade_on_critical: bool = False


@dataclass
class QueryOutcome:
    """Everything the service knows about one completed query."""

    #: the context's query id (appears in logs, metrics, the protocol).
    query_id: str
    #: the request's correlation id (spans, exemplars, log rows, profile).
    trace_id: str
    #: the result rows.
    table: Table
    #: end-to-end wall seconds (admission wait included).
    wall_seconds: float
    #: seconds spent waiting in the admission queue.
    queued_seconds: float
    #: seconds spent in the optimiser (0.0 on a plan-cache hit path too).
    optimize_seconds: float
    #: seconds spent executing the physical plan.
    execute_seconds: float
    #: the optimiser's cost for the chosen plan.
    cost: float
    #: True when the plan came from the plan cache without enumeration.
    cached: bool
    #: True when the query ran degraded (serial + shallow search).
    degraded: bool
    #: the chosen physical plan, rendered.
    plan: str
    #: shape hash of the chosen plan (:func:`repro.core.plan.
    #: plan_fingerprint`) — "same query, different plan" observable.
    plan_hash: str = ""
    #: normalised query fingerprint the plan cache and the sentinel key
    #: baselines on.
    spec_fingerprint: str = ""
    #: catalog statistics version the plan was optimised against.
    catalog_version: int = 0
    #: per-stage wall seconds (see :data:`STAGES`; ``serialize`` is
    #: stamped later by the TCP server, absent for in-process callers).
    stage_seconds: dict = field(default_factory=dict)
    #: full per-operator profile when the query ran with ``profile=True``.
    profile: QueryProfile | None = None


class QueryService:
    """The in-process serving core; thread-safe, one per catalog.

    Each query gets a *fresh* optimiser instance — the DP rebinds
    per-call state and is not safe to share across threads — but all of
    them share one thread-safe :class:`PlanCache`, so concurrent
    sessions still reuse each other's plans.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: ServiceConfig | None = None,
        cost_model=None,
    ) -> None:
        self._catalog = catalog
        self._config = config or ServiceConfig()
        self._cost_model = cost_model
        self._admission = AdmissionController(self._config.admission)
        self._plan_cache = PlanCache(self._config.plan_cache_capacity)
        self._slo = SLOTracker(
            objectives=self._config.slo_objectives,
            window_seconds=self._config.slo_window_seconds,
        )
        self._active: dict[str, QueryContext] = {}
        self._active_lock = threading.Lock()
        self._closed = False
        # Claim the process-backend pool/store for this service's
        # lifetime: with several services in one process, segments are
        # only unlinked when the last of them shuts down.
        from repro.engine.procpool import register_pool_user

        register_pool_user()
        self._pool_released = False
        self._started_at = time.monotonic()
        self._counts_lock = threading.Lock()
        self._counts = {
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
        }
        # sql -> [executions, cumulative execute seconds]; bounded.
        self._top_queries: dict[str, list] = {}
        # spec fingerprint -> sql text; bounded FIFO, feeds `why`.
        self._sql_by_fingerprint: dict[str, str] = {}
        self._sentinel = Sentinel(
            store=BaselineStore(
                self._config.sentinel_baseline_path,
                reservoir=(self._config.sentinel or SentinelConfig()).reservoir,
            ),
            config=self._config.sentinel or SentinelConfig(),
        )
        self._sentinel_thread: SentinelThread | None = None
        if self._sentinel.config.enabled:
            log = get_query_log()
            if log is not None:
                self.attach_sentinel(log)

    @property
    def admission(self) -> AdmissionController:
        """The service's admission controller (inspect or tune)."""
        return self._admission

    @property
    def plan_cache(self) -> PlanCache:
        """The shared plan cache."""
        return self._plan_cache

    @property
    def slo(self) -> SLOTracker:
        """The service's sliding-window SLO tracker."""
        return self._slo

    @property
    def sentinel(self) -> Sentinel:
        """The service's plan-regression sentinel."""
        return self._sentinel

    @property
    def sentinel_thread(self) -> "SentinelThread | None":
        """The live log tail feeding the sentinel, when attached."""
        return self._sentinel_thread

    def attach_sentinel(self, log: QueryLog) -> SentinelThread:
        """Start (or return) the sentinel thread tailing ``log``.

        Called automatically at construction when a query log is active;
        call it explicitly after installing a log later. Idempotent.
        """
        if self._sentinel_thread is not None:
            return self._sentinel_thread
        self._sentinel_thread = SentinelThread(
            log,
            self._sentinel,
            interval_seconds=self._config.sentinel_interval_seconds,
            on_alerts=self._on_sentinel_alerts,
        )
        self._sentinel_thread.start()
        return self._sentinel_thread

    def _on_sentinel_alerts(self, alerts: "list[SentinelAlert]") -> None:
        if not self._config.sentinel_degrade_on_critical:
            return
        if any(alert.severity == "critical" for alert in alerts):
            self._admission.advise_degraded(
                self._sentinel.config.critical_ttl_seconds
            )

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def uptime_seconds(self) -> float:
        """Seconds since the service was constructed."""
        return time.monotonic() - self._started_at

    def counts(self) -> dict:
        """Lifetime outcome counters (completed/failed/cancelled/rejected)."""
        with self._counts_lock:
            return dict(self._counts)

    def top_queries(self, limit: int = 10) -> list[dict]:
        """The heaviest query texts by cumulative execute seconds."""
        with self._counts_lock:
            ranked = sorted(
                self._top_queries.items(),
                key=lambda item: item[1][1],
                reverse=True,
            )[: max(int(limit), 0)]
        return [
            {
                "sql": sql,
                "executions": int(count),
                "total_execute_seconds": float(seconds),
            }
            for sql, (count, seconds) in ranked
        ]

    def _count(self, outcome: str) -> None:
        with self._counts_lock:
            self._counts[outcome] += 1

    def _note_fingerprint(self, fingerprint: str, sql: str) -> None:
        if not fingerprint:
            return
        with self._counts_lock:
            if (
                fingerprint not in self._sql_by_fingerprint
                and len(self._sql_by_fingerprint) >= FINGERPRINT_INDEX_CAPACITY
            ):
                oldest = next(iter(self._sql_by_fingerprint))
                del self._sql_by_fingerprint[oldest]
            self._sql_by_fingerprint[fingerprint] = sql

    def resolve_fingerprint(self, fingerprint: str) -> str | None:
        """The SQL text last seen for a spec fingerprint, if remembered."""
        with self._counts_lock:
            return self._sql_by_fingerprint.get(fingerprint)

    def _note_query(self, sql: str, execute_seconds: float) -> None:
        with self._counts_lock:
            entry = self._top_queries.get(sql)
            if entry is None:
                if len(self._top_queries) >= TOP_QUERIES_CAPACITY:
                    coldest = min(
                        self._top_queries, key=lambda s: self._top_queries[s][1]
                    )
                    del self._top_queries[coldest]
                entry = self._top_queries[sql] = [0, 0.0]
            entry[0] += 1
            entry[1] += float(execute_seconds)

    def health(self) -> dict:
        """A liveness/pressure report: admission state, inflight work,
        plan-cache effectiveness, SLO posture, uptime.

        ``state`` is ``accepting`` (normal), ``degraded`` (queue deep
        enough that new admissions run serial + shallow), ``shedding``
        (queue full, new queries are rejected), or ``stopped``.
        """
        cache_info = self._plan_cache.info()
        lookups = cache_info.get("hits", 0) + cache_info.get("misses", 0)
        return {
            "state": (
                "stopped" if self._closed else self._admission.state()
            ),
            "uptime_seconds": self.uptime_seconds(),
            "inflight": self._admission.running,
            "queue_depth": self._admission.queue_depth,
            "active_queries": self.active_queries(),
            "counts": self.counts(),
            "plan_cache": {
                **cache_info,
                "hit_rate": (
                    cache_info.get("hits", 0) / lookups if lookups else 0.0
                ),
            },
            "slo": self._slo.snapshot(),
            "sentinel": {
                **self._sentinel.snapshot(),
                "tailing": (
                    self._sentinel_thread is not None
                    and self._sentinel_thread.running
                ),
            },
        }

    def session(self, **settings) -> "Session":
        """A new client session; ``settings`` seed its scoped settings."""
        return Session(self, **settings)

    def cancel(self, query_id: str, reason: str = "client cancel") -> bool:
        """Cancel a running (or queued) query by id.

        :returns: True when the id named an active query.
        """
        with self._active_lock:
            context = self._active.get(query_id)
        if context is None:
            return False
        context.token.cancel(reason)
        return True

    def active_queries(self) -> list[str]:
        """Ids of queries currently queued or executing."""
        with self._active_lock:
            return sorted(self._active)

    def execute(
        self,
        sql: str,
        deadline: float | None = None,
        priority: Priority = Priority.NORMAL,
        token: CancellationToken | None = None,
        memory_budget_bytes: int | None = None,
        workers: int | None = None,
        queue_timeout: float | None = None,
        query_id: str | None = None,
        trace_id: str | None = None,
        profile: bool = False,
    ) -> QueryOutcome:
        """Run ``sql`` end-to-end under admission + context governance.

        :param deadline: relative seconds; defaults to the service's
            ``default_deadline``. Governs queue wait, optimisation, and
            execution together.
        :param priority: admission queue class.
        :param token: external cancellation latch (e.g. held by a server
            connection); a fresh one is created when None.
        :param memory_budget_bytes: cap on any single operator's working
            set; defaults to the service's ``default_memory_budget``.
        :param workers: morsel workers for this query; defaults to the
            service's setting, then the ambient executor configuration.
            Forced to 1 when the query is admitted degraded.
        :param queue_timeout: max seconds to wait for admission.
        :param trace_id: client-minted correlation id; minted at this
            edge when None. Threads through every span, stage histogram
            exemplar, query-log row, and profile of this request — and
            rides on any raised error as ``error.trace_id``.
        :param profile: run instrumented (``explain_analyze``) and
            attach the resulting :class:`~repro.obs.profile.
            QueryProfile` to the outcome (slower; see the obs-overhead
            bench for the budget).
        :raises repro.errors.AdmissionRejected: shed at admission.
        :raises repro.errors.DeadlineExceeded: deadline passed (queued,
            optimising, or executing).
        :raises repro.errors.QueryCancelled: token triggered.
        :raises repro.errors.MemoryBudgetExceeded: budget exceeded.
        :raises repro.errors.ReproError: parse/plan/optimise/execution
            errors, each with its usual typed class.
        """
        if self._closed:
            raise ServiceError("query service is shut down")
        context = QueryContext.start(
            deadline=(
                deadline if deadline is not None
                else self._config.default_deadline
            ),
            token=token,
            memory_budget_bytes=(
                memory_budget_bytes
                if memory_budget_bytes is not None
                else self._config.default_memory_budget
            ),
            query_id=query_id,
            trace_id=trace_id,
        )
        metrics = get_metrics()
        tracer = get_tracer()
        with self._active_lock:
            self._active[context.query_id] = context
        started = time.monotonic()
        status = "ok"
        outcome: QueryOutcome | None = None
        try:
            with tracer.span(
                "service.query",
                query_id=context.query_id,
                trace_id=context.trace_id,
                sql=sql,
            ):
                slot = self._admission.admit(
                    priority=priority, timeout=queue_timeout, context=context
                )
                with slot:
                    outcome = self._run_admitted(
                        sql, context, slot, workers, tracer, profile
                    )
            outcome.wall_seconds = time.monotonic() - started
            self._count("completed")
            self._note_query(sql, outcome.execute_seconds)
            self._note_fingerprint(outcome.spec_fingerprint, sql)
            if metrics.enabled:
                metrics.counter("service.completed", exist_ok=True).inc()
                metrics.histogram(
                    "service.query_seconds", DEFAULT_BUCKETS, exist_ok=True
                ).observe(outcome.wall_seconds, trace_id=context.trace_id)
                for stage, seconds in outcome.stage_seconds.items():
                    observe_stage(metrics, stage, seconds, context.trace_id)
            return outcome
        except ReproError as error:
            status = type(error).__name__
            error.trace_id = context.trace_id  # correlate failures too
            if isinstance(error, QueryCancelled):
                self._count("cancelled")
            elif isinstance(error, AdmissionRejected):
                self._count("rejected")
            else:
                self._count("failed")
            if metrics.enabled:
                if isinstance(error, QueryCancelled):
                    metrics.counter("service.cancelled", exist_ok=True).inc()
                else:
                    metrics.counter("service.failed", exist_ok=True).inc()
            raise
        finally:
            wall_seconds = time.monotonic() - started
            self._slo.record(
                priority, wall_seconds, ok=(status == "ok")
            )
            with self._active_lock:
                self._active.pop(context.query_id, None)
            query_log = get_query_log()
            if query_log is not None:
                entry = {
                    "kind": "service",
                    "query_id": context.query_id,
                    "trace_id": context.trace_id,
                    "sql": sql,
                    "status": status,
                    "priority": int(priority),
                    "wall_seconds": wall_seconds,
                }
                if outcome is not None:
                    entry.update(
                        queued_seconds=outcome.queued_seconds,
                        optimize_seconds=outcome.optimize_seconds,
                        execute_seconds=outcome.execute_seconds,
                        stages=dict(outcome.stage_seconds),
                        rows_out=outcome.table.num_rows,
                        cached=outcome.cached,
                        degraded=outcome.degraded,
                        plan_hash=outcome.plan_hash,
                        spec_fingerprint=outcome.spec_fingerprint,
                        catalog_version=outcome.catalog_version,
                    )
                query_log.append(entry)

    def _run_admitted(
        self,
        sql: str,
        context,
        slot,
        workers: int | None,
        tracer,
        profile: bool = False,
    ) -> QueryOutcome:
        degraded = slot.degraded
        if workers is None:
            workers = self._config.workers
        if degraded:
            workers = 1
        stage_seconds: dict = {"queue": slot.queued_seconds}
        query_profile: QueryProfile | None = None
        with activate_context(context):
            parse_started = time.monotonic()
            with tracer.span(
                "service.parse",
                query_id=context.query_id,
                trace_id=context.trace_id,
            ):
                logical = plan_query(sql, self._catalog)
            stage_seconds["parse"] = time.monotonic() - parse_started
            optimize_started = time.monotonic()
            with tracer.span(
                "service.optimize",
                query_id=context.query_id,
                trace_id=context.trace_id,
            ):
                result = self._optimize(logical, workers, degraded)
            optimize_seconds = time.monotonic() - optimize_started
            # A cache hit never enumerated: its cost is the lookup, a
            # distinct stage from a real optimisation.
            stage_seconds[
                "plan_cache" if result.cached else "optimize"
            ] = optimize_seconds
            operator = to_operator(
                result.plan, self._catalog, validate=False
            )
            execute_started = time.monotonic()
            with tracer.span(
                "service.execute",
                query_id=context.query_id,
                trace_id=context.trace_id,
            ):
                if profile:
                    analyzed = explain_analyze(operator, workers=workers)
                    table = analyzed.table
                    query_profile = QueryProfile.from_analyzed(
                        analyzed,
                        query=sql,
                        trace_id=context.trace_id,
                        plan_hash=result.plan_fingerprint,
                    )
                    if result.search_trace:
                        query_profile.search = dict(result.search_trace)
                else:
                    table = execute(operator, workers=workers)
            execute_seconds = time.monotonic() - execute_started
            stage_seconds["execute"] = execute_seconds
        return QueryOutcome(
            query_id=context.query_id,
            trace_id=context.trace_id,
            table=table,
            wall_seconds=0.0,  # stamped by the caller
            queued_seconds=slot.queued_seconds,
            optimize_seconds=optimize_seconds,
            execute_seconds=execute_seconds,
            cost=result.cost,
            cached=result.cached,
            degraded=degraded,
            plan=result.plan.explain(),
            plan_hash=result.plan_fingerprint,
            spec_fingerprint=result.spec_fingerprint,
            catalog_version=self._catalog.version,
            stage_seconds=stage_seconds,
            profile=query_profile,
        )

    def _optimize(
        self, logical, workers: int | None, degraded: bool
    ) -> OptimizationResult:
        deep = self._config.deep and not degraded
        backend = self._config.backend or get_executor_config().backend
        config = (
            dqo_config(workers=workers, backend=backend)
            if deep
            else sqo_config(workers=workers, backend=backend)
        )
        optimizer = DynamicProgrammingOptimizer(
            self._catalog,
            cost_model=self._cost_model,
            config=config,
            plan_cache=self._plan_cache,
        )
        return optimizer.optimize(logical)

    def why(
        self,
        sql: str | None = None,
        fingerprint: str | None = None,
        deep: bool | None = None,
        workers: int | None = None,
    ):
        """``EXPLAIN WHY`` for a query this service can optimise.

        Either ``sql`` or a ``fingerprint`` previously seen by this
        service (e.g. from a sentinel alert or query-log row) names the
        query. The search runs against a private trace and a private
        plan cache — the service's shared cache is not consulted, so the
        report always reflects a fresh enumeration.

        :param deep: explain under the deep (DQO) or shallow (SQO)
            search; defaults to the service's configured depth.
        :returns: a :class:`repro.obs.search.explain.WhyReport`.
        :raises ServiceError: neither argument given, or the fingerprint
            is not in the service's (bounded) index.
        """
        if sql is None:
            if not fingerprint:
                raise ServiceError("why needs sql or a spec fingerprint")
            sql = self.resolve_fingerprint(fingerprint)
            if sql is None:
                raise ServiceError(
                    f"fingerprint {fingerprint!r} not seen by this "
                    "service (index keeps the last "
                    f"{FINGERPRINT_INDEX_CAPACITY} fingerprints)"
                )
        # Imported here: the explain layer pulls in the optimiser's
        # explain/trace machinery, which plain query serving never needs.
        from repro.obs.search.explain import explain_why

        if workers is None:
            workers = self._config.workers
        use_deep = self._config.deep if deep is None else bool(deep)
        backend = self._config.backend or get_executor_config().backend
        config = (
            dqo_config(workers=workers, backend=backend)
            if use_deep
            else sqo_config(workers=workers, backend=backend)
        )
        return explain_why(
            sql,
            self._catalog,
            config=config,
            cost_model=self._cost_model,
        )

    def shutdown(self, cancel_active: bool = True) -> None:
        """Stop taking queries; optionally cancel in-flight ones. The
        sentinel thread drains once more and its baselines persist."""
        self._closed = True
        if cancel_active:
            with self._active_lock:
                contexts = list(self._active.values())
            for context in contexts:
                context.token.cancel("service shutting down")
        self._admission.shutdown()
        if self._sentinel_thread is not None:
            self._sentinel_thread.stop()
            self._sentinel_thread = None
        try:
            self._sentinel.store.save()
        except OSError:  # persistence is best-effort at shutdown
            pass
        # Release this service's claim on the process-backend worker
        # pool; the pool and its shared-memory segments are reaped when
        # the last service using them stops (atexit sweeps regardless).
        from repro.engine.procpool import release_pool_user

        if not self._pool_released:
            self._pool_released = True
            release_pool_user()


class Session:
    """One client's handle on a :class:`QueryService`.

    Settings set here (``deadline``, ``priority``, ``workers``,
    ``memory_budget_bytes``, ``queue_timeout``) scope to this session
    only — two sessions on one service never observe each other's
    settings, including when their queries run concurrently (worker
    overrides are thread-scoped in the executor).
    """

    #: settings :meth:`set` accepts, with their coercions.
    _SETTINGS = {
        "deadline": float,
        "priority": lambda v: Priority(int(v)),
        "workers": int,
        "memory_budget_bytes": int,
        "queue_timeout": float,
        "profile": bool,
    }

    def __init__(self, service: QueryService, **settings) -> None:
        self._service = service
        self.session_id = f"s{next(_SESSION_IDS)}"
        self._settings: dict = {}
        self._lock = threading.Lock()
        self._stats = {
            "queries": 0,
            "rows_out": 0,
            "errors": 0,
            "cancelled": 0,
            "rejected": 0,
            "wall_seconds": 0.0,
        }
        for name, value in settings.items():
            self.set(name, value)

    def set(self, name: str, value) -> None:
        """Set a session-scoped setting (None clears it)."""
        if name not in self._SETTINGS:
            raise ServiceError(
                f"unknown session setting {name!r}; "
                f"have {sorted(self._SETTINGS)}"
            )
        with self._lock:
            if value is None:
                self._settings.pop(name, None)
            else:
                self._settings[name] = self._SETTINGS[name](value)

    def get(self, name: str):
        """The session's value for a setting, or None."""
        with self._lock:
            return self._settings.get(name)

    def settings(self) -> dict:
        """A snapshot of the session's scoped settings."""
        with self._lock:
            return dict(self._settings)

    def stats(self) -> dict:
        """A snapshot of the session's counters."""
        with self._lock:
            return dict(self._stats)

    def execute(self, sql: str, **overrides) -> QueryOutcome:
        """Run ``sql`` with the session's settings (plus overrides)."""
        options = self.settings()
        options.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        try:
            outcome = self._service.execute(sql, **options)
        except QueryCancelled:
            with self._lock:
                self._stats["queries"] += 1
                self._stats["cancelled"] += 1
            raise
        except AdmissionRejected:
            with self._lock:
                self._stats["queries"] += 1
                self._stats["rejected"] += 1
            raise
        except ReproError:
            with self._lock:
                self._stats["queries"] += 1
                self._stats["errors"] += 1
            raise
        with self._lock:
            self._stats["queries"] += 1
            self._stats["rows_out"] += outcome.table.num_rows
            self._stats["wall_seconds"] += outcome.wall_seconds
        return outcome
