"""A threaded JSON-lines TCP front-end for the query service.

Protocol: one JSON object per line, request/response. Each connection is
one :class:`~repro.service.session.Session` (scoped settings live and
die with the connection). Requests carry an ``op``:

``{"op": "query", "sql": ..., "id"?, "trace_id"?, "deadline"?,
"priority"?, "workers"?, "memory_budget_bytes"?, "max_rows"?,
"profile"?}``
    Run SQL; responds ``{"ok": true, "id", "trace_id", "columns",
    "rows", "row_count", "wall_seconds", "stages", "cached",
    "degraded", "plan_hash"}``. ``rows`` is capped at ``max_rows``
    (default 1000);
    ``row_count`` is always the full count. ``trace_id`` is minted at
    the server edge when the client supplies none; ``stages`` maps the
    :data:`~repro.service.session.STAGES` taxonomy (including
    ``serialize``, stamped here) to wall seconds; ``profile: true``
    attaches a full per-operator ``profile`` record.

``{"op": "cancel", "id": ...}``
    Cancel a query started on *any* connection (use a second connection:
    the first is blocked inside its query). Responds ``{"ok": true,
    "cancelled": bool}``.

``{"op": "metrics"}`` / ``{"op": "health"}``
    Telemetry: the process metrics snapshot + instrument kinds (feed
    :func:`repro.obs.exposition.render_prometheus`), and the service's
    :meth:`~repro.service.session.QueryService.health` report
    (admission state, inflight, plan-cache hit rate, SLO posture,
    uptime).

``{"op": "why", "sql"?, "fingerprint"?, "deep"?, "workers"?}``
    ``EXPLAIN WHY``: the server re-optimises the query (named by SQL or
    by a spec fingerprint it has served) with a decision trace attached
    and responds ``{"ok": true, "why": <structured report>, "rendered":
    <text>}`` — see :func:`repro.obs.search.explain.explain_why`.

``{"op": "set", "name": ..., "value": ...}`` / ``{"op": "stats"}`` /
``{"op": "ping"}`` / ``{"op": "close"}``
    Session settings, session + service statistics, liveness, goodbye.

Failures respond ``{"ok": false, "error": "<type name>", "message":
..., "trace_id"?}`` — the typed :mod:`repro.errors` hierarchy crosses
the wire by name (plus ``retry_after`` for admission rejections, plus
the failed request's ``trace_id`` when one was assigned). The
connection survives query failures; only ``close`` or EOF ends it.

Shutdown is graceful: stop accepting, cancel in-flight queries through
their tokens, then join connection threads (bounded wait).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Any

import numpy as np

from repro.errors import AdmissionRejected, ReproError, ServiceError
from repro.obs.runtime import get_metrics
from repro.service.context import CancellationToken, new_trace_id
from repro.service.session import QueryService, Session, observe_stage

#: rows a query response carries unless the request raises/lowers it.
DEFAULT_MAX_ROWS = 1000


def _json_value(value: Any) -> Any:
    """Make numpy scalars JSON-serialisable."""
    if isinstance(value, np.generic):
        return value.item()
    return value


class QueryServer:
    """Serves a :class:`QueryService` over JSON-lines TCP.

    >>> server = QueryServer(service)          # doctest: +SKIP
    >>> server.start()                         # doctest: +SKIP
    >>> client = ServiceClient("127.0.0.1", server.port)  # doctest: +SKIP
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._service = service
        self._host = host
        self._requested_port = port
        self._socket: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: dict[int, socket.socket] = {}
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._tokens: dict[str, CancellationToken] = {}
        self._stopping = threading.Event()
        self._conn_ids = iter(range(1, 1_000_000_000))

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — pick a free one)."""
        if self._socket is None:
            raise ServiceError("server is not started")
        return self._socket.getsockname()[1]

    @property
    def service(self) -> QueryService:
        return self._service

    def start(self) -> "QueryServer":
        """Bind, listen, and serve on background threads."""
        if self._socket is not None:
            raise ServiceError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(64)
        self._socket = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        assert self._socket is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._socket.accept()
            except OSError:
                return  # listener closed during shutdown
            conn_id = next(self._conn_ids)
            with self._lock:
                if self._stopping.is_set():
                    conn.close()
                    return
                self._connections[conn_id] = conn
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn, conn_id),
                    name=f"repro-server-conn-{conn_id}",
                    daemon=True,
                )
                self._threads.append(thread)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("service.connections", exist_ok=True).inc()
            thread.start()

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        session = self._service.session()
        try:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    response = self._error_response(
                        ServiceError(f"malformed request JSON: {error}")
                    )
                else:
                    if not isinstance(request, dict):
                        request = {"op": None}
                    if request.get("op") == "close":
                        writer.write(json.dumps({"ok": True, "bye": True}))
                        writer.write("\n")
                        writer.flush()
                        return
                    response = self._handle(session, request)
                writer.write(json.dumps(response))
                writer.write("\n")
                writer.flush()
        except (OSError, ValueError):
            pass  # connection torn down mid-request
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._connections.pop(conn_id, None)

    def _handle(self, session: Session, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "query":
                return self._handle_query(session, request)
            if op == "cancel":
                query_id = str(request.get("id", ""))
                with self._lock:
                    token = self._tokens.get(query_id)
                if token is not None:
                    token.cancel("cancelled over the wire")
                    cancelled = True
                else:
                    cancelled = self._service.cancel(query_id)
                return {"ok": True, "cancelled": cancelled}
            if op == "set":
                session.set(request.get("name", ""), request.get("value"))
                return {"ok": True, "settings": _plain(session.settings())}
            if op == "stats":
                return {
                    "ok": True,
                    "session": session.stats(),
                    "settings": _plain(session.settings()),
                    "service": {
                        "running": self._service.admission.running,
                        "queue_depth": self._service.admission.queue_depth,
                        "active_queries": self._service.active_queries(),
                        "plan_cache": self._service.plan_cache.info(),
                        "plan_cache_entries": (
                            self._service.plan_cache.entry_stats(limit=10)
                        ),
                        "top_queries": self._service.top_queries(),
                    },
                }
            if op == "metrics":
                registry = get_metrics()
                return {
                    "ok": True,
                    "enabled": registry.enabled,
                    "metrics": registry.snapshot(),
                    "kinds": registry.kinds(),
                }
            if op == "health":
                return {"ok": True, "health": self._service.health()}
            if op == "why":
                report = self._service.why(
                    sql=request.get("sql"),
                    fingerprint=request.get("fingerprint"),
                    deep=request.get("deep"),
                    workers=request.get("workers"),
                )
                return {
                    "ok": True,
                    "why": report.to_dict(),
                    "rendered": report.render(),
                }
            if op == "ping":
                return {"ok": True, "pong": True}
            raise ServiceError(f"unknown op {op!r}")
        except ReproError as error:
            return self._error_response(error)

    def _handle_query(self, session: Session, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ServiceError("query op requires a non-empty 'sql' string")
        query_id = str(request["id"]) if request.get("id") else None
        # Mint the correlation id at the server edge when the client did
        # not — every span/metric/log row of this request carries it.
        trace_id = str(request.get("trace_id") or "") or new_trace_id()
        token = CancellationToken()
        if query_id is not None:
            with self._lock:
                self._tokens[query_id] = token
        try:
            outcome = session.execute(
                sql,
                deadline=request.get("deadline"),
                priority=request.get("priority"),
                workers=request.get("workers"),
                memory_budget_bytes=request.get("memory_budget_bytes"),
                token=token,
                query_id=query_id,
                trace_id=trace_id,
                profile=request.get("profile"),
            )
        finally:
            if query_id is not None:
                with self._lock:
                    self._tokens.pop(query_id, None)
        max_rows = int(request.get("max_rows", DEFAULT_MAX_ROWS))
        table = outcome.table
        serialize_started = time.monotonic()
        names = list(table.schema.names)
        count = min(table.num_rows, max(max_rows, 0))
        columns = [table[name][:count].tolist() for name in names]
        rows = [list(values) for values in zip(*columns)] if count else []
        rows = [[_json_value(v) for v in row] for row in rows]
        serialize_seconds = time.monotonic() - serialize_started
        stages = dict(outcome.stage_seconds)
        stages["serialize"] = serialize_seconds
        observe_stage(
            get_metrics(), "serialize", serialize_seconds, outcome.trace_id
        )
        response = {
            "ok": True,
            "id": outcome.query_id,
            "trace_id": outcome.trace_id,
            "columns": names,
            "rows": rows,
            "row_count": table.num_rows,
            "truncated": count < table.num_rows,
            "wall_seconds": outcome.wall_seconds,
            "queued_seconds": outcome.queued_seconds,
            "stages": stages,
            "cached": outcome.cached,
            "degraded": outcome.degraded,
            "cost": outcome.cost,
            "plan_hash": outcome.plan_hash,
        }
        if outcome.profile is not None:
            response["profile"] = outcome.profile.to_dict()
        return response

    @staticmethod
    def _error_response(error: ReproError) -> dict:
        response = {
            "ok": False,
            "error": type(error).__name__,
            "message": str(error),
        }
        if isinstance(error, AdmissionRejected):
            response["retry_after"] = error.retry_after
        trace_id = getattr(error, "trace_id", "")
        if trace_id:
            response["trace_id"] = trace_id
        return response

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: no new connections, cancel in-flight queries,
        join connection threads (bounded by ``timeout``)."""
        self._stopping.set()
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
        self._service.shutdown(cancel_active=True)
        with self._lock:
            connections = list(self._connections.values())
            threads = list(self._threads)
        deadline = time.monotonic() + max(timeout, 0.1)
        # Short grace so in-flight responses (including the cancellation
        # errors we just triggered) flush before sockets are forced shut.
        grace_deadline = time.monotonic() + min(1.0, max(timeout, 0.1) / 2)
        for thread in threads:
            remaining = grace_deadline - time.monotonic()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
        # Force-close: unblocks connection threads parked in a read.
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=max(deadline - time.monotonic(), 0.05))
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    def __enter__(self) -> "QueryServer":
        return self.start() if self._socket is None else self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _plain(settings: dict) -> dict:
    """Session settings with enum values flattened for JSON."""
    return {
        name: int(value) if hasattr(value, "value") else value
        for name, value in settings.items()
    }


#: per-process cache of synthesised error classes for wire error names
#: the local :mod:`repro.errors` doesn't define (one class per name, so
#: repeated failures raise the *same* type and ``except`` works).
_WIRE_ERROR_CLASSES: dict[str, type] = {}
_WIRE_ERROR_LOCK = threading.Lock()


def _wire_error_class(name: str) -> type:
    """A :class:`ServiceError` subclass named after an unknown wire
    error class, preserving the server's typing across the protocol."""
    safe = name if name.isidentifier() else "WireError"
    with _WIRE_ERROR_LOCK:
        error_class = _WIRE_ERROR_CLASSES.get(safe)
        if error_class is None:
            error_class = type(safe, (ServiceError,), {"wire_error": name})
            _WIRE_ERROR_CLASSES[safe] = error_class
    return error_class


class ServiceClient:
    """A small blocking client for :class:`QueryServer`'s protocol.

    Thread-safe for sequential use (one in-flight request at a time); to
    cancel a running query, open a *second* client and send ``cancel``
    with the query's ``id``.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("r", encoding="utf-8")
        self._writer = self._socket.makefile("w", encoding="utf-8")
        self._lock = threading.Lock()

    def request(self, payload: dict) -> dict:
        """Send one request object, return the response object."""
        with self._lock:
            self._writer.write(json.dumps(payload))
            self._writer.write("\n")
            self._writer.flush()
            line = self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def query(self, sql: str, **options) -> dict:
        """Run SQL; raises the typed error named by a failure response.

        A ``trace_id`` is minted client-side unless one is passed, so
        the caller can correlate this request across the server's
        spans, metric exemplars, query-log rows, and profiles — on
        failure the raised error carries it as ``error.trace_id``.
        """
        payload = {"op": "query", "sql": sql}
        payload.update({k: v for k, v in options.items() if v is not None})
        payload.setdefault("trace_id", new_trace_id())
        return self._raise_on_error(self.request(payload))

    def set(self, name: str, value) -> dict:
        return self._raise_on_error(
            self.request({"op": "set", "name": name, "value": value})
        )

    def stats(self) -> dict:
        return self._raise_on_error(self.request({"op": "stats"}))

    def metrics(self) -> dict:
        """The server's metrics snapshot + instrument kinds — the scrape
        behind ``python -m repro.obs.exposition --port ...``."""
        return self._raise_on_error(self.request({"op": "metrics"}))

    def health(self) -> dict:
        """The service's health report (admission state, inflight count,
        plan-cache hit rate, SLO posture, uptime)."""
        return self._raise_on_error(
            self.request({"op": "health"})
        ).get("health", {})

    def why(
        self,
        sql: str | None = None,
        fingerprint: str | None = None,
        **options,
    ) -> dict:
        """``EXPLAIN WHY`` over the wire: the server re-optimises the
        query with a decision trace attached and returns the structured
        report (``why``) plus its text form (``rendered``). Name the
        query by SQL or by a spec ``fingerprint`` the service has seen
        (e.g. from a sentinel alert)."""
        payload: dict = {"op": "why"}
        if sql is not None:
            payload["sql"] = sql
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        payload.update({k: v for k, v in options.items() if v is not None})
        return self._raise_on_error(self.request(payload))

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def cancel(self, query_id: str) -> bool:
        response = self._raise_on_error(
            self.request({"op": "cancel", "id": query_id})
        )
        return bool(response.get("cancelled"))

    @staticmethod
    def _raise_on_error(response: dict) -> dict:
        if response.get("ok"):
            return response
        import repro.errors as errors_module

        name = str(response.get("error") or "ServiceError")
        error_class = getattr(errors_module, name, None)
        if not (
            isinstance(error_class, type)
            and issubclass(error_class, ReproError)
        ):
            # Keep the server's class name even when this client's
            # errors module doesn't know it, instead of flattening
            # everything to ServiceError.
            error_class = _wire_error_class(name)
        if issubclass(error_class, errors_module.AdmissionRejected):
            error = error_class(
                response.get("message", "rejected"),
                retry_after=float(response.get("retry_after", 0.0)),
            )
        else:
            error = error_class(response.get("message", "request failed"))
        error.trace_id = str(response.get("trace_id") or "")
        raise error

    def close(self) -> None:
        """Say goodbye and close the socket (idempotent)."""
        try:
            with self._lock:
                self._writer.write(json.dumps({"op": "close"}))
                self._writer.write("\n")
                self._writer.flush()
                self._reader.readline()
        except (OSError, ValueError):
            pass
        finally:
            try:
                self._socket.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
