"""Admission control: bounded concurrency with priorities and shedding.

The :class:`AdmissionController` stands between clients and the engine's
one shared morsel pool. It enforces three policies industrial systems
need (PAPERS.md, "Query Optimization in the Wild"):

* **bounded concurrency** — at most ``max_concurrency`` queries hold a
  slot and execute at once; the rest wait in a bounded queue;
* **priority classes** — :class:`Priority` orders the queue (HIGH before
  NORMAL before LOW), FIFO within a class, so an interactive query never
  starves behind a backlog of batch work;
* **load shedding + graceful degradation** — when the queue is full a
  new query is *rejected immediately* with a ``retry_after`` estimate
  (:class:`~repro.errors.AdmissionRejected`) rather than queued into an
  ever-growing backlog; when the queue is merely deep, queries are
  admitted **degraded** (:attr:`AdmissionSlot.degraded`), which the
  session layer maps to serial execution and shallow (SQO-depth)
  optimisation — trading per-query speed for system throughput.

Waiting is cooperative: a queued query's
:class:`~repro.service.context.QueryContext` is polled while it waits,
so a deadline or cancellation fires in the queue too, not just during
execution.

Instrumented into :mod:`repro.obs`: ``service.queue_depth`` (gauge),
``service.admitted`` / ``service.rejected`` / ``service.degraded``
(counters), and ``service.queue_seconds`` (histogram).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
from dataclasses import dataclass

from repro.errors import AdmissionRejected, ServiceError
from repro.obs.metrics import DEFAULT_BUCKETS
from repro.obs.runtime import get_metrics
from repro.service.context import QueryContext

#: how often a queued waiter wakes to poll its context (seconds).
_POLL_SECONDS = 0.02


class Priority(enum.IntEnum):
    """Queue ordering class: higher values admit first."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


@dataclass(frozen=True)
class AdmissionConfig:
    """The controller's policy dials."""

    #: queries allowed to execute concurrently (slots).
    max_concurrency: int = 4
    #: queries allowed to *wait*; one more is shed with retry-after.
    max_queue_depth: int = 16
    #: waiting-query count at which new admissions come back degraded
    #: (serial execution, shallow optimisation). None disables.
    degrade_queue_depth: int | None = 8
    #: default seconds a query may wait before it is shed (None = wait
    #: for its own deadline, or forever).
    queue_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ServiceError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue_depth < 0:
            raise ServiceError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )


class AdmissionSlot:
    """A granted right to execute: release it when the query finishes.

    Usable as a context manager; releasing twice is a no-op.
    """

    __slots__ = (
        "_controller",
        "_released",
        "priority",
        "degraded",
        "queued_seconds",
        "_granted_at",
    )

    def __init__(
        self,
        controller: "AdmissionController",
        priority: Priority,
        degraded: bool,
        queued_seconds: float,
    ) -> None:
        self._controller = controller
        self._released = False
        self.priority = priority
        #: True when the controller asked this query to run degraded
        #: (serial loop, SQO-depth search) because the system is loaded.
        self.degraded = degraded
        #: seconds this query spent waiting in the admission queue.
        self.queued_seconds = queued_seconds
        self._granted_at = time.monotonic()

    def release(self) -> None:
        """Return the slot (idempotent)."""
        if self._released:
            return
        self._released = True
        self._controller._release(time.monotonic() - self._granted_at)

    def __enter__(self) -> "AdmissionSlot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Grants :class:`AdmissionSlot` objects under the configured policy.

    Thread-safe; one instance fronts one :class:`~repro.service.session.
    QueryService` (or the process, if shared).
    """

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self._config = config or AdmissionConfig()
        self._lock = threading.Lock()
        self._slots_free = threading.Condition(self._lock)
        self._running = 0
        self._heap: list[tuple[int, int, int]] = []  # (-priority, seq, ticket)
        self._live: set[int] = set()  # tickets still waiting (lazy heap deletion)
        self._seq = itertools.count()
        self._closed = False
        #: EMA of slot-hold seconds, seeding the retry-after estimate.
        self._avg_hold_seconds = 0.05
        #: monotonic deadline of an external degrade advisory (the
        #: regression sentinel); 0.0 = no advisory.
        self._advice_until = 0.0

    @property
    def config(self) -> AdmissionConfig:
        return self._config

    @property
    def running(self) -> int:
        """Queries currently holding a slot."""
        with self._lock:
            return self._running

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a slot."""
        with self._lock:
            return len(self._live)

    def advise_degraded(self, ttl_seconds: float) -> None:
        """Externally advise degraded admissions for ``ttl_seconds``.

        The regression sentinel calls this on a fresh *critical* alert
        (when the service opted in): until the advisory expires, new
        admissions come back degraded (serial, shallow search) even
        with an empty queue — containment while a regression is live.
        A non-positive TTL clears the advisory.
        """
        with self._lock:
            self._advice_until = (
                time.monotonic() + ttl_seconds if ttl_seconds > 0 else 0.0
            )

    def _advised_degraded_locked(self) -> bool:
        return self._advice_until > 0.0 and time.monotonic() < self._advice_until

    def state(self) -> str:
        """The controller's load state, for health reporting.

        ``"shedding"`` — the wait queue is full, so a new query would be
        rejected outright; ``"degraded"`` — deep enough that new
        admissions run degraded (serial, shallow search), or an external
        advisory (:meth:`advise_degraded`) is live; ``"accepting"``
        otherwise. A shut-down controller reports ``"stopped"``.
        """
        with self._lock:
            if self._closed:
                return "stopped"
            depth = len(self._live)
            # Mirrors admit(): a query walks straight in when a slot is
            # free and nobody waits, regardless of queue capacity.
            immediate = (
                self._running < self._config.max_concurrency
                and not self._live
            )
            if not immediate and depth >= self._config.max_queue_depth:
                return "shedding"
            if self._advised_degraded_locked():
                return "degraded"
            degrade_at = self._config.degrade_queue_depth
            if degrade_at is not None and depth >= degrade_at and depth:
                return "degraded"
            return "accepting"

    def retry_after(self) -> float:
        """Estimated seconds until capacity frees for one more query:
        the queue's total expected work divided across the slots."""
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        backlog = self._running + len(self._live)
        return max(
            self._avg_hold_seconds * backlog / self._config.max_concurrency,
            0.01,
        )

    def admit(
        self,
        priority: Priority = Priority.NORMAL,
        timeout: float | None = None,
        context: QueryContext | None = None,
    ) -> AdmissionSlot:
        """Wait for (or immediately claim) an execution slot.

        :param priority: queue class; HIGH admits before NORMAL before
            LOW, FIFO within a class.
        :param timeout: max seconds to wait before shedding; defaults to
            the config's ``queue_timeout``.
        :param context: when given, polled while queued — a cancellation
            or deadline fires in the queue too.
        :raises AdmissionRejected: queue full, wait timed out, or the
            controller is shut down. Carries ``retry_after``.
        :raises repro.errors.QueryCancelled: ``context`` cancelled while
            queued.
        :raises repro.errors.DeadlineExceeded: ``context`` deadline
            passed while queued.
        """
        if timeout is None:
            timeout = self._config.queue_timeout
        wait_deadline = None if timeout is None else time.monotonic() + timeout
        metrics = get_metrics()
        started = time.monotonic()
        with self._lock:
            if self._closed:
                raise AdmissionRejected("admission controller is shut down")
            if self._running < self._config.max_concurrency and not self._live:
                self._running += 1
                return self._granted(priority, 0.0, metrics)
            if len(self._live) >= self._config.max_queue_depth:
                retry = self._retry_after_locked()
                if metrics.enabled:
                    metrics.counter("service.rejected", exist_ok=True).inc()
                raise AdmissionRejected(
                    f"admission queue full "
                    f"({self._config.max_queue_depth} waiting); "
                    f"retry in ~{retry:.2f}s",
                    retry_after=retry,
                )
            ticket = next(self._seq)
            heapq.heappush(self._heap, (-int(priority), ticket, ticket))
            self._live.add(ticket)
            self._report_depth(metrics)
            try:
                while True:
                    if (
                        self._running < self._config.max_concurrency
                        and self._head_ticket() == ticket
                    ):
                        heapq.heappop(self._heap)
                        self._live.discard(ticket)
                        self._running += 1
                        self._report_depth(metrics)
                        return self._granted(
                            priority, time.monotonic() - started, metrics
                        )
                    if self._closed:
                        raise AdmissionRejected(
                            "admission controller shut down while queued"
                        )
                    if context is not None:
                        context.check()  # QueryCancelled / DeadlineExceeded
                    wait = _POLL_SECONDS
                    if wait_deadline is not None:
                        remaining = wait_deadline - time.monotonic()
                        if remaining <= 0:
                            retry = self._retry_after_locked()
                            if metrics.enabled:
                                metrics.counter(
                                    "service.rejected", exist_ok=True
                                ).inc()
                            raise AdmissionRejected(
                                f"timed out after {timeout:.2f}s in the "
                                f"admission queue; retry in ~{retry:.2f}s",
                                retry_after=retry,
                            )
                        wait = min(wait, remaining)
                    self._slots_free.wait(timeout=wait)
            finally:
                if ticket in self._live:
                    self._live.discard(ticket)
                    self._report_depth(metrics)

    def _head_ticket(self) -> int | None:
        """The next-admitted waiting ticket (drops stale heap entries)."""
        while self._heap and self._heap[0][2] not in self._live:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None

    def _granted(
        self, priority: Priority, queued_seconds: float, metrics
    ) -> AdmissionSlot:
        degrade_at = self._config.degrade_queue_depth
        degraded = (
            degrade_at is not None and len(self._live) >= degrade_at
        ) or self._advised_degraded_locked()
        if metrics.enabled:
            metrics.counter("service.admitted", exist_ok=True).inc()
            if degraded:
                metrics.counter("service.degraded", exist_ok=True).inc()
            metrics.histogram(
                "service.queue_seconds", DEFAULT_BUCKETS, exist_ok=True
            ).observe(queued_seconds)
        return AdmissionSlot(self, priority, degraded, queued_seconds)

    def _report_depth(self, metrics) -> None:
        if metrics.enabled:
            metrics.gauge("service.queue_depth", exist_ok=True).set(
                len(self._live)
            )

    def _release(self, held_seconds: float) -> None:
        with self._lock:
            self._running = max(self._running - 1, 0)
            self._avg_hold_seconds = (
                0.8 * self._avg_hold_seconds + 0.2 * held_seconds
            )
            self._slots_free.notify_all()

    def shutdown(self) -> None:
        """Stop admitting; every queued waiter raises
        :class:`~repro.errors.AdmissionRejected`."""
        with self._lock:
            self._closed = True
            self._slots_free.notify_all()
