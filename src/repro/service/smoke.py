"""The CI service smoke: ``python -m repro.service.smoke``.

Starts a :class:`~repro.service.server.QueryServer` over a mid-sized
catalog, fires a burst of concurrent client queries — mixed priorities,
one with an already-passed deadline, one cancelled mid-flight — and
asserts the service degrades *typed*: every query either returns rows or
raises one of the :mod:`repro.errors` classes, nothing hangs, and the
server shuts down gracefully within its bound.

The telemetry surface is smoked too: one traced query's id must come
back on the response, a ``metrics`` scrape must render as Prometheus
text that the validating parser accepts, and ``health`` must report an
``accepting`` service with a consistent outcome count. Run with
``REPRO_QUERY_LOG`` set to also capture a traced query log (CI uploads
it as an artifact).

Exit code 0 on success, 1 with a diagnosis on any violation.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.datagen import Density, Sortedness, make_join_scenario
from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    ObservabilityError,
    QueryCancelled,
    ReproError,
)
from repro.obs import enable_observability
from repro.obs.exposition import parse_prometheus, render_prometheus
from repro.service.admission import AdmissionConfig
from repro.service.server import QueryServer, ServiceClient
from repro.service.session import QueryService, ServiceConfig

SQL = "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
SHUTDOWN_BUDGET_SECONDS = 5.0


def _client_worker(port: int, spec: dict, results: list, index: int) -> None:
    try:
        with ServiceClient("127.0.0.1", port) as client:
            response = client.query(SQL, **spec)
            results[index] = (
                "ok", response["row_count"], response.get("trace_id")
            )
    except ReproError as error:
        results[index] = (type(error).__name__, str(error))
    except BaseException as error:  # noqa: BLE001 - smoke must diagnose
        results[index] = ("UNTYPED:" + type(error).__name__, str(error))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--rows", type=int, default=200_000)
    args = parser.parse_args(argv)

    # Live metrics + spans: the telemetry scrape below needs real data.
    enable_observability()

    scenario = make_join_scenario(
        n_r=args.rows // 8,
        n_s=args.rows,
        num_groups=100,
        r_sortedness=Sortedness.UNSORTED,
        s_sortedness=Sortedness.UNSORTED,
        density=Density.DENSE,
        seed=23,
    )
    service = QueryService(
        scenario.build_catalog(),
        ServiceConfig(
            admission=AdmissionConfig(
                max_concurrency=4, max_queue_depth=32, degrade_queue_depth=8
            )
        ),
    )
    server = QueryServer(service).start()
    print(f"service smoke: server on port {server.port}")

    failures: list[str] = []
    try:
        with ServiceClient("127.0.0.1", server.port) as warm:
            warmed = warm.query(SQL)
            print(f"warm-up: {warmed['row_count']} groups")

        # One spec per client: mostly plain queries at mixed priorities,
        # plus one past-deadline query and one that gets cancelled.
        specs: list[dict] = []
        for index in range(args.clients):
            specs.append({"priority": index % 3})
        specs[3] = {"deadline": 0.0}
        specs[5] = {"id": "smoke-cancel-me"}
        specs[1] = {"trace_id": "smoke-trace-0001"}

        results: list = [None] * len(specs)
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(server.port, spec, results, index),
            )
            for index, spec in enumerate(specs)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()

        with ServiceClient("127.0.0.1", server.port) as killer:
            kill_deadline = time.monotonic() + 10.0
            while time.monotonic() < kill_deadline:
                if killer.cancel("smoke-cancel-me"):
                    break
                if results[5] is not None:
                    break  # finished before we could cancel it
                time.sleep(0.002)

        for thread in threads:
            thread.join(timeout=60.0)
            if thread.is_alive():
                failures.append("client thread hung past 60s")
        elapsed = time.monotonic() - started

        ok = sum(1 for r in results if r and r[0] == "ok")
        tally: dict[str, int] = {}
        for result in results:
            kind = result[0] if result else "NO-RESULT"
            tally[kind] = tally.get(kind, 0) + 1
        print(
            f"{len(specs)} concurrent clients in {elapsed:.2f}s: "
            + ", ".join(f"{k}={v}" for k, v in sorted(tally.items()))
        )

        for index, result in enumerate(results):
            if result is None:
                failures.append(f"client {index} produced no result")
            elif result[0].startswith("UNTYPED"):
                failures.append(f"client {index} failed untyped: {result}")
        if results[3] and results[3][0] != DeadlineExceeded.__name__:
            failures.append(f"past-deadline query got {results[3]}")
        allowed_cancel = {QueryCancelled.__name__, "ok"}
        if results[5] and results[5][0] not in allowed_cancel:
            failures.append(f"cancelled query got {results[5]}")
        for index, result in enumerate(results):
            if result and result[0] == "ok" and result[1] != 100:
                failures.append(f"client {index} got {result[1]} rows")
        if ok == 0:
            failures.append("no query succeeded")
        for kind in tally:
            if kind not in {
                "ok",
                DeadlineExceeded.__name__,
                QueryCancelled.__name__,
                AdmissionRejected.__name__,
            }:
                failures.append(f"unexpected outcome class {kind!r}")
        if service.admission.running or service.admission.queue_depth:
            failures.append(
                f"slots leaked: running={service.admission.running} "
                f"queued={service.admission.queue_depth}"
            )

        # Telemetry surface: trace echo, health, and a validating
        # Prometheus scrape.
        if (
            results[1]
            and results[1][0] == "ok"
            and results[1][2] != "smoke-trace-0001"
        ):
            failures.append(
                f"traced query echoed trace_id {results[1][2]!r}"
            )
        with ServiceClient("127.0.0.1", server.port) as probe:
            health = probe.health()
            print(
                f"health: state={health['state']} "
                f"completed={health['counts']['completed']} "
                f"slo_samples={health['slo']['total_count']} "
                f"cache_hit_rate={health['plan_cache']['hit_rate']:.2f}"
            )
            if health["state"] != "accepting":
                failures.append(
                    f"drained service reports state {health['state']!r}"
                )
            if health["counts"]["completed"] < ok:
                failures.append(
                    "health completed count below observed successes"
                )
            scraped = probe.metrics()
            text = render_prometheus(
                scraped.get("metrics", {}), kinds=scraped.get("kinds", {})
            )
            try:
                parsed = parse_prometheus(text)
            except ObservabilityError as error:
                failures.append(f"exposition does not parse: {error}")
            else:
                print(
                    f"exposition: {len(text.splitlines())} lines, "
                    f"{len(parsed)} series, parse OK"
                )
                if "repro_service_completed_total" not in parsed:
                    failures.append(
                        "exposition lacks repro_service_completed_total"
                    )

        # Under REPRO_STORAGE=disk the whole burst ran out-of-core:
        # the buffer pool must have been exercised and must have held
        # its hard byte budget throughout the concurrent load.
        from repro.storage.disk import get_buffer_manager, storage_mode

        if storage_mode() == "disk":
            pool = get_buffer_manager()
            pool_stats = pool.stats()
            print(
                "buffer pool: "
                f"budget={pool_stats['budget_bytes']} "
                f"resident={pool_stats['resident_bytes']} "
                f"hits={pool_stats['hits']} misses={pool_stats['misses']} "
                f"evictions={pool_stats['evictions']} "
                f"transient={pool_stats['transient_loads']}"
            )
            if pool_stats["resident_bytes"] > pool.budget_bytes:
                failures.append(
                    f"buffer pool over budget: {pool_stats['resident_bytes']}"
                    f" > {pool.budget_bytes}"
                )
            if pool_stats["misses"] == 0:
                failures.append(
                    "disk mode but the buffer pool never loaded a segment"
                )
    finally:
        shutdown_started = time.monotonic()
        server.shutdown(timeout=SHUTDOWN_BUDGET_SECONDS)
        shutdown_seconds = time.monotonic() - shutdown_started
        print(f"graceful shutdown in {shutdown_seconds:.2f}s")
        if shutdown_seconds > SHUTDOWN_BUDGET_SECONDS:
            failures.append(
                f"shutdown took {shutdown_seconds:.2f}s "
                f"(budget {SHUTDOWN_BUDGET_SECONDS}s)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
