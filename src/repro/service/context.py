"""Per-query resource governance: deadline, cancellation, memory budget.

A :class:`QueryContext` is the unit of governance the service layer
threads through a query's whole lifetime — admission wait, optimisation,
and execution. It carries three dials:

* a **deadline** (absolute monotonic time) after which the query must
  stop;
* a **cancellation token** a client (or the server's ``cancel`` op) can
  trigger from any thread;
* a **memory budget** bounding any single operator's working set.

Enforcement is *cooperative*: the engine's operators, the morsel
scheduler, and the optimiser's enumeration loops poll the active context
at chunk/morsel/DP-subset granularity via :func:`check_active_context`
and unwind with a typed error (:class:`~repro.errors.QueryCancelled`,
:class:`~repro.errors.DeadlineExceeded`,
:class:`~repro.errors.MemoryBudgetExceeded`). Nothing is killed
mid-kernel, so pool slots release and partial state unwinds through
ordinary exception propagation.

Propagation is thread-local: :func:`activate_context` installs a context
for the current thread, and :func:`repro.engine.parallel.run_morsels`
re-installs the submitting thread's context inside each worker, so
morsels observe the deadline of the query that scheduled them. The poll
is a single ``getattr`` when no context is active — the engine pays
nothing outside the service.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import (
    DeadlineExceeded,
    MemoryBudgetExceeded,
    QueryCancelled,
    ServiceError,
)

#: process-unique query-id sequence.
_QUERY_IDS = itertools.count(1)

_local = threading.local()


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, collision-safe enough to
    correlate one request across spans, metrics, logs, and profiles)."""
    return uuid.uuid4().hex[:16]


class CancellationToken:
    """A thread-safe latch a client flips to stop a running query.

    Tokens are one-shot: once :meth:`cancel` is called the token stays
    cancelled. Any number of threads may poll :attr:`cancelled`.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = ""

    def cancel(self, reason: str = "") -> None:
        """Trigger the token (idempotent). ``reason`` surfaces in the
        :class:`~repro.errors.QueryCancelled` message."""
        if reason and not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._event.is_set()


@dataclass
class QueryContext:
    """Everything a governed query carries through its lifetime.

    Construct via :meth:`start` (which turns a relative deadline into an
    absolute one) rather than directly.
    """

    #: identifier used in logs, metrics labels, and the server protocol.
    query_id: str
    #: end-to-end correlation id: minted at the client (or the server
    #: edge) and threaded through every span, metric exemplar, query-log
    #: row, and profile this request touches.
    trace_id: str = ""
    #: absolute :func:`time.monotonic` deadline, or None for no limit.
    deadline: float | None = None
    #: cooperative cancellation latch.
    token: CancellationToken = field(default_factory=CancellationToken)
    #: largest single-operator working set allowed, or None for no limit.
    memory_budget_bytes: int | None = None
    #: :func:`time.monotonic` when the context was created.
    started: float = field(default_factory=time.monotonic)
    #: high-water mark of operator working sets observed so far.
    peak_memory_bytes: int = 0

    @classmethod
    def start(
        cls,
        deadline: float | None = None,
        token: CancellationToken | None = None,
        memory_budget_bytes: int | None = None,
        query_id: str | None = None,
        trace_id: str | None = None,
    ) -> "QueryContext":
        """A fresh context; ``deadline`` is *relative* seconds from now.

        ``trace_id`` propagates a client-minted correlation id; when
        None, one is minted here (the server edge), so every governed
        query is traceable whether or not its client participates.
        """
        if deadline is not None and deadline < 0:
            raise ServiceError(f"deadline must be >= 0, got {deadline}")
        now = time.monotonic()
        return cls(
            query_id=query_id or f"q{next(_QUERY_IDS)}",
            trace_id=trace_id or new_trace_id(),
            deadline=None if deadline is None else now + deadline,
            token=token or CancellationToken(),
            memory_budget_bytes=memory_budget_bytes,
            started=now,
        )

    def remaining(self) -> float | None:
        """Seconds until the deadline (may be negative), or None."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    @property
    def cancelled(self) -> bool:
        """True once the token has been triggered."""
        return self.token.cancelled

    def elapsed(self) -> float:
        """Seconds since the context was created."""
        return time.monotonic() - self.started

    def check(self) -> None:
        """Raise if the query must stop — the cooperative poll point.

        :raises QueryCancelled: when the token has been triggered.
        :raises DeadlineExceeded: when the deadline has passed.
        """
        if self.token.cancelled:
            reason = f": {self.token.reason}" if self.token.reason else ""
            raise QueryCancelled(
                f"query {self.query_id} cancelled{reason}"
            )
        if self.expired:
            raise DeadlineExceeded(
                f"query {self.query_id} exceeded its deadline "
                f"({self.elapsed():.3f}s elapsed)"
            )

    def charge_memory(self, nbytes: int) -> None:
        """Record an operator working-set peak against the budget.

        The budget bounds the largest *single-operator* working set (the
        same per-node quantity ``explain_analyze`` reports as "peak"),
        not a process-wide allocator total.

        :raises MemoryBudgetExceeded: when ``nbytes`` is over budget.
        """
        if nbytes > self.peak_memory_bytes:
            self.peak_memory_bytes = int(nbytes)
        if (
            self.memory_budget_bytes is not None
            and nbytes > self.memory_budget_bytes
        ):
            raise MemoryBudgetExceeded(
                f"query {self.query_id}: operator working set of "
                f"{nbytes:,} bytes exceeds the "
                f"{self.memory_budget_bytes:,}-byte budget"
            )


def get_active_context() -> QueryContext | None:
    """The context governing the calling thread, or None."""
    return getattr(_local, "context", None)


def check_active_context() -> None:
    """Poll the active context, if any — the engine's hot-path hook.

    A no-op (one ``getattr``) when the calling thread is ungoverned.
    """
    context = getattr(_local, "context", None)
    if context is not None:
        context.check()


def charge_active_context(nbytes: int) -> None:
    """Charge an operator working-set peak to the active context."""
    context = getattr(_local, "context", None)
    if context is not None:
        context.charge_memory(nbytes)


@contextmanager
def activate_context(context: QueryContext | None) -> Iterator[QueryContext | None]:
    """Install ``context`` as the calling thread's active context.

    Restores whatever was active before on exit (contexts nest; passing
    None is a no-op scope, so callers need no conditional).
    """
    if context is None:
        yield None
        return
    previous = getattr(_local, "context", None)
    _local.context = context
    try:
        yield context
    finally:
        _local.context = previous
