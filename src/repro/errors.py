"""Exception hierarchy for the DQO reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of this package with a single ``except``
clause while still being able to discriminate on the finer-grained classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class ColumnError(ReproError):
    """A column is malformed, missing, or used with the wrong type."""


class StatisticsError(ReproError):
    """Column statistics are missing or inconsistent with the data."""


class StorageError(ReproError):
    """The disk storage layer hit a malformed file, an unsupported
    on-disk format version, or an invalid segment/buffer operation."""


class DataGenError(ReproError):
    """A dataset generator received impossible parameters."""


class IndexError_(ReproError):
    """An index structure was misused (named with a trailing underscore to
    avoid shadowing the built-in :class:`IndexError`)."""


class PreconditionError(ReproError):
    """A physical algorithm was invoked on input that violates its
    precondition (e.g. order-based grouping on unsorted input, or static
    perfect hashing on a sparse key domain)."""


class ExecutionError(ReproError):
    """A physical plan failed during execution."""


class ConfigurationError(ExecutionError):
    """An executor/runtime configuration value is invalid (e.g.
    ``REPRO_WORKERS=0`` or a non-integer worker count). Subclasses
    :class:`ExecutionError` so existing blanket handlers keep working."""


class WorkerCrashError(ExecutionError):
    """A process worker died mid-batch (killed, segfaulted, or lost).
    Carries the worker's name and, when known, its exit code so the
    failure is attributable in logs and telemetry."""

    def __init__(self, message: str, worker: str = "", exitcode: int | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.exitcode = exitcode


class PlanError(ReproError):
    """A logical or physical plan is structurally invalid."""


class ParseError(ReproError):
    """The SQL frontend could not parse the input text."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class OptimizationError(ReproError):
    """The optimiser could not produce a plan (e.g. no implementation
    satisfies the required properties)."""


class ViewError(ReproError):
    """An Algorithmic View was registered, looked up, or applied wrongly."""


class CostModelError(ReproError):
    """A cost model was asked to cost an operation it does not know."""


class ObservabilityError(ReproError):
    """The observability layer was misused (e.g. ending a span that was
    never started, or registering two metrics under one name)."""


class ServiceError(ReproError):
    """Base class of query-service errors (admission, deadlines,
    cancellation): everything that can go wrong *around* a query rather
    than inside its plan or data."""


class QueryCancelled(ServiceError):
    """The query's cancellation token was triggered while it ran (or
    while it waited in the admission queue)."""


class DeadlineExceeded(ServiceError):
    """The query's deadline passed before it finished. Raised
    cooperatively at chunk/morsel granularity, so the plan unwinds
    cleanly with its pool slots released."""


class MemoryBudgetExceeded(ServiceError):
    """An operator's working set grew past the query's memory budget."""


class AdmissionRejected(ServiceError):
    """The admission controller shed this query (queue full, or the
    queue wait timed out). ``retry_after`` is the controller's estimate
    of when capacity frees up, in seconds."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
