"""Physical page layouts: row-store (NSM), column-store (DSM), and PAX.

Section 2.2 of the paper lists *layout (row, col, PAXish, in-between)* among
the DQO plan properties that may have non-local effects. This module models
the three classic layouts concretely enough that layout can participate in
property propagation and that layout conversion costs can be measured.

The in-memory "pages" here are numpy structures, not byte buffers; what
matters for DQO is which values are contiguous, because that is what the
cost model keys on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ColumnError
from repro.storage.table import Table


class Layout(enum.Enum):
    """Physical layout of a stored relation."""

    #: N-ary storage model — whole rows contiguous.
    ROW = "row"
    #: Decomposition storage model — whole columns contiguous.
    COLUMNAR = "columnar"
    #: Partition Attributes Across — rows grouped into pages, columns
    #: contiguous *within* a page (Ailamaki et al., VLDB 2001).
    PAX = "pax"


@dataclass(frozen=True)
class PaxPage:
    """One PAX page: per-column minipages for a contiguous row range."""

    row_offset: int
    minipages: dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        """Rows stored in this page."""
        first = next(iter(self.minipages.values()), None)
        return 0 if first is None else int(first.size)


class RowStore:
    """A row-major (NSM) rendering of a table as a numpy structured array."""

    def __init__(self, table: Table) -> None:
        dtype = np.dtype(
            [
                (spec.name, spec.dtype.numpy_dtype)
                for spec in table.schema
            ]
        )
        records = np.empty(table.num_rows, dtype=dtype)
        for spec in table.schema:
            records[spec.name] = table[spec.name]
        self._records = records
        self._schema = table.schema

    @property
    def num_rows(self) -> int:
        """Number of stored rows."""
        return int(self._records.size)

    def row(self, index: int) -> tuple:
        """The ``index``-th row as a Python tuple."""
        return tuple(v.item() for v in self._records[index])

    def to_table(self) -> Table:
        """Convert back to a columnar :class:`Table` (copies each column)."""
        return Table.from_arrays(
            {spec.name: np.ascontiguousarray(self._records[spec.name]) for spec in self._schema}
        )


class PaxStore:
    """A PAX rendering of a table: fixed-size pages of columnar minipages."""

    def __init__(self, table: Table, rows_per_page: int = 4096) -> None:
        if rows_per_page <= 0:
            raise ColumnError(
                f"rows_per_page must be > 0, got {rows_per_page}"
            )
        self._schema = table.schema
        self._rows_per_page = rows_per_page
        self._pages: list[PaxPage] = []
        for offset in range(0, table.num_rows, rows_per_page):
            chunk = table.slice(offset, offset + rows_per_page)
            self._pages.append(
                PaxPage(
                    row_offset=offset,
                    minipages={
                        name: np.array(chunk[name]) for name in table.schema.names
                    },
                )
            )

    @property
    def num_pages(self) -> int:
        """Number of PAX pages."""
        return len(self._pages)

    @property
    def rows_per_page(self) -> int:
        """Configured page capacity in rows."""
        return self._rows_per_page

    def pages(self) -> list[PaxPage]:
        """All pages in row order."""
        return list(self._pages)

    def to_table(self) -> Table:
        """Convert back to a columnar :class:`Table`."""
        if not self._pages:
            return Table.empty(self._schema)
        data = {
            name: np.concatenate([page.minipages[name] for page in self._pages])
            for name in self._schema.names
        }
        return Table.from_arrays(data)


def convert(table: Table, layout: Layout, rows_per_page: int = 4096):
    """Materialise ``table`` in the requested ``layout``.

    :returns: the ``table`` itself for :attr:`Layout.COLUMNAR`, a
        :class:`RowStore` for :attr:`Layout.ROW`, or a :class:`PaxStore`
        for :attr:`Layout.PAX`.
    """
    if layout is Layout.COLUMNAR:
        return table
    if layout is Layout.ROW:
        return RowStore(table)
    if layout is Layout.PAX:
        return PaxStore(table, rows_per_page)
    raise ColumnError(f"unknown layout: {layout!r}")
