"""The buffer manager: a byte-budgeted segment cache with clock eviction.

Scans never read column files directly — they :meth:`~BufferManager.
acquire` a *lease* on a ``(table, column, segment)`` key and the buffer
manager either serves the cached frame (a **hit**) or invokes the
caller's loader (a **miss**), caching the decoded array under the
budget. Leases pin their frame: pinned frames are never evicted, so an
array handed to a scan stays valid until the lease is released.

Eviction is the classic clock (second-chance) sweep: every hit sets the
frame's reference bit; the hand clears bits as it passes and evicts the
first unpinned frame found clear. The invariant the concurrency stress
test asserts is *hard*: cached bytes never exceed the budget. A load
that cannot fit even after a full sweep (every frame pinned, or the
segment alone is larger than the budget) is served **transient** — the
array goes to the caller but is never cached, so the pool stays inside
its budget and scans never deadlock waiting for frames. Transient bytes
are the query's working set and are charged to the operator's
``memory_bytes()`` accounting by the scan, exactly like any other
working array.

When observability is enabled (:func:`repro.obs.enable_observability`)
the pool reports ``storage.buffer.{hits,misses,evictions}`` counters and
a ``storage.buffer.resident_bytes`` gauge.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.errors import StorageError
from repro.storage.disk.config import buffer_budget_bytes


@dataclass
class Lease:
    """A pinned (or transient) segment handed out by :meth:`acquire`."""

    key: tuple
    #: the decoded segment values (read-only; valid until release).
    array: np.ndarray
    #: True when the load missed the cache (the caller did disk I/O).
    cold: bool
    #: payload bytes read from disk for this load (0 on a hit).
    bytes_read: int
    #: True when the frame was served outside the cache (over-budget).
    transient: bool = False


class _Frame:
    __slots__ = ("key", "array", "nbytes", "pins", "referenced")

    def __init__(self, key: tuple, array: np.ndarray, nbytes: int) -> None:
        self.key = key
        self.array = array
        self.nbytes = nbytes
        self.pins = 1  # born pinned by the acquiring lease
        self.referenced = True


class BufferManager:
    """A byte-budgeted cache of decoded column segments.

    :param budget_bytes: hard ceiling on cached (resident) bytes; ``None``
        reads ``REPRO_BUFFER_BYTES`` (default 256 MiB).
    """

    def __init__(self, budget_bytes: int | None = None, name: str = "buffer") -> None:
        if budget_bytes is None:
            budget_bytes = buffer_budget_bytes()
        if budget_bytes <= 0:
            raise StorageError(f"buffer budget must be > 0, got {budget_bytes}")
        self._budget = int(budget_bytes)
        self._name = name
        self._lock = threading.RLock()
        self._frames: dict[tuple, _Frame] = {}
        self._clock: list[tuple] = []  # frame keys in clock order
        self._hand = 0
        self._resident = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._transient_loads = 0

    # -- the lease protocol -------------------------------------------------

    def acquire(
        self,
        key: tuple,
        loader: Callable[[], tuple[np.ndarray, int]],
        cacheable: bool = True,
    ) -> Lease:
        """Pin ``key``'s segment, loading it on a miss.

        ``loader`` returns ``(array, bytes_read_from_disk)``; it runs
        outside the pool lock, so concurrent queries overlap their I/O.
        Release every lease (``release`` or the :meth:`lease` context
        manager) — pinned frames are immune to eviction.
        """
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                frame.pins += 1
                frame.referenced = True
                self._hits += 1
                self._note_metrics(hits=1)
                return Lease(key=key, array=frame.array, cold=False, bytes_read=0)
        array, bytes_read = loader()
        nbytes = int(array.nbytes)
        with self._lock:
            self._misses += 1
            self._note_metrics(misses=1)
            frame = self._frames.get(key)
            if frame is not None:
                # Lost a load race; the winner's frame is the cached one.
                frame.pins += 1
                frame.referenced = True
                return Lease(key=key, array=frame.array, cold=True, bytes_read=bytes_read)
            if (
                cacheable
                and nbytes <= self._budget
                and self._make_room(nbytes)
            ):
                self._frames[key] = _Frame(key, array, nbytes)
                self._clock.append(key)
                self._resident += nbytes
                self._note_metrics(resident=True)
                return Lease(key=key, array=array, cold=True, bytes_read=bytes_read)
            self._transient_loads += 1
            return Lease(
                key=key, array=array, cold=True, bytes_read=bytes_read, transient=True
            )

    def release(self, lease: Lease) -> None:
        """Unpin a lease; transient leases release trivially."""
        if lease.transient:
            return
        with self._lock:
            frame = self._frames.get(lease.key)
            if frame is not None and frame.pins > 0:
                frame.pins -= 1

    def lease(self, key, loader):
        """Context-manager form of :meth:`acquire`/:meth:`release`."""
        return _LeaseContext(self, key, loader)

    # -- eviction -----------------------------------------------------------

    def _make_room(self, nbytes: int) -> bool:
        """Evict (clock sweep) until ``nbytes`` fit; False if impossible.

        Caller holds the lock. Two full passes give every referenced
        frame its second chance; after that only pinned frames remain.
        """
        passes = 0
        while self._resident + nbytes > self._budget:
            if not self._clock or passes > 2 * len(self._clock):
                return False
            if self._hand >= len(self._clock):
                self._hand = 0
            key = self._clock[self._hand]
            frame = self._frames[key]
            if frame.pins > 0:
                self._hand += 1
            elif frame.referenced:
                frame.referenced = False
                self._hand += 1
            else:
                del self._frames[key]
                del self._clock[self._hand]
                self._resident -= frame.nbytes
                self._evictions += 1
                self._note_metrics(evictions=1, resident=True)
            passes += 1
        return True

    def invalidate(self, prefix: Hashable | None = None) -> int:
        """Drop unpinned frames whose key starts with ``prefix`` (all
        frames when ``None``); returns the count dropped. Called when a
        disk table is rewritten/appended so stale segments never serve."""
        dropped = 0
        with self._lock:
            for key in list(self._clock):
                if prefix is not None and key[0] != prefix:
                    continue
                frame = self._frames[key]
                if frame.pins > 0:
                    continue
                del self._frames[key]
                self._clock.remove(key)
                self._resident -= frame.nbytes
                dropped += 1
            self._hand = 0
            if dropped:
                self._note_metrics(resident=True)
        return dropped

    # -- introspection ------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        """The hard cached-bytes ceiling."""
        return self._budget

    def resident_bytes(self) -> int:
        """Bytes currently cached (never exceeds :attr:`budget_bytes`)."""
        with self._lock:
            return self._resident

    def resident_bytes_for(self, prefix: Hashable) -> int:
        """Cached bytes whose key's first element equals ``prefix``
        (a table uid) — the residency input to the cost model's
        buffer-hit probability."""
        with self._lock:
            return sum(
                frame.nbytes
                for frame in self._frames.values()
                if frame.key[0] == prefix
            )

    def stats(self) -> dict:
        """Counters snapshot: hits, misses, evictions, residency."""
        with self._lock:
            return {
                "name": self._name,
                "budget_bytes": self._budget,
                "resident_bytes": self._resident,
                "frames": len(self._frames),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "transient_loads": self._transient_loads,
            }

    def _note_metrics(
        self, hits: int = 0, misses: int = 0, evictions: int = 0, resident: bool = False
    ) -> None:
        # Imported lazily: storage must not drag the observability (and
        # transitively engine) packages in at import time.
        from repro.obs.runtime import get_metrics

        metrics = get_metrics()
        if not metrics.enabled:
            return
        if hits:
            metrics.counter("storage.buffer.hits", exist_ok=True).inc(hits)
        if misses:
            metrics.counter("storage.buffer.misses", exist_ok=True).inc(misses)
        if evictions:
            metrics.counter("storage.buffer.evictions", exist_ok=True).inc(evictions)
        if resident:
            metrics.gauge("storage.buffer.resident_bytes", exist_ok=True).set(
                self._resident
            )


class _LeaseContext:
    __slots__ = ("_pool", "_key", "_loader", "_lease")

    def __init__(self, pool: BufferManager, key, loader) -> None:
        self._pool = pool
        self._key = key
        self._loader = loader
        self._lease: Lease | None = None

    def __enter__(self) -> Lease:
        self._lease = self._pool.acquire(self._key, self._loader)
        return self._lease

    def __exit__(self, *exc_info) -> None:
        if self._lease is not None:
            self._pool.release(self._lease)
            self._lease = None


# -- the process-wide default pool -------------------------------------------

_default_lock = threading.Lock()
_default: BufferManager | None = None


def get_buffer_manager() -> BufferManager:
    """The process-wide buffer pool, created on first use with the
    ``REPRO_BUFFER_BYTES`` budget."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = BufferManager(name="default")
    return _default


def set_buffer_manager(manager: BufferManager | None) -> None:
    """Install (or, with ``None``, reset) the process-wide pool —
    test/benchmark hook for pinning a specific budget."""
    global _default
    with _default_lock:
        _default = manager
