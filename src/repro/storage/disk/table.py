"""Disk-resident tables: segment files behind the Table protocol.

A :class:`DiskTable` opens a table directory written by
:func:`write_table` and speaks enough of the :class:`~repro.storage.
table.Table` protocol that every catalog consumer — the optimiser's
property/correlation extraction, Algorithmic View materialisation, the
naive executor — works unchanged. Column statistics come straight from
the manifest (persisted at write time), so opening a table and planning
against it reads **no data**: that is what lets the service restart
warm.

Data access always goes through a :class:`~repro.storage.disk.buffer.
BufferManager`: :meth:`DiskTable.row_group` pins one aligned segment
across all columns (what :class:`~repro.engine.operators.segment_scan.
SegmentScan` iterates), and :meth:`column_values` materialises a column
for whole-table consumers.

Zone-map reasoning lives here too: :meth:`segment_prunable` answers
"can this predicate conjunction match anything in segment *i*?" from
footer min/max alone, and :meth:`estimate_scan` turns the same zone
maps into the optimiser's segment-read and selectivity estimates.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import StorageError
from repro.storage.column import Column
from repro.storage.disk.buffer import BufferManager, get_buffer_manager
from repro.storage.disk.config import spill_directory
from repro.storage.disk.format import (
    DEFAULT_SEGMENT_ROWS,
    FORMAT_VERSION,
    read_manifest,
    read_segment,
    statistics_from_dict,
    statistics_to_dict,
    write_manifest,
    write_segment,
)
from repro.storage.dtypes import DataType
from repro.storage.schema import ColumnSpec, Schema
from repro.storage.statistics import ColumnStatistics, collect_statistics
from repro.storage.table import Table

#: comparison operators zone maps can reason about.
_PRUNABLE_OPS = ("=", "<>", "<", "<=", ">", ">=")


def conjunct_triple(predicate, alias: str, names) -> tuple[str, str, float] | None:
    """Decompose a conjunct into ``(raw column, op, literal)`` if it has
    the simple ``column <op> literal`` shape zone maps understand.

    ``alias`` strips the scan qualification (``alias.col`` -> ``col``);
    ``names`` is the set of raw column names the table owns. Returns
    ``None`` for any other expression shape (those conjuncts cannot
    prune, but still execute exactly in the Filter above the scan).
    """
    from repro.engine.expressions import BinaryOp, ColumnRef, Literal

    if not isinstance(predicate, BinaryOp) or predicate.op not in _PRUNABLE_OPS:
        return None
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        left, right = right, left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
        return None
    name = left.name
    if alias and name.startswith(alias + "."):
        name = name[len(alias) + 1 :]
    if name not in names:
        return None
    return (name, op, right.value)


def _zone_prunes(meta: dict, op: str, value) -> bool:
    """True when the zone map proves ``col <op> value`` matches no row
    of the segment. NaN rows never satisfy ``=``/range comparisons (so
    an all-null segment prunes for those), but *do* satisfy ``<>``."""
    zmin, zmax = meta.get("min"), meta.get("max")
    if zmin is None:  # all-null segment
        return op != "<>"
    if op == "=":
        return value < zmin or value > zmax
    if op == "<":
        return zmin >= value
    if op == "<=":
        return zmin > value
    if op == ">":
        return zmax <= value
    if op == ">=":
        return zmax < value
    # '<>': only an all-equal, null-free segment can prune.
    return meta.get("null_count", 0) == 0 and zmin == zmax == value


def _zone_fraction(meta: dict, op: str, value) -> float:
    """Estimated fraction of the segment's rows matching ``col <op>
    value``, assuming a uniform spread over the zone interval."""
    rows = max(int(meta["rows"]), 1)
    zmin, zmax = meta.get("min"), meta.get("max")
    nulls = int(meta.get("null_count", 0))
    if zmin is None:
        return 1.0 if op == "<>" else 0.0
    present = max(rows - nulls, 0) / rows
    distinct = max(int(meta.get("distinct", 1)) - (1 if nulls else 0), 1)
    if _zone_prunes(meta, op, value):
        return 0.0
    span = float(zmax) - float(zmin)
    if op == "=":
        return present / distinct
    if op == "<>":
        return max(present * (1.0 - 1.0 / distinct), nulls / rows)
    if span <= 0:
        return present  # single-value zone, not pruned => all match
    if op in ("<", "<="):
        fraction = (float(value) - float(zmin) + (1.0 if op == "<=" else 0.0)) / (
            span + 1.0
        )
    else:  # '>', '>='
        fraction = (float(zmax) - float(value) + (1.0 if op == ">=" else 0.0)) / (
            span + 1.0
        )
    return present * min(max(fraction, 0.0), 1.0)


@dataclass(frozen=True)
class ScanEstimate:
    """Zone-map-derived scan facts the optimiser costs a disk scan with."""

    #: segments in the table.
    segments_total: int
    #: segments the predicates cannot prune (what the scan will read).
    segments_read: int
    #: rows in the unpruned segments (what the scan touches).
    rows_scanned: float
    #: estimated rows surviving the predicates.
    rows_matching: float
    #: encoded payload bytes of the unpruned segments.
    bytes_scanned: int


class _RowGroup:
    """One pinned, aligned segment across all columns of a table."""

    __slots__ = ("arrays", "num_rows", "cold_bytes", "nbytes")

    def __init__(self, arrays: dict, num_rows: int, cold_bytes: int, nbytes: int) -> None:
        #: raw column name -> decoded values for this segment.
        self.arrays = arrays
        self.num_rows = num_rows
        #: payload bytes actually read from disk (0 when fully buffered).
        self.cold_bytes = cold_bytes
        #: decoded bytes pinned while this group is held.
        self.nbytes = nbytes


class DiskColumn:
    """A column of a :class:`DiskTable`: manifest statistics up front,
    values materialised through the buffer pool on demand."""

    __slots__ = ("_table", "_name", "_dtype", "_stats")

    def __init__(self, table: "DiskTable", name: str, dtype: DataType, stats: ColumnStatistics) -> None:
        self._table = table
        self._name = name
        self._dtype = dtype
        self._stats = stats

    @property
    def name(self) -> str:
        return self._name

    @property
    def dtype(self) -> DataType:
        return self._dtype

    @property
    def statistics(self) -> ColumnStatistics:
        """Persisted statistics (from the manifest; no data is read)."""
        return self._stats

    @property
    def values(self) -> np.ndarray:
        """Materialise the column through the buffer pool."""
        return self._table.column_values(self._name)

    def memory_bytes(self) -> int:
        """RAM held by the column object itself: none — segment bytes
        are accounted by the buffer pool and the scans that pin them."""
        return 0

    def __len__(self) -> int:
        return self._stats.count

    def __repr__(self) -> str:
        return f"DiskColumn({self._name!r}, {self._dtype.value}, n={len(self)})"

    def renamed(self, name: str) -> Column:
        return Column(name, self.values, self._dtype, self._stats)

    def take(self, indices: np.ndarray) -> Column:
        return Column(self._name, self.values[indices], self._dtype)

    def slice(self, start: int, stop: int) -> Column:
        return Column(self._name, self.values[start:stop], self._dtype)

    def equals(self, other) -> bool:
        return (
            self._name == other.name
            and self._dtype == other.dtype
            and bool(np.array_equal(self.values, other.values))
        )


class DiskTable:
    """A disk-resident table directory opened behind the Table protocol.

    Whole-table operations (``take``, ``sort_by``, ``qualified``, ...)
    materialise through :meth:`to_memory` and return plain in-memory
    results; segment-grained access (:meth:`row_group`,
    :meth:`segment_prunable`) is what the out-of-core scan path uses.
    """

    def __init__(self, directory: str, manifest: dict, buffer: BufferManager | None = None) -> None:
        self._directory = os.path.abspath(directory)
        self._manifest = manifest
        self._buffer = buffer
        self._columns: dict[str, dict] = {
            record["name"]: record for record in manifest["columns"]
        }
        self._schema = Schema(
            ColumnSpec(record["name"], DataType(record["dtype"]))
            for record in manifest["columns"]
        )
        self._stats = {
            name: statistics_from_dict(record["statistics"])
            for name, record in self._columns.items()
        }

    # -- identity & shape ---------------------------------------------------

    @property
    def directory(self) -> str:
        """The table directory (absolute)."""
        return self._directory

    @property
    def uid(self) -> str:
        """Buffer-pool key prefix identifying this table's files."""
        return self._directory

    @property
    def buffer(self) -> BufferManager:
        """The pool serving this table (process default unless pinned)."""
        return self._buffer if self._buffer is not None else get_buffer_manager()

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return int(self._manifest["num_rows"])

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def segment_rows(self) -> int:
        """Nominal rows per segment (the last segment may be shorter)."""
        return int(self._manifest["segment_rows"])

    @property
    def num_segments(self) -> int:
        """Aligned segment (row-group) count, identical across columns."""
        if not self._columns:
            return 0
        first = next(iter(self._columns.values()))
        return len(first["segments"])

    @property
    def statistics_version(self) -> int:
        """Bumped by :func:`append_table` / rewrites; surfaces through
        the catalog version so cached plans re-optimise against fresh
        zone maps."""
        return int(self._manifest["statistics_version"])

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"DiskTable({self._schema!r}, num_rows={self.num_rows}, "
            f"segments={self.num_segments}, dir={self._directory!r})"
        )

    # -- Table protocol -----------------------------------------------------

    def column(self, name: str) -> DiskColumn:
        record = self._column_record(name)
        return DiskColumn(
            self, name, DataType(record["dtype"]), self._stats[name]
        )

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column_values(name)

    def columns(self) -> Iterator[DiskColumn]:
        for name in self._schema.names:
            yield self.column(name)

    def memory_bytes(self) -> int:
        """Buffer-pool bytes currently resident for this table — the
        table's actual RAM footprint, not its on-disk size."""
        return self.buffer.resident_bytes_for(self.uid)

    def bytes_on_disk(self) -> int:
        """Total encoded payload bytes across all segments."""
        return sum(
            int(meta["payload_bytes"])
            for record in self._columns.values()
            for meta in record["segments"]
        )

    def decoded_bytes(self) -> int:
        """Bytes of the table fully decoded (the buffer-residency
        denominator)."""
        return sum(
            self.num_rows * DataType(record["dtype"]).byte_width
            for record in self._columns.values()
        )

    def to_memory(self) -> Table:
        """Materialise the whole table as an in-memory :class:`Table`
        (statistics carried over from the manifest, no re-scan)."""
        return Table(
            Column(
                name,
                self.column_values(name),
                DataType(self._columns[name]["dtype"]),
                self._stats[name],
            )
            for name in self._schema.names
        )

    def project(self, names) -> Table:
        return Table(self.column(name).renamed(name) for name in names)

    def rename(self, mapping) -> Table:
        return self.to_memory().rename(mapping)

    def qualified(self, relation: str) -> Table:
        return self.to_memory().qualified(relation)

    def take(self, indices: np.ndarray) -> Table:
        return self.to_memory().take(indices)

    def slice(self, start: int, stop: int) -> Table:
        return self.to_memory().slice(start, stop)

    def head(self, count: int = 10) -> Table:
        return self.to_memory().head(count)

    def sort_by(self, names) -> Table:
        return self.to_memory().sort_by(names)

    def to_rows(self) -> list[tuple]:
        return self.to_memory().to_rows()

    def pretty(self, limit: int = 20) -> str:
        return self.to_memory().pretty(limit)

    def equals(self, other) -> bool:
        peer = other.to_memory() if isinstance(other, DiskTable) else other
        return self.to_memory().equals(peer)

    def equals_unordered(self, other) -> bool:
        peer = other.to_memory() if isinstance(other, DiskTable) else other
        return self.to_memory().equals_unordered(peer)

    # -- segment access -----------------------------------------------------

    def _column_record(self, name: str) -> dict:
        if name not in self._columns:
            from repro.errors import SchemaError

            raise SchemaError(
                f"no column {name!r}; table has {list(self._schema.names)}"
            )
        return self._columns[name]

    def segment_metas(self, name: str) -> list[dict]:
        """The manifest's segment index (zone maps included) of one column."""
        return list(self._column_record(name)["segments"])

    def _segment_loader(self, name: str, index: int):
        record = self._column_record(name)
        meta = record["segments"][index]
        path = os.path.join(self._directory, record["file"])
        dtype = DataType(record["dtype"]).numpy_dtype

        def load() -> tuple[np.ndarray, int]:
            return read_segment(path, meta, dtype), int(meta["payload_bytes"])

        return load

    def segment_values(self, name: str, index: int) -> np.ndarray:
        """One column segment, decoded through the buffer pool (pin
        released before returning — use :meth:`row_group` to hold pins
        across consumption)."""
        pool = self.buffer
        with pool.lease((self.uid, name, index), self._segment_loader(name, index)) as lease:
            return lease.array

    def column_values(self, name: str) -> np.ndarray:
        """The whole column, decoded (read-only)."""
        record = self._column_record(name)
        dtype = DataType(record["dtype"]).numpy_dtype
        parts = [
            self.segment_values(name, index)
            for index in range(len(record["segments"]))
        ]
        if not parts:
            return np.empty(0, dtype=dtype)
        if len(parts) == 1:
            return parts[0]
        merged = np.concatenate(parts)
        merged.flags.writeable = False
        return merged

    @contextmanager
    def row_group(self, index: int):
        """Pin segment ``index`` across every column; yields a
        :class:`_RowGroup`. Frames stay pinned (and the arrays valid)
        until the context exits."""
        pool = self.buffer
        leases = []
        try:
            arrays: dict[str, np.ndarray] = {}
            cold = 0
            nbytes = 0
            rows = 0
            for name in self._schema.names:
                lease = pool.acquire(
                    (self.uid, name, index), self._segment_loader(name, index)
                )
                leases.append(lease)
                arrays[name] = lease.array
                cold += lease.bytes_read
                nbytes += int(lease.array.nbytes)
                rows = int(lease.array.size)
            yield _RowGroup(arrays, rows, cold, nbytes)
        finally:
            for lease in leases:
                pool.release(lease)

    # -- zone-map reasoning -------------------------------------------------

    def _triples(self, predicates, alias: str):
        names = set(self._schema.names)
        return [
            triple
            for triple in (
                conjunct_triple(predicate, alias, names) for predicate in predicates
            )
            if triple is not None
        ]

    def segment_prunable(self, index: int, predicates, alias: str = "") -> bool:
        """True when the zone maps prove no row of segment ``index``
        can satisfy the conjunction of ``predicates``."""
        for name, op, value in self._triples(predicates, alias):
            meta = self._columns[name]["segments"][index]
            if _zone_prunes(meta, op, value):
                return True
        return False

    def estimate_scan(self, predicates=(), alias: str = "") -> ScanEstimate:
        """Zone-map estimate of what scanning under ``predicates`` costs:
        segments read after pruning, rows touched, bytes fetched, and the
        estimated matching-row count (uniform-within-zone assumption)."""
        triples = self._triples(predicates, alias)
        total = self.num_segments
        segments_read = 0
        rows_scanned = 0.0
        rows_matching = 0.0
        bytes_scanned = 0
        for index in range(total):
            fraction = 1.0
            pruned = False
            for name, op, value in triples:
                meta = self._columns[name]["segments"][index]
                if _zone_prunes(meta, op, value):
                    pruned = True
                    break
                fraction *= _zone_fraction(meta, op, value)
            if pruned:
                continue
            rows = 0
            for record in self._columns.values():
                meta = record["segments"][index]
                rows = int(meta["rows"])
                bytes_scanned += int(meta["payload_bytes"])
            segments_read += 1
            rows_scanned += rows
            rows_matching += rows * fraction
        return ScanEstimate(
            segments_total=total,
            segments_read=segments_read,
            rows_scanned=rows_scanned,
            rows_matching=rows_matching,
            bytes_scanned=bytes_scanned,
        )

    def estimate_selectivity(self, predicates, alias: str = "") -> float:
        """Zone-map selectivity estimate in ``[0, 1]``."""
        if self.num_rows == 0:
            return 0.0
        estimate = self.estimate_scan(predicates, alias)
        return min(max(estimate.rows_matching / self.num_rows, 0.0), 1.0)

    def exact_selectivity(self, predicates, alias: str = "") -> float:
        """Exact selectivity, evaluated segment-by-segment through the
        buffer pool (bounded memory; pruned segments are not read)."""
        if self.num_rows == 0:
            return 0.0
        matches = 0
        for index in range(self.num_segments):
            if self.segment_prunable(index, predicates, alias):
                continue
            with self.row_group(index) as group:
                data = {
                    (f"{alias}.{name}" if alias else name): values
                    for name, values in group.arrays.items()
                }
                mask = np.ones(group.num_rows, dtype=bool)
                for predicate in predicates:
                    mask &= np.asarray(predicate.evaluate(data), dtype=bool)
                matches += int(np.count_nonzero(mask))
        return matches / self.num_rows

    # -- cost-model inputs --------------------------------------------------

    def encoding_mix(self) -> dict[str, float]:
        """Fraction of on-disk payload bytes per encoding — the weights
        for the cost model's per-encoding decode term."""
        totals: dict[str, int] = {}
        for record in self._columns.values():
            for meta in record["segments"]:
                totals[meta["encoding"]] = totals.get(meta["encoding"], 0) + int(
                    meta["payload_bytes"]
                )
        grand = sum(totals.values())
        if grand == 0:
            return {}
        return {name: nbytes / grand for name, nbytes in totals.items()}

    def buffer_residency(self) -> float:
        """Fraction of this table's decoded bytes resident in the buffer
        pool — the cost model's buffer-hit probability."""
        denominator = self.decoded_bytes()
        if denominator <= 0:
            return 0.0
        return min(self.memory_bytes() / denominator, 1.0)


def is_disk_table(table) -> bool:
    """True for disk-resident tables (the scan-lowering discriminator)."""
    return isinstance(table, DiskTable)


# -- writers -----------------------------------------------------------------


def write_table(
    table: Table,
    directory: str,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    encoding: str = "auto",
    buffer: BufferManager | None = None,
) -> DiskTable:
    """Serialise an in-memory table into ``directory`` and open it.

    Column statistics are computed once and persisted in the manifest,
    so re-opening the directory later plans without reading data.

    :param encoding: per-segment page encoding; ``"auto"`` picks the
        smallest payload segment by segment.
    :raises StorageError: zero-column input or a bad ``segment_rows``.
    """
    if table.num_columns == 0:
        raise StorageError("cannot write a table with no columns")
    if segment_rows <= 0:
        raise StorageError(f"segment_rows must be > 0, got {segment_rows}")
    os.makedirs(directory, exist_ok=True)
    columns = []
    for column in table.columns():
        file_name = f"{column.name}.col"
        metas = []
        with open(os.path.join(directory, file_name), "wb") as handle:
            for start in range(0, table.num_rows, segment_rows):
                stop = min(start + segment_rows, table.num_rows)
                metas.append(
                    write_segment(handle, column.values[start:stop], encoding)
                )
        columns.append(
            {
                "name": column.name,
                "dtype": column.dtype.value,
                "file": file_name,
                "statistics": statistics_to_dict(column.statistics),
                "segments": metas,
            }
        )
    manifest = {
        "format_version": FORMAT_VERSION,
        "num_rows": table.num_rows,
        "segment_rows": int(segment_rows),
        "statistics_version": 1,
        "columns": columns,
    }
    write_manifest(directory, manifest)
    opened = DiskTable(directory, manifest, buffer)
    # A rewrite of an existing directory must not serve stale frames.
    opened.buffer.invalidate(opened.uid)
    return opened


def open_table(directory: str, buffer: BufferManager | None = None) -> DiskTable:
    """Open an existing table directory (manifest-only; no data read)."""
    return DiskTable(directory, read_manifest(directory), buffer)


def append_table(
    directory: str,
    table: Table,
    encoding: str = "auto",
    buffer: BufferManager | None = None,
) -> DiskTable:
    """Append ``table``'s rows to an existing disk table.

    New segments are appended to each column file (existing segments and
    any buffered frames stay valid), full-column statistics are
    recomputed, and the manifest's ``statistics_version`` bumps — which
    flows into the catalog version on re-registration and invalidates
    zone-map-dependent cached plans.

    :raises StorageError: schema mismatch with the existing table.
    """
    manifest = read_manifest(directory)
    existing = {record["name"]: record for record in manifest["columns"]}
    incoming = {column.name: column for column in table.columns()}
    if list(existing) != list(incoming) or any(
        existing[name]["dtype"] != incoming[name].dtype.value for name in existing
    ):
        raise StorageError(
            f"append schema mismatch: disk has {list(existing)}, "
            f"got {list(incoming)}"
        )
    segment_rows = int(manifest["segment_rows"])
    for name, record in existing.items():
        path = os.path.join(directory, record["file"])
        values = incoming[name].values
        with open(path, "ab") as handle:
            for start in range(0, table.num_rows, segment_rows):
                stop = min(start + segment_rows, table.num_rows)
                record["segments"].append(
                    write_segment(handle, values[start:stop], encoding)
                )
    manifest["num_rows"] = int(manifest["num_rows"]) + table.num_rows
    manifest["statistics_version"] = int(manifest["statistics_version"]) + 1
    refreshed = DiskTable(directory, manifest, buffer)
    for record in manifest["columns"]:
        record["statistics"] = statistics_to_dict(
            collect_statistics(refreshed.column_values(record["name"]))
        )
    write_manifest(directory, manifest)
    return DiskTable(directory, manifest, buffer)


def spill_table(
    table: Table,
    name: str,
    segment_rows: int | None = None,
    buffer: BufferManager | None = None,
) -> DiskTable:
    """Write ``table`` into a fresh directory under the spill dir
    (``REPRO_SPILL_DIR``) and return the disk-resident handle — what
    ``REPRO_STORAGE=disk`` catalog registration calls."""
    from repro.storage.disk.config import segment_rows_from_env

    safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in name) or "table"
    directory = tempfile.mkdtemp(prefix=f"{safe}-", dir=spill_directory())
    return write_table(
        table,
        directory,
        segment_rows=segment_rows or segment_rows_from_env(),
        buffer=buffer,
    )
