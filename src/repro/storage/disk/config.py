"""Environment configuration for the out-of-core storage subsystem.

Three knobs, all read lazily so tests can monkeypatch the environment:

* ``REPRO_STORAGE`` — ``memory`` (default) or ``disk``. Under ``disk``,
  :meth:`repro.storage.catalog.Catalog.register` transparently spills
  in-memory tables into the spill directory and registers the
  disk-resident result, so the whole engine (and the tier-1 suite)
  exercises the segment/buffer path end-to-end.
* ``REPRO_SPILL_DIR`` — where spilled tables live. Defaults to a
  per-process directory under the system temp dir, removed at exit.
* ``REPRO_BUFFER_BYTES`` — the default :class:`~repro.storage.disk.
  buffer.BufferManager` budget. Accepts a plain byte count or a
  ``k``/``m``/``g`` suffix (powers of 1024), e.g. ``4m``.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile

from repro.errors import ConfigurationError

#: default buffer-pool budget when ``REPRO_BUFFER_BYTES`` is unset.
DEFAULT_BUFFER_BYTES = 256 * 1024 * 1024

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}

#: the per-process default spill dir, created lazily (None until used).
_default_spill_dir: str | None = None


def storage_mode() -> str:
    """The active storage mode: ``"memory"`` or ``"disk"``.

    :raises ConfigurationError: for any other ``REPRO_STORAGE`` value.
    """
    mode = os.environ.get("REPRO_STORAGE", "memory").strip().lower() or "memory"
    if mode not in ("memory", "disk"):
        raise ConfigurationError(
            f"REPRO_STORAGE must be 'memory' or 'disk', got {mode!r}"
        )
    return mode


def parse_bytes(text: str) -> int:
    """Parse a byte-count string: ``4194304``, ``4m``, ``512k``, ``1g``.

    :raises ConfigurationError: for malformed or non-positive values.
    """
    raw = text.strip().lower()
    # Tolerate spelled-out binary suffixes ("4mib", "512kb").
    for tail in ("ib", "b"):
        if raw.endswith(tail) and len(raw) > len(tail) and raw[-len(tail) - 1] in _SUFFIXES:
            raw = raw[: -len(tail)]
            break
    factor = 1
    if raw and raw[-1] in _SUFFIXES:
        factor = _SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw) * factor
    except ValueError:
        raise ConfigurationError(f"cannot parse byte count {text!r}") from None
    if value <= 0:
        raise ConfigurationError(f"byte count must be > 0, got {text!r}")
    return value


def buffer_budget_bytes() -> int:
    """The configured buffer-pool budget (``REPRO_BUFFER_BYTES``)."""
    raw = os.environ.get("REPRO_BUFFER_BYTES", "")
    if not raw.strip():
        return DEFAULT_BUFFER_BYTES
    return parse_bytes(raw)


def segment_rows_from_env() -> int:
    """Rows per segment for spilled tables (``REPRO_SEGMENT_ROWS``;
    default 65536). CI's disk leg shrinks this so small test tables
    still split into multiple segments and exercise eviction."""
    raw = os.environ.get("REPRO_SEGMENT_ROWS", "").strip()
    if not raw:
        from repro.storage.disk.format import DEFAULT_SEGMENT_ROWS

        return DEFAULT_SEGMENT_ROWS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SEGMENT_ROWS must be an integer, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(f"REPRO_SEGMENT_ROWS must be > 0, got {value}")
    return value


def _cleanup_default_spill_dir() -> None:  # pragma: no cover - atexit hook
    if _default_spill_dir is not None:
        shutil.rmtree(_default_spill_dir, ignore_errors=True)


def spill_directory() -> str:
    """The directory spilled tables are written under (created on use).

    ``REPRO_SPILL_DIR`` when set; otherwise a per-process temp directory
    that is removed when the process exits.
    """
    global _default_spill_dir
    configured = os.environ.get("REPRO_SPILL_DIR", "").strip()
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    if _default_spill_dir is None:
        _default_spill_dir = os.path.join(
            tempfile.gettempdir(), f"repro-spill-{os.getpid()}"
        )
        atexit.register(_cleanup_default_spill_dir)
    os.makedirs(_default_spill_dir, exist_ok=True)
    return _default_spill_dir
