"""Out-of-core columnar storage: disk segments, zone maps, a buffer pool.

The subsystem in one paragraph: :func:`write_table` serialises a table
into a versioned directory of per-column segment files (plain /
dictionary / RLE pages with min-max zone-map footers, statistics
persisted in the manifest); :class:`DiskTable` opens that directory
behind the Table protocol; every data access goes through a
:class:`BufferManager` (clock eviction, pin/unpin leases, a hard byte
budget); :class:`~repro.engine.operators.segment_scan.SegmentScan`
iterates pinned row groups and skips segments its pushed-down
predicates prove empty; and the cost model's I/O terms
(:meth:`~repro.core.cost.model.CostModel.disk_scan_cost`) let the DP
optimiser trade scan strategies against cold-read, buffer-hit, and
decode cost. Set ``REPRO_STORAGE=disk`` to spill every registered
catalog table transparently.
"""

from repro.storage.disk.buffer import (
    BufferManager,
    Lease,
    get_buffer_manager,
    set_buffer_manager,
)
from repro.storage.disk.config import (
    DEFAULT_BUFFER_BYTES,
    buffer_budget_bytes,
    segment_rows_from_env,
    spill_directory,
    storage_mode,
)
from repro.storage.disk.format import (
    DEFAULT_SEGMENT_ROWS,
    ENCODINGS,
    FORMAT_VERSION,
    MANIFEST_NAME,
    choose_encoding,
    encode_segment,
    read_manifest,
    read_segment,
    scan_footers,
    write_manifest,
    write_segment,
)
from repro.storage.disk.table import (
    DiskColumn,
    DiskTable,
    ScanEstimate,
    append_table,
    conjunct_triple,
    is_disk_table,
    open_table,
    spill_table,
    write_table,
)

__all__ = [
    "BufferManager",
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_SEGMENT_ROWS",
    "DiskColumn",
    "DiskTable",
    "ENCODINGS",
    "FORMAT_VERSION",
    "Lease",
    "MANIFEST_NAME",
    "ScanEstimate",
    "append_table",
    "buffer_budget_bytes",
    "choose_encoding",
    "conjunct_triple",
    "encode_segment",
    "get_buffer_manager",
    "is_disk_table",
    "open_table",
    "read_manifest",
    "read_segment",
    "scan_footers",
    "segment_rows_from_env",
    "set_buffer_manager",
    "spill_directory",
    "spill_table",
    "storage_mode",
    "write_manifest",
    "write_segment",
    "write_table",
]
