"""The on-disk segment format: versioned, self-describing column files.

A disk-resident table is a directory:

.. code-block:: text

    table_dir/
      MANIFEST.json      # format version, schema, statistics, segment index
      <column>.col       # one file per column: a sequence of segments

Each column file is a concatenation of fixed-row-count *segments*. A
segment is its encoded payload followed by a backward-readable footer::

    [payload bytes][footer JSON][footer length: uint32 LE][magic "RDS1"]

so the file is self-describing even without the manifest:
:func:`scan_footers` recovers every segment's metadata by walking the
trailer chain from the end of the file. The footer (and the manifest's
segment index, which carries the same dicts plus payload offsets) is the
segment's *zone map*: min/max, null count, and a distinct estimate —
what scan pruning and the optimiser's I/O costing consume without
touching the payload.

Three page encodings are supported, reusing the library's existing
compression schemes (:mod:`repro.storage.dictionary`,
:mod:`repro.storage.rle`):

* ``plain`` — the raw little-endian array; read back zero-copy as a
  read-only :class:`numpy.memmap`.
* ``dictionary`` — width-narrowed codes plus the sorted dictionary.
* ``rle`` — run values plus int64 run lengths.

``auto`` picks the smallest payload per segment, which is how the
storage layer *manufactures* layout choices the optimiser then costs.
"""

from __future__ import annotations

import json
import os
import struct
from typing import BinaryIO

import numpy as np

from repro._util.arrays import runs_of
from repro.errors import StorageError
from repro.storage.dictionary import dictionary_encode
from repro.storage.rle import rle_encode
from repro.storage.statistics import ColumnStatistics

#: trailing magic of every segment; the "1" is the segment format version.
MAGIC = b"RDS1"

#: manifest-level format version; readers reject anything newer.
FORMAT_VERSION = 1

#: manifest file name inside a table directory.
MANIFEST_NAME = "MANIFEST.json"

#: default rows per segment (64Ki: a few hundred KiB per int64 segment).
DEFAULT_SEGMENT_ROWS = 65536

#: the supported page encodings, in decode-cheapness order.
ENCODINGS = ("plain", "dictionary", "rle")

_TRAILER = struct.Struct("<I")  # footer length, little-endian uint32


def _code_dtype(cardinality: int) -> np.dtype:
    """Narrowest unsigned dtype that can hold dictionary codes."""
    if cardinality <= 1 << 8:
        return np.dtype(np.uint8)
    if cardinality <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def _has_nulls(values: np.ndarray) -> bool:
    return bool(
        np.issubdtype(values.dtype, np.floating)
        and bool(np.isnan(values).any())
    )


def choose_encoding(values: np.ndarray) -> str:
    """The smallest-payload encoding for one segment's values.

    Dictionary pages are never chosen for float segments containing NaN:
    ``np.unique``'s NaN handling differs across numpy versions, and a
    NaN-bearing dictionary round-trip is not value-stable. Ties prefer
    the cheaper-to-decode encoding (``plain`` < ``rle`` < ``dictionary``).
    """
    n = int(values.size)
    if n == 0:
        return "plain"
    itemsize = int(values.dtype.itemsize)
    sizes = {"plain": n * itemsize}
    __, run_values = runs_of(values)
    sizes["rle"] = int(run_values.size) * (itemsize + 8)
    if not _has_nulls(values):
        cardinality = int(np.unique(values).size)
        sizes["dictionary"] = (
            cardinality * itemsize + n * int(_code_dtype(cardinality).itemsize)
        )
    order = {"plain": 0, "rle": 1, "dictionary": 2}
    return min(sizes, key=lambda name: (sizes[name], order[name]))


def _zone_map(values: np.ndarray) -> dict:
    """min/max/null_count/distinct of one segment, NaN-aware.

    ``min``/``max`` ignore NaNs and are ``None`` for an all-null
    segment; ``distinct`` counts NaN as one extra value.
    """
    null_count = 0
    if np.issubdtype(values.dtype, np.floating):
        nan_mask = np.isnan(values)
        null_count = int(np.count_nonzero(nan_mask))
        present = values[~nan_mask] if null_count else values
    else:
        present = values
    if present.size == 0:
        minimum = maximum = None
        distinct = 1 if null_count else 0
    else:
        minimum = present.min().item()
        maximum = present.max().item()
        distinct = int(np.unique(present).size) + (1 if null_count else 0)
    return {
        "min": minimum,
        "max": maximum,
        "null_count": null_count,
        "distinct": distinct,
    }


def encode_segment(values: np.ndarray, encoding: str = "auto") -> tuple[bytes, dict]:
    """Encode one segment; returns ``(payload, meta)``.

    ``meta`` is the footer dict: rows, the resolved encoding, the zone
    map, ``payload_bytes``, and the payload's array layout
    (``[[name, numpy dtype, nbytes], ...]``, laid out sequentially).

    :raises StorageError: for an unknown ``encoding`` name.
    """
    if encoding == "auto":
        encoding = choose_encoding(values)
    if encoding not in ENCODINGS:
        raise StorageError(f"unknown segment encoding {encoding!r}")
    values = np.ascontiguousarray(values)
    if encoding == "dictionary" and _has_nulls(values):
        # NaN dictionaries are not round-trip safe; fall back silently so
        # an explicit table-level encoding choice still writes correctly.
        encoding = "plain"
    if encoding == "plain":
        arrays = [("values", values)]
    elif encoding == "dictionary":
        encoded = dictionary_encode(values)
        codes = encoded.codes.astype(_code_dtype(encoded.cardinality))
        arrays = [("codes", codes), ("dictionary", encoded.dictionary)]
    else:  # rle
        encoded = rle_encode(values)
        arrays = [
            ("values", encoded.values),
            ("lengths", encoded.lengths.astype(np.int64)),
        ]
    payload = b"".join(np.ascontiguousarray(a).tobytes() for __, a in arrays)
    meta = {
        "rows": int(values.size),
        "encoding": encoding,
        "payload_bytes": len(payload),
        "arrays": [
            [name, str(array.dtype), int(array.nbytes)] for name, array in arrays
        ],
    }
    meta.update(_zone_map(values))
    return payload, meta


def write_segment(handle: BinaryIO, values: np.ndarray, encoding: str = "auto") -> dict:
    """Encode and append one segment to an open column file.

    Returns the segment meta with its ``offset`` (payload file offset)
    filled in — the dict the manifest's segment index stores.
    """
    payload, meta = encode_segment(values, encoding)
    footer = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    meta = dict(meta, offset=handle.tell())
    handle.write(payload)
    handle.write(footer)
    handle.write(_TRAILER.pack(len(footer)))
    handle.write(MAGIC)
    return meta


def read_segment(path: str, meta: dict, dtype: np.dtype) -> np.ndarray:
    """Decode one segment back to its value array (read-only).

    Plain segments come back as a zero-copy read-only
    :class:`numpy.memmap`; dictionary and RLE segments decode into fresh
    arrays. ``dtype`` is the column's logical numpy dtype (the decode
    target).
    """
    encoding = meta["encoding"]
    layout = {name: (np.dtype(spec), int(nbytes)) for name, spec, nbytes in meta["arrays"]}
    offset = int(meta["offset"])
    if encoding == "plain":
        array_dtype, nbytes = layout["values"]
        array = np.memmap(
            path,
            dtype=array_dtype,
            mode="r",
            offset=offset,
            shape=(nbytes // array_dtype.itemsize,),
        )
        return array
    parts: dict[str, np.ndarray] = {}
    cursor = offset
    for name, spec, nbytes in meta["arrays"]:
        part_dtype = np.dtype(spec)
        parts[name] = np.fromfile(
            path,
            dtype=part_dtype,
            count=int(nbytes) // part_dtype.itemsize,
            offset=cursor,
        )
        cursor += int(nbytes)
    if encoding == "dictionary":
        decoded = parts["dictionary"][parts["codes"]]
    elif encoding == "rle":
        decoded = np.repeat(parts["values"], parts["lengths"])
    else:  # pragma: no cover - encode_segment validated the name
        raise StorageError(f"unknown segment encoding {encoding!r}")
    decoded = np.ascontiguousarray(decoded, dtype=dtype)
    decoded.flags.writeable = False
    return decoded


def scan_footers(path: str) -> list[dict]:
    """Recover every segment's metadata by walking the trailer chain
    backward from the end of ``path`` (no manifest needed).

    Returns the segment metas in file order, each with ``offset`` filled
    in — the recovery path for a table whose manifest was lost, and the
    round-trip check the format tests assert.

    :raises StorageError: when the trailer chain is malformed.
    """
    metas: list[dict] = []
    size = os.path.getsize(path)
    if size == 0:
        return metas
    with open(path, "rb") as handle:
        position = size
        while position > 0:
            if position < len(MAGIC) + _TRAILER.size:
                raise StorageError(f"{path}: truncated segment trailer")
            handle.seek(position - len(MAGIC))
            if handle.read(len(MAGIC)) != MAGIC:
                raise StorageError(f"{path}: bad segment magic")
            handle.seek(position - len(MAGIC) - _TRAILER.size)
            (footer_len,) = _TRAILER.unpack(handle.read(_TRAILER.size))
            footer_start = position - len(MAGIC) - _TRAILER.size - footer_len
            if footer_start < 0:
                raise StorageError(f"{path}: segment footer overruns file")
            handle.seek(footer_start)
            meta = json.loads(handle.read(footer_len).decode("utf-8"))
            offset = footer_start - int(meta["payload_bytes"])
            if offset < 0:
                raise StorageError(f"{path}: segment payload overruns file")
            metas.append(dict(meta, offset=offset))
            position = offset
    metas.reverse()
    return metas


# -- statistics (de)serialisation ------------------------------------------


def statistics_to_dict(stats: ColumnStatistics) -> dict:
    """A :class:`ColumnStatistics` as a JSON-friendly dict."""
    return {
        "count": stats.count,
        "minimum": stats.minimum,
        "maximum": stats.maximum,
        "distinct": stats.distinct,
        "is_sorted": stats.is_sorted,
        "is_clustered": stats.is_clustered,
        "is_dense": stats.is_dense,
    }


def statistics_from_dict(record: dict) -> ColumnStatistics:
    """Rebuild a :class:`ColumnStatistics` from its manifest dict."""
    return ColumnStatistics(
        count=int(record["count"]),
        minimum=record["minimum"],
        maximum=record["maximum"],
        distinct=int(record["distinct"]),
        is_sorted=bool(record["is_sorted"]),
        is_clustered=bool(record["is_clustered"]),
        is_dense=bool(record["is_dense"]),
    )


# -- manifest ----------------------------------------------------------------


def write_manifest(directory: str, manifest: dict) -> None:
    """Atomically write a table directory's manifest (tmp + rename)."""
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
    os.replace(tmp, path)


def read_manifest(directory: str) -> dict:
    """Read and version-check a table directory's manifest.

    :raises StorageError: missing manifest or unsupported format version.
    """
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        raise StorageError(f"no {MANIFEST_NAME} in {directory!r}")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"{directory!r}: on-disk format version {version!r} is not "
            f"supported (this build reads version {FORMAT_VERSION})"
        )
    return manifest
