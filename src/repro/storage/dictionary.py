"""Dictionary compression.

Section 2.1 of the paper observes that *"the keys of a dictionary-compressed
column are a natural candidate for [static perfect hashing] and can directly
be used for SPH"*: dictionary codes are dense integers ``0..NDV-1`` by
construction. This module provides that encoding, so that density is not
just a measured statistic but something the storage layer can *manufacture*
— which is exactly the lever the DQO optimiser pulls when it rewrites a
sparse-domain grouping into dictionary-encode + SPH grouping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ColumnError
from repro.storage.column import Column
from repro.storage.dtypes import DataType
from repro.storage.statistics import ColumnStatistics


@dataclass(frozen=True)
class DictionaryEncoded:
    """A dictionary-encoded column: codes plus the sorted dictionary.

    ``codes[i]`` is the index of the original value in ``dictionary``;
    because the dictionary is sorted, the encoding is *order-preserving*:
    ``codes[i] < codes[j]  <=>  original[i] < original[j]``.
    """

    #: dense integer codes in ``[0, len(dictionary))``.
    codes: np.ndarray
    #: sorted array of the distinct original values.
    dictionary: np.ndarray

    @property
    def cardinality(self) -> int:
        """Number of dictionary entries (= NDV of the original column)."""
        return int(self.dictionary.size)

    def memory_bytes(self) -> int:
        """Bytes held by the code and dictionary arrays."""
        return int(self.codes.nbytes) + int(self.dictionary.nbytes)

    def decode(self) -> np.ndarray:
        """Reconstruct the original values."""
        return self.dictionary[self.codes]

    def decode_codes(self, codes: np.ndarray) -> np.ndarray:
        """Map an arbitrary array of codes back to original values."""
        return self.dictionary[codes]

    def encode_values(self, values: np.ndarray) -> np.ndarray:
        """Map original-domain ``values`` to codes.

        :raises ColumnError: if any value is not in the dictionary.
        """
        positions = np.searchsorted(self.dictionary, values)
        in_range = positions < self.dictionary.size
        if not bool(np.all(in_range)) or not bool(
            np.all(self.dictionary[np.minimum(positions, self.dictionary.size - 1)] == values)
        ):
            raise ColumnError("value(s) not present in dictionary")
        return positions.astype(np.int64)


def dictionary_encode(values: np.ndarray) -> DictionaryEncoded:
    """Encode ``values`` against its own sorted distinct-value dictionary.

    The resulting code column is dense and order-preserving, which makes it
    directly usable as a static perfect hash key (paper §2.1).
    """
    if values.ndim != 1:
        raise ColumnError(f"expected 1-D values, got shape {values.shape}")
    dictionary, codes = np.unique(values, return_inverse=True)
    return DictionaryEncoded(codes=codes.astype(np.int64), dictionary=dictionary)


def dictionary_encode_column(column: Column) -> tuple[Column, DictionaryEncoded]:
    """Encode a :class:`Column`, returning the code column and the encoding.

    The code column carries precomputed statistics: density is guaranteed by
    construction, and sortedness is inherited from the input because the
    encoding is order-preserving.
    """
    encoded = dictionary_encode(column.values)
    source = column.statistics
    stats = ColumnStatistics(
        count=source.count,
        minimum=0 if source.count else None,
        maximum=encoded.cardinality - 1 if source.count else None,
        distinct=encoded.cardinality,
        is_sorted=source.is_sorted,
        is_clustered=source.is_clustered,
        is_dense=source.count > 0,
    )
    code_column = Column(column.name, encoded.codes, DataType.INT64, stats)
    return code_column, encoded
