"""Columnar storage substrate: types, columns, schemas, tables, layouts,
compression, statistics, and the catalog."""

from repro.storage.catalog import Catalog, ForeignKey
from repro.storage.column import Column
from repro.storage.dictionary import (
    DictionaryEncoded,
    dictionary_encode,
    dictionary_encode_column,
)
from repro.storage.disk import (
    BufferManager,
    DiskColumn,
    DiskTable,
    append_table,
    get_buffer_manager,
    is_disk_table,
    open_table,
    set_buffer_manager,
    spill_table,
    write_table,
)
from repro.storage.dtypes import DataType
from repro.storage.layout import Layout, PaxStore, RowStore, convert
from repro.storage.overlay import OverlayCatalog, StatPatch, StatisticsOverlay
from repro.storage.rle import RunLengthEncoded, rle_encode
from repro.storage.schema import ColumnSpec, Schema
from repro.storage.statistics import ColumnStatistics, collect_statistics
from repro.storage.table import Table

__all__ = [
    "BufferManager",
    "Catalog",
    "Column",
    "ColumnSpec",
    "ColumnStatistics",
    "DataType",
    "DictionaryEncoded",
    "DiskColumn",
    "DiskTable",
    "ForeignKey",
    "Layout",
    "OverlayCatalog",
    "PaxStore",
    "RowStore",
    "RunLengthEncoded",
    "Schema",
    "StatPatch",
    "StatisticsOverlay",
    "Table",
    "append_table",
    "collect_statistics",
    "convert",
    "dictionary_encode",
    "dictionary_encode_column",
    "get_buffer_manager",
    "is_disk_table",
    "open_table",
    "rle_encode",
    "set_buffer_manager",
    "spill_table",
    "write_table",
]
