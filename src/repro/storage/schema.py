"""Relation schemas: ordered, named, typed column specifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.storage.dtypes import DataType


@dataclass(frozen=True)
class ColumnSpec:
    """Name and logical type of one column in a schema."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(
                f"dtype of column {self.name!r} must be a DataType, "
                f"got {type(self.dtype).__name__}"
            )

    def qualified(self, relation: str) -> "ColumnSpec":
        """This spec with its name prefixed by ``relation.``."""
        return ColumnSpec(f"{relation}.{self.name}", self.dtype)


class Schema:
    """An ordered collection of :class:`ColumnSpec` with unique names.

    Schemas are immutable value objects; all "modifying" operations return
    new instances.
    """

    __slots__ = ("_specs", "_index")

    def __init__(self, specs: Iterable[ColumnSpec]) -> None:
        specs = tuple(specs)
        index: dict[str, int] = {}
        for position, spec in enumerate(specs):
            if spec.name in index:
                raise SchemaError(f"duplicate column name {spec.name!r}")
            index[spec.name] = position
        self._specs = specs
        self._index = index

    @classmethod
    def of(cls, **columns: DataType) -> "Schema":
        """Build a schema from keyword arguments: ``Schema.of(id=INT64, ...)``.

        Keyword order is the column order (guaranteed by Python 3.7+).
        """
        return cls(ColumnSpec(name, dtype) for name, dtype in columns.items())

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return tuple(spec.name for spec in self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._specs[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; schema has {list(self.names)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name}: {s.dtype.value}" for s in self._specs)
        return f"Schema({inner})"

    def position(self, name: str) -> int:
        """Zero-based position of column ``name``.

        :raises SchemaError: if the column does not exist.
        """
        if name not in self._index:
            raise SchemaError(
                f"no column {name!r}; schema has {list(self.names)}"
            )
        return self._index[name]

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing ``names`` in the given order."""
        return Schema(self[name] for name in names)

    def qualified(self, relation: str) -> "Schema":
        """All column names prefixed with ``relation.`` (for join outputs)."""
        return Schema(spec.qualified(relation) for spec in self._specs)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation (e.g. join output) of two relations.

        :raises SchemaError: on duplicate column names; qualify first.
        """
        return Schema(tuple(self._specs) + tuple(other._specs))
