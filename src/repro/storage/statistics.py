"""Column statistics — the source of DQO plan properties.

Section 2.2 of the paper lists the data properties deep query optimisation
must track beyond the classical "interesting orders": *sparse vs dense,
clustered, partitioned, correlated, compressed, layout*. This module measures
the statistical ones directly from column data:

* **sortedness** — is the column non-decreasing?
* **density** — does the column use every value of ``[min, max]``? A dense
  integer domain is what makes static perfect hashing applicable (§2.1).
* **clusteredness** — are equal values stored contiguously even if the
  column is not globally sorted? (Order-based grouping only needs this,
  which the paper calls "partitioned by the grouping key".)
* **number of distinct values (NDV)** — the paper assumes NDV is known to
  every grouping implementation; it is collected here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.arrays import is_nondecreasing, runs_of
from repro.errors import StatisticsError


@dataclass(frozen=True)
class ColumnStatistics:
    """Immutable summary statistics of one column.

    Instances are produced by :func:`collect_statistics`; constructing them
    by hand is allowed in tests and by generators that know their output
    distribution (which avoids a rescan).
    """

    #: number of values in the column.
    count: int
    #: smallest value; ``None`` for an empty column.
    minimum: int | float | None
    #: largest value; ``None`` for an empty column.
    maximum: int | float | None
    #: number of distinct values.
    distinct: int
    #: column is globally non-decreasing.
    is_sorted: bool
    #: equal values are stored contiguously (weaker than sorted).
    is_clustered: bool
    #: every integer in ``[minimum, maximum]`` occurs (integer columns only).
    is_dense: bool

    def __post_init__(self) -> None:
        if self.count < 0:
            raise StatisticsError(f"count must be >= 0, got {self.count}")
        if self.distinct > max(self.count, 0):
            raise StatisticsError(
                f"distinct ({self.distinct}) cannot exceed count ({self.count})"
            )
        if self.is_sorted and not self.is_clustered:
            raise StatisticsError("a sorted column is by definition clustered")

    @property
    def domain_size(self) -> int:
        """Size of the integer interval ``[minimum, maximum]``; 0 if empty."""
        if self.count == 0 or self.minimum is None or self.maximum is None:
            return 0
        return int(self.maximum) - int(self.minimum) + 1

    @property
    def density(self) -> float:
        """``distinct / domain_size`` in (0, 1]; 0.0 for an empty column."""
        domain = self.domain_size
        if domain == 0:
            return 0.0
        return self.distinct / domain


def collect_statistics(values: np.ndarray) -> ColumnStatistics:
    """Scan ``values`` once and compute its :class:`ColumnStatistics`.

    Works for any 1-D numeric array. Density is only meaningful for integer
    data; for float data ``is_dense`` is reported as ``False``.
    """
    if values.ndim != 1:
        raise StatisticsError(f"expected a 1-D array, got shape {values.shape}")
    if values.size == 0:
        return ColumnStatistics(
            count=0,
            minimum=None,
            maximum=None,
            distinct=0,
            is_sorted=True,
            is_clustered=True,
            is_dense=False,
        )
    minimum = values.min()
    maximum = values.max()
    sorted_flag = is_nondecreasing(values)
    if sorted_flag:
        # One pass over the runs suffices: every run is a distinct value.
        starts, run_values = runs_of(values)
        distinct = int(run_values.size)
        clustered = True
        del starts
    else:
        unique = np.unique(values)
        distinct = int(unique.size)
        # Clustered: each distinct value forms exactly one run.
        __, run_values = runs_of(values)
        clustered = int(run_values.size) == distinct
    if np.issubdtype(values.dtype, np.integer):
        domain = int(maximum) - int(minimum) + 1
        dense = distinct == domain
        min_out: int | float = int(minimum)
        max_out: int | float = int(maximum)
    else:
        dense = False
        min_out = float(minimum)
        max_out = float(maximum)
    return ColumnStatistics(
        count=int(values.size),
        minimum=min_out,
        maximum=max_out,
        distinct=distinct,
        is_sorted=sorted_flag,
        is_clustered=clustered,
        is_dense=dense,
    )
