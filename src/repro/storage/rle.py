"""Run-length encoding (RLE).

Section 2.2 lists *"compressed (and how exactly?)"* among the DQO plan
properties. RLE is the second concrete compression scheme in this library
(next to :mod:`repro.storage.dictionary`); it is interesting to DQO because
a run-length encoded column *is* a partitioned/clustered representation —
grouping over an RLE column degenerates to an aggregation over runs, which
is the order-based grouping kernel operating on metadata only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.arrays import runs_of
from repro.errors import ColumnError


@dataclass(frozen=True)
class RunLengthEncoded:
    """A run-length-encoded 1-D array: (value, run length) pairs in order."""

    #: value of each run.
    values: np.ndarray
    #: length of each run; same size as :attr:`values`, all >= 1.
    lengths: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.lengths.shape:
            raise ColumnError(
                "values and lengths must have equal shape, got "
                f"{self.values.shape} vs {self.lengths.shape}"
            )
        if self.lengths.size and int(self.lengths.min()) < 1:
            raise ColumnError("all run lengths must be >= 1")

    @property
    def num_runs(self) -> int:
        """Number of runs."""
        return int(self.values.size)

    @property
    def decoded_size(self) -> int:
        """Number of elements after decoding."""
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def compression_ratio(self) -> float:
        """``decoded_size / num_runs``; 1.0 means RLE gained nothing."""
        if self.num_runs == 0:
            return 1.0
        return self.decoded_size / self.num_runs

    def memory_bytes(self) -> int:
        """Bytes held by the run arrays (values plus lengths)."""
        return int(self.values.nbytes) + int(self.lengths.nbytes)

    def decode(self) -> np.ndarray:
        """Expand back to the original element sequence."""
        return np.repeat(self.values, self.lengths)


def rle_encode(values: np.ndarray) -> RunLengthEncoded:
    """Encode ``values`` as runs of consecutive equal elements."""
    if values.ndim != 1:
        raise ColumnError(f"expected 1-D values, got shape {values.shape}")
    starts, run_values = runs_of(values)
    if starts.size == 0:
        return RunLengthEncoded(
            values=values.copy(), lengths=np.empty(0, dtype=np.int64)
        )
    boundaries = np.append(starts, values.size)
    lengths = np.diff(boundaries).astype(np.int64)
    return RunLengthEncoded(values=run_values.copy(), lengths=lengths)
