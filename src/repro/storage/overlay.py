"""What-if statistics overlays: hypothetical catalogs, real data.

A :class:`StatisticsOverlay` is an ordered set of patches over a
catalog's statistics — "pretend R.ID is sorted", "pretend S has 180k
rows", "pretend an SPH array exists on D1.ID" — that :meth:`apply`
turns into a fresh :class:`OverlayCatalog` *without mutating anything*:
the base catalog, its tables, and their backing arrays are untouched
and shared. Optimising against the overlay catalog answers "what plan
would the optimiser pick if the statistics said X?"
(:func:`repro.obs.search.whatif`).

Mechanics worth knowing:

* The overlay catalog is a real :class:`~repro.storage.catalog.Catalog`
  subclass with its own identity token, so its
  :meth:`~repro.storage.catalog.Catalog.fingerprint` never collides with
  the base catalog's — a process-wide plan cache cannot leak hypothetical
  plans into real optimisations (or vice versa).
* Patched tables are built once and held by the overlay catalog:
  property/correlation memoisation keys on table identity
  (``id(table)``), so the patched tables must stay alive and stable for
  the optimiser's caches to be sound.
* Column statistics are fabricated as *trusted* precomputed
  :class:`~repro.storage.statistics.ColumnStatistics` — exactly the
  constructor hook producers use when they already know a distribution.
  Consistency invariants are maintained for you (sorted implies
  clustered, distinct <= count).
* A cardinality patch changes the *statistics* (catalog cardinality and
  per-column counts, with distinct clamped), not the data: hypothetical
  plans are costed, not executed, so the arrays keep their real length.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import StatisticsError
from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.table import Table


@dataclass(frozen=True)
class StatPatch:
    """One hypothetical statistics change."""

    table: str
    #: None for table-level patches (cardinality).
    column: str | None
    #: "cardinality" | "shuffled" | "sorted" | "clustered" | "dense" |
    #: "distinct" | "index".
    field: str
    value: object

    def describe(self) -> str:
        target = (
            f"{self.table}.{self.column}" if self.column else self.table
        )
        return f"{target}.{self.field}={self.value}"


class StatisticsOverlay:
    """An ordered, chainable collection of :class:`StatPatch` entries."""

    def __init__(self) -> None:
        self._patches: list[StatPatch] = []

    # -- builders (all chainable) -----------------------------------------

    def set_cardinality(self, table: str, rows: int) -> "StatisticsOverlay":
        """Pretend ``table`` has ``rows`` rows."""
        if rows < 0:
            raise StatisticsError(f"cardinality must be >= 0, got {rows}")
        self._patches.append(StatPatch(table, None, "cardinality", int(rows)))
        return self

    def set_sorted(
        self, table: str, column: str, value: bool = True
    ) -> "StatisticsOverlay":
        """Pretend ``table.column`` is (un)sorted. Setting sorted also
        sets clustered (a sorted column is by definition clustered);
        clearing it also clears clustered — follow with
        :meth:`set_clustered` to model a shuffled-but-clustered column."""
        self._patches.append(StatPatch(table, column, "sorted", bool(value)))
        return self

    def set_shuffled(self, table: str) -> "StatisticsOverlay":
        """Pretend ``table`` was physically shuffled: *every* column
        loses sortedness and clusteredness at once. Prefer this over
        :meth:`set_sorted` for modelling a layout change — a per-column
        patch can be undone by the optimiser's correlation closure
        (columns monotone in a still-sorted sibling are re-derived
        sorted, because correlations are facts about the data, not the
        layout)."""
        self._patches.append(StatPatch(table, None, "shuffled", True))
        return self

    def set_clustered(
        self, table: str, column: str, value: bool = True
    ) -> "StatisticsOverlay":
        """Pretend equal values of ``table.column`` are stored
        contiguously (clearing it also clears sorted)."""
        self._patches.append(StatPatch(table, column, "clustered", bool(value)))
        return self

    def set_dense(
        self, table: str, column: str, value: bool = True
    ) -> "StatisticsOverlay":
        """Pretend ``table.column``'s domain is dense (§2.1's SPH
        precondition)."""
        self._patches.append(StatPatch(table, column, "dense", bool(value)))
        return self

    def set_distinct(
        self, table: str, column: str, distinct: int
    ) -> "StatisticsOverlay":
        """Pretend ``table.column`` has ``distinct`` distinct values
        (clamped to the — possibly patched — row count at apply time)."""
        if distinct < 0:
            raise StatisticsError(f"distinct must be >= 0, got {distinct}")
        self._patches.append(
            StatPatch(table, column, "distinct", int(distinct))
        )
        return self

    def set_index(
        self, table: str, column: str, kind: str = "btree", present: bool = True
    ) -> "StatisticsOverlay":
        """Pretend an Algorithmic View of ``kind`` on ``table.column``
        is (or is not) materialised. Consumed by
        :func:`repro.obs.search.whatif`, which adjusts the hypothetical
        AV registry; :meth:`apply` itself only patches statistics."""
        self._patches.append(
            StatPatch(table, column, "index", (str(kind), bool(present)))
        )
        return self

    # -- introspection ------------------------------------------------------

    def patches(self) -> list[StatPatch]:
        """All patches, in application order."""
        return list(self._patches)

    def index_patches(self) -> list[StatPatch]:
        """Just the hypothetical-view patches (see :meth:`set_index`)."""
        return [patch for patch in self._patches if patch.field == "index"]

    def is_empty(self) -> bool:
        return not self._patches

    def tables(self) -> list[str]:
        """The tables any patch touches, sorted."""
        return sorted({patch.table for patch in self._patches})

    def describe(self) -> str:
        """One line, e.g. ``R.ID.sorted=False, S.cardinality=180000``."""
        if not self._patches:
            return "(no patches)"
        return ", ".join(patch.describe() for patch in self._patches)

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "patches": [
                {
                    "table": patch.table,
                    "column": patch.column,
                    "field": patch.field,
                    "value": list(patch.value)
                    if isinstance(patch.value, tuple)
                    else patch.value,
                }
                for patch in self._patches
            ]
        }

    # -- application --------------------------------------------------------

    def apply(self, catalog: Catalog) -> "OverlayCatalog":
        """A fresh hypothetical catalog over ``catalog`` (see module
        docstring). Unpatched tables are shared by identity.

        :raises StatisticsError: when a patch names an unknown table or
            column (via the catalog's own lookup errors).
        """
        return OverlayCatalog(catalog, self)


class OverlayCatalog(Catalog):
    """A catalog with this overlay's statistics; built by
    :meth:`StatisticsOverlay.apply`."""

    def __init__(self, base: Catalog, overlay: StatisticsOverlay) -> None:
        super().__init__()  # fresh identity token: distinct fingerprint
        self._base = base
        self._overlay = overlay
        self._row_overrides: dict[str, int] = {}
        patched_tables = {
            name: [
                patch
                for patch in overlay.patches()
                if patch.table == name and patch.field != "index"
            ]
            for name in base.names()
        }
        unknown = {
            patch.table
            for patch in overlay.patches()
            if patch.table not in patched_tables
        }
        if unknown:
            raise StatisticsError(
                f"overlay patches unknown tables {sorted(unknown)}; "
                f"catalog has {base.names()}"
            )
        for name in base.names():
            table = base.table(name)
            patches = patched_tables[name]
            if patches:
                table = self._patched_table(name, table, patches)
            self.register(name, table)
        for fk in base.foreign_keys():
            self.add_foreign_key(fk)

    def _patched_table(
        self, name: str, table: Table, patches: list[StatPatch]
    ) -> Table:
        rows = None
        per_column: dict[str, list[StatPatch]] = {}
        for patch in patches:
            if patch.field == "cardinality":
                rows = int(patch.value)
            elif patch.field == "shuffled":
                # Expands in patch order, so a later explicit
                # set_sorted/set_clustered overrides the shuffle.
                for column_name in table.schema.names:
                    per_column.setdefault(column_name, []).append(
                        StatPatch(name, column_name, "sorted", False)
                    )
            else:
                if patch.column not in table.schema.names:
                    raise StatisticsError(
                        f"overlay patches unknown column "
                        f"{name}.{patch.column}; table has "
                        f"{list(table.schema.names)}"
                    )
                per_column.setdefault(patch.column, []).append(patch)
        if rows is not None:
            self._row_overrides[name] = rows
        columns = []
        for column in table.columns():
            stats = column.statistics
            if rows is not None:
                stats = replace(
                    stats,
                    count=rows,
                    distinct=min(stats.distinct, rows),
                )
            for patch in per_column.get(column.name, ()):
                if patch.field == "sorted":
                    stats = replace(
                        stats,
                        is_sorted=bool(patch.value),
                        # sorted implies clustered; a hypothetical
                        # shuffle destroys both (re-patch clustered
                        # afterwards to keep it).
                        is_clustered=bool(patch.value),
                    )
                elif patch.field == "clustered":
                    stats = replace(
                        stats,
                        is_clustered=bool(patch.value),
                        is_sorted=stats.is_sorted and bool(patch.value),
                    )
                elif patch.field == "dense":
                    stats = replace(stats, is_dense=bool(patch.value))
                elif patch.field == "distinct":
                    stats = replace(
                        stats, distinct=min(int(patch.value), stats.count)
                    )
            # Shares the backing array; only the trusted statistics differ.
            columns.append(
                Column(column.name, column.values, column.dtype, statistics=stats)
            )
        return Table(columns)

    @property
    def base(self) -> Catalog:
        """The catalog this overlay hypothesises over."""
        return self._base

    @property
    def overlay(self) -> StatisticsOverlay:
        """The overlay that produced this catalog."""
        return self._overlay

    def cardinality(self, name: str) -> int:
        if name in self._row_overrides:
            return self._row_overrides[name]
        return super().cardinality(name)
