"""A single named, typed, numpy-backed column with lazy statistics."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ColumnError
from repro.storage.dtypes import DataType
from repro.storage.statistics import ColumnStatistics, collect_statistics


class Column:
    """One column of a relation: a name, a logical type, and values.

    Columns are *logically* immutable: the backing array must not be written
    to after construction (statistics are cached on first access and would
    go stale). The convention-over-enforcement approach follows the package
    style guide; the array is exposed read-only via :attr:`values`.
    """

    __slots__ = ("_name", "_dtype", "_values", "_stats")

    def __init__(
        self,
        name: str,
        values: np.ndarray | Iterable,
        dtype: DataType | None = None,
        statistics: ColumnStatistics | None = None,
    ) -> None:
        """
        :param name: column name; must be a non-empty identifier-ish string.
        :param values: 1-D data; converted to the numpy dtype of ``dtype``.
        :param dtype: logical type; inferred from the data when omitted.
        :param statistics: precomputed statistics (trusted, not re-verified);
            pass them when the producer knows the distribution to skip a scan.
        """
        if not name or not isinstance(name, str):
            raise ColumnError(f"column name must be a non-empty string, got {name!r}")
        array = np.asarray(values)
        if array.ndim != 1:
            raise ColumnError(
                f"column {name!r} must be 1-D, got shape {array.shape}"
            )
        if dtype is None:
            dtype = DataType.from_numpy(array.dtype)
        array = np.ascontiguousarray(array, dtype=dtype.numpy_dtype)
        array.flags.writeable = False
        self._name = name
        self._dtype = dtype
        self._values = array
        self._stats = statistics

    @property
    def name(self) -> str:
        """Column name."""
        return self._name

    @property
    def dtype(self) -> DataType:
        """Logical data type."""
        return self._dtype

    @property
    def values(self) -> np.ndarray:
        """The backing (read-only) numpy array."""
        return self._values

    @property
    def statistics(self) -> ColumnStatistics:
        """Statistics of this column, computed on first access and cached."""
        if self._stats is None:
            self._stats = collect_statistics(self._values)
        return self._stats

    def memory_bytes(self) -> int:
        """Bytes held by the backing array (the memory-accounting
        protocol every storage structure, index, and operator speaks)."""
        return int(self._values.nbytes)

    def __len__(self) -> int:
        return int(self._values.size)

    def __repr__(self) -> str:
        return f"Column({self._name!r}, {self._dtype.value}, n={len(self)})"

    def renamed(self, name: str) -> "Column":
        """A view of this column under a different name (data is shared)."""
        clone = Column.__new__(Column)
        clone._name = name
        clone._dtype = self._dtype
        clone._values = self._values
        clone._stats = self._stats
        return clone

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position into a new column (statistics dropped)."""
        return Column(self._name, self._values[indices], self._dtype)

    def slice(self, start: int, stop: int) -> "Column":
        """A zero-copy contiguous slice ``[start, stop)`` of this column.

        Sortedness and density statistics do not generally survive slicing,
        so the slice starts with no cached statistics.
        """
        return Column(self._name, self._values[start:stop], self._dtype)

    def equals(self, other: "Column") -> bool:
        """Value equality: same name, logical type, and element-wise data."""
        return (
            self._name == other._name
            and self._dtype == other._dtype
            and self._values.shape == other._values.shape
            and bool(np.array_equal(self._values, other._values))
        )
