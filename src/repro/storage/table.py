"""Columnar tables (relations).

A :class:`Table` is an immutable set of equal-length :class:`Column` objects.
It is the unit of data the engine scans and the unit query results are
returned as.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ColumnError, SchemaError
from repro.storage.column import Column
from repro.storage.dtypes import DataType
from repro.storage.schema import ColumnSpec, Schema


class Table:
    """An immutable columnar relation.

    Construct via :meth:`from_arrays`, :meth:`from_rows`, or by passing
    prepared :class:`Column` objects. All columns must have equal length.
    """

    __slots__ = ("_columns", "_schema", "_num_rows")

    def __init__(self, columns: Iterable[Column]) -> None:
        columns = tuple(columns)
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            detail = {column.name: len(column) for column in columns}
            raise ColumnError(f"columns have unequal lengths: {detail}")
        self._columns = {column.name: column for column in columns}
        if len(self._columns) != len(columns):
            names = [column.name for column in columns]
            raise SchemaError(f"duplicate column names in {names}")
        self._schema = Schema(
            ColumnSpec(column.name, column.dtype) for column in columns
        )
        self._num_rows = lengths.pop() if lengths else 0

    # -- constructors --------------------------------------------------

    @classmethod
    def from_arrays(
        cls, data: Mapping[str, np.ndarray | Sequence], dtypes: Mapping[str, DataType] | None = None
    ) -> "Table":
        """Build a table from a mapping of column name to array-like.

        :param data: insertion order defines column order.
        :param dtypes: optional per-column logical types; inferred otherwise.
        """
        dtypes = dtypes or {}
        return cls(
            Column(name, values, dtypes.get(name)) for name, values in data.items()
        )

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence]) -> "Table":
        """Build a table from an iterable of row tuples matching ``schema``."""
        rows = list(rows)
        columns = []
        for position, spec in enumerate(schema):
            values = np.array(
                [row[position] for row in rows], dtype=spec.dtype.numpy_dtype
            )
            columns.append(Column(spec.name, values, spec.dtype))
        return cls(columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        return cls(
            Column(spec.name, np.empty(0, dtype=spec.dtype.numpy_dtype), spec.dtype)
            for spec in schema
        )

    # -- basic accessors -------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table's schema (column names and types, in order)."""
        return self._schema

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def column(self, name: str) -> Column:
        """The column named ``name``.

        :raises SchemaError: if absent.
        """
        if name not in self._columns:
            raise SchemaError(
                f"no column {name!r}; table has {list(self._schema.names)}"
            )
        return self._columns[name]

    def __getitem__(self, name: str) -> np.ndarray:
        """Shorthand for ``table.column(name).values``."""
        return self.column(name).values

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, num_rows={self._num_rows})"

    def columns(self) -> Iterator[Column]:
        """Iterate over the columns in schema order."""
        return iter(self._columns.values())

    def memory_bytes(self) -> int:
        """Total bytes held by all column arrays."""
        return sum(column.memory_bytes() for column in self._columns.values())

    # -- relational-ish helpers -------------------------------------------

    def project(self, names: Iterable[str]) -> "Table":
        """Keep only ``names``, in the given order (shares column data)."""
        return Table(self.column(name) for name in names)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns per ``mapping`` (absent names stay unchanged)."""
        return Table(
            column.renamed(mapping.get(column.name, column.name))
            for column in self.columns()
        )

    def qualified(self, relation: str) -> "Table":
        """All columns renamed to ``relation.column`` (for join inputs)."""
        return self.rename(
            {name: f"{relation}.{name}" for name in self._schema.names}
        )

    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position into a new table."""
        return Table(column.take(indices) for column in self.columns())

    def slice(self, start: int, stop: int) -> "Table":
        """Zero-copy contiguous row slice ``[start, stop)``."""
        start = max(0, min(start, self._num_rows))
        stop = max(start, min(stop, self._num_rows))
        return Table(column.slice(start, stop) for column in self.columns())

    def head(self, count: int = 10) -> "Table":
        """The first ``count`` rows."""
        return self.slice(0, count)

    def sort_by(self, names: Sequence[str]) -> "Table":
        """Rows sorted lexicographically by ``names`` (stable)."""
        if not names:
            return self
        # np.lexsort sorts by the *last* key first.
        keys = tuple(self[name] for name in reversed(names))
        order = np.lexsort(keys)
        return self.take(order)

    def to_rows(self) -> list[tuple]:
        """Materialise as a list of Python row tuples (small tables only)."""
        arrays = [self[name] for name in self._schema.names]
        return [tuple(array[i].item() for array in arrays) for i in range(self._num_rows)]

    def equals(self, other: "Table") -> bool:
        """Exact equality: same schema and same rows in the same order."""
        if self._schema != other._schema or self._num_rows != other._num_rows:
            return False
        return all(
            self.column(name).equals(other.column(name))
            for name in self._schema.names
        )

    def equals_unordered(self, other: "Table") -> bool:
        """Bag equality: same schema and the same multiset of rows."""
        if self._schema != other._schema or self._num_rows != other._num_rows:
            return False
        return sorted(self.to_rows()) == sorted(other.to_rows())

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width textual rendering of (at most ``limit``) rows."""
        names = list(self._schema.names)
        shown = self.head(limit).to_rows()
        cells = [[str(v) for v in row] for row in shown]
        widths = [
            max(len(names[i]), *(len(row[i]) for row in cells), 1)
            if cells
            else len(names[i])
            for i in range(len(names))
        ]
        header = " | ".join(name.ljust(w) for name, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
            for row in cells
        ]
        footer = []
        if self._num_rows > limit:
            footer.append(f"... ({self._num_rows - limit} more rows)")
        return "\n".join([header, rule, *body, *footer])
