"""The catalog: named tables plus their statistics and constraints.

Optimisers consume the catalog, never raw tables: cardinalities, column
statistics (the source of DQO plan properties), and foreign-key constraints
(which drive the join-output cardinality assumption of §4.3) all live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count

from repro.errors import SchemaError
from repro.storage.statistics import ColumnStatistics
from repro.storage.table import Table


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


#: process-unique catalog identity tokens (see :meth:`Catalog.fingerprint`).
_CATALOG_TOKENS = count(1)

#: callbacks fired after a table is unregistered: ``f(catalog, name, table)``.
#: The shared-memory column store hooks in here to release segments whose
#: backing table left the catalog (see :mod:`repro.engine.procpool`).
_unregister_observers: list = []


def add_unregister_observer(observer) -> None:
    """Register a callback invoked after every :meth:`Catalog.unregister`."""
    if observer not in _unregister_observers:
        _unregister_observers.append(observer)


def remove_unregister_observer(observer) -> None:
    """Remove a previously added unregister observer (missing is a no-op)."""
    try:
        _unregister_observers.remove(observer)
    except ValueError:
        pass


def _maybe_spill(name: str, table: Table):
    """Spill ``table`` to disk when ``REPRO_STORAGE=disk`` is active.

    Only plain in-memory tables with at least one column are spilled;
    disk-resident handles pass through (re-registering one must not
    copy it), as do degenerate column-less tables.
    """
    if not isinstance(table, Table) or table.num_columns == 0:
        return table
    from repro.storage.disk import spill_table, storage_mode

    if storage_mode() != "disk":
        return table
    return spill_table(table, name)


class Catalog:
    """A registry of named tables, with statistics and FK metadata."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._token = next(_CATALOG_TOKENS)
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumps on every registration change,
        table replacement (fresh statistics), or constraint addition."""
        return self._version

    def fingerprint(self) -> tuple[int, int]:
        """(identity token, version): stable while the catalog's contents
        are unchanged, different across catalogs and across mutations —
        the optimiser plan cache's invalidation key."""
        return (self._token, self._version)

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        """Register ``table`` under ``name``.

        Under ``REPRO_STORAGE=disk``, in-memory tables are transparently
        spilled to the spill directory and the disk-resident handle is
        registered instead — the whole engine then exercises the
        segment/buffer path without callers changing.

        :param replace: allow overwriting an existing registration.
        :raises SchemaError: if ``name`` is taken and ``replace`` is false.
        """
        if name in self._tables and not replace:
            raise SchemaError(f"table {name!r} is already registered")
        self._tables[name] = _maybe_spill(name, table)
        self._version += 1

    def register_disk(self, name: str, directory: str, replace: bool = False) -> None:
        """Register the disk-resident table stored in ``directory``.

        Opening reads only the manifest — persisted statistics make the
        table plannable without touching segment data, which is how a
        restarted service comes back warm.
        """
        from repro.storage.disk import open_table

        if name in self._tables and not replace:
            raise SchemaError(f"table {name!r} is already registered")
        self._tables[name] = open_table(directory)
        self._version += 1

    def unregister(self, name: str) -> None:
        """Remove the registration of ``name`` (missing names are an error)."""
        if name not in self._tables:
            raise SchemaError(f"no table named {name!r}")
        table = self._tables.pop(name)
        self._version += 1
        for observer in list(_unregister_observers):
            observer(self, name, table)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Table:
        """The table registered as ``name``.

        :raises SchemaError: if absent.
        """
        if name not in self._tables:
            raise SchemaError(
                f"no table named {name!r}; catalog has {sorted(self._tables)}"
            )
        return self._tables[name]

    def names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    def cardinality(self, name: str) -> int:
        """Row count of table ``name``."""
        return self.table(name).num_rows

    def column_statistics(self, table_name: str, column_name: str) -> ColumnStatistics:
        """Statistics of one column of one registered table."""
        return self.table(table_name).column(column_name).statistics

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Declare a foreign-key constraint (tables must be registered)."""
        for table_name in (fk.child_table, fk.parent_table):
            if table_name not in self._tables:
                raise SchemaError(
                    f"foreign key references unregistered table {table_name!r}"
                )
        self._foreign_keys.append(fk)
        self._version += 1

    def foreign_keys(self) -> list[ForeignKey]:
        """All declared foreign keys."""
        return list(self._foreign_keys)

    def foreign_key_between(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> ForeignKey | None:
        """The FK matching the join predicate, in either direction, if any."""
        for fk in self._foreign_keys:
            forward = (
                fk.child_table == left_table
                and fk.child_column == left_column
                and fk.parent_table == right_table
                and fk.parent_column == right_column
            )
            backward = (
                fk.child_table == right_table
                and fk.child_column == right_column
                and fk.parent_table == left_table
                and fk.parent_column == left_column
            )
            if forward or backward:
                return fk
        return None
