"""The catalog: named tables plus their statistics and constraints.

Optimisers consume the catalog, never raw tables: cardinalities, column
statistics (the source of DQO plan properties), and foreign-key constraints
(which drive the join-output cardinality assumption of §4.3) all live here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.storage.statistics import ColumnStatistics
from repro.storage.table import Table


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


class Catalog:
    """A registry of named tables, with statistics and FK metadata."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []

    def register(self, name: str, table: Table, replace: bool = False) -> None:
        """Register ``table`` under ``name``.

        :param replace: allow overwriting an existing registration.
        :raises SchemaError: if ``name`` is taken and ``replace`` is false.
        """
        if name in self._tables and not replace:
            raise SchemaError(f"table {name!r} is already registered")
        self._tables[name] = table

    def unregister(self, name: str) -> None:
        """Remove the registration of ``name`` (missing names are an error)."""
        if name not in self._tables:
            raise SchemaError(f"no table named {name!r}")
        del self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Table:
        """The table registered as ``name``.

        :raises SchemaError: if absent.
        """
        if name not in self._tables:
            raise SchemaError(
                f"no table named {name!r}; catalog has {sorted(self._tables)}"
            )
        return self._tables[name]

    def names(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._tables)

    def cardinality(self, name: str) -> int:
        """Row count of table ``name``."""
        return self.table(name).num_rows

    def column_statistics(self, table_name: str, column_name: str) -> ColumnStatistics:
        """Statistics of one column of one registered table."""
        return self.table(table_name).column(column_name).statistics

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Declare a foreign-key constraint (tables must be registered)."""
        for table_name in (fk.child_table, fk.parent_table):
            if table_name not in self._tables:
                raise SchemaError(
                    f"foreign key references unregistered table {table_name!r}"
                )
        self._foreign_keys.append(fk)

    def foreign_keys(self) -> list[ForeignKey]:
        """All declared foreign keys."""
        return list(self._foreign_keys)

    def foreign_key_between(
        self, left_table: str, left_column: str, right_table: str, right_column: str
    ) -> ForeignKey | None:
        """The FK matching the join predicate, in either direction, if any."""
        for fk in self._foreign_keys:
            forward = (
                fk.child_table == left_table
                and fk.child_column == left_column
                and fk.parent_table == right_table
                and fk.parent_column == right_column
            )
            backward = (
                fk.child_table == right_table
                and fk.child_column == right_column
                and fk.parent_table == left_table
                and fk.parent_column == left_column
            )
            if forward or backward:
                return fk
        return None
