"""Logical data types for columns.

The engine is integer-centric (the paper's experiments use 4-byte unsigned
integer grouping keys), but float payloads are supported for aggregates.
Each logical :class:`DataType` maps to exactly one numpy dtype so that the
storage layer never has to guess representations.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ColumnError


class DataType(enum.Enum):
    """Logical column type.

    The ``value`` of each member is its human-readable SQL-ish name.
    """

    INT32 = "int32"
    INT64 = "int64"
    UINT32 = "uint32"
    FLOAT64 = "float64"
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype backing this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_integer(self) -> bool:
        """True for the integral types (including BOOL is *not* integral)."""
        return self in (DataType.INT32, DataType.INT64, DataType.UINT32)

    @property
    def byte_width(self) -> int:
        """Storage width in bytes of one value."""
        return int(self.numpy_dtype.itemsize)

    @classmethod
    def from_numpy(cls, dtype: np.dtype | type) -> "DataType":
        """Map a numpy dtype back to the logical type.

        :raises ColumnError: for unsupported numpy dtypes.
        """
        dtype = np.dtype(dtype)
        for member, np_dtype in _NUMPY_DTYPES.items():
            if np_dtype == dtype:
                return member
        # Promote anything integral/floating to the widest member rather
        # than failing; exotic widths (int8, float32) are accepted inputs.
        if np.issubdtype(dtype, np.signedinteger):
            return cls.INT64
        if np.issubdtype(dtype, np.unsignedinteger):
            return cls.UINT32 if dtype.itemsize <= 4 else cls.INT64
        if np.issubdtype(dtype, np.floating):
            return cls.FLOAT64
        if dtype == np.bool_:
            return cls.BOOL
        raise ColumnError(f"unsupported numpy dtype: {dtype}")


_NUMPY_DTYPES: dict[DataType, np.dtype] = {
    DataType.INT32: np.dtype(np.int32),
    DataType.INT64: np.dtype(np.int64),
    DataType.UINT32: np.dtype(np.uint32),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.BOOL: np.dtype(np.bool_),
}
