"""A naive logical-plan evaluator.

Evaluates a logical plan directly against the catalog with straightforward
numpy operations — no algorithm choices, no optimisation, no chunking. It
is deliberately *independent* of the physical engine so that integration
tests can use it as ground truth: whatever plan the optimiser picks and
the engine runs, the result must match this evaluator's.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregates import AggregateFunction
from repro.errors import PlanError
from repro.logical.algebra import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOrderBy,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
)
from repro.storage.catalog import Catalog
from repro.storage.table import Table


def evaluate_naive(plan: LogicalPlan, catalog: Catalog) -> Table:
    """Evaluate ``plan`` against ``catalog``, the slow obvious way."""
    if isinstance(plan, LogicalScan):
        return catalog.table(plan.table_name).qualified(plan.alias)
    if isinstance(plan, LogicalFilter):
        child = evaluate_naive(plan.child, catalog)
        mask = np.asarray(
            plan.predicate.evaluate(
                {name: child[name] for name in child.schema.names}
            ),
            dtype=bool,
        )
        return child.take(np.flatnonzero(mask))
    if isinstance(plan, LogicalProject):
        child = evaluate_naive(plan.child, catalog)
        data = {name: child[name] for name in child.schema.names}
        return Table.from_arrays(
            {
                alias: np.asarray(expression.evaluate(data))
                for alias, expression in plan.outputs
            }
        )
    if isinstance(plan, LogicalJoin):
        return _naive_join(plan, catalog)
    if isinstance(plan, LogicalGroupBy):
        return _naive_group_by(plan, catalog)
    if isinstance(plan, LogicalOrderBy):
        child = evaluate_naive(plan.child, catalog)
        return child.sort_by(list(plan.keys))
    if isinstance(plan, LogicalLimit):
        child = evaluate_naive(plan.child, catalog)
        return child.head(plan.count)
    raise PlanError(f"naive evaluator: unknown node {type(plan).__name__}")


def _naive_join(plan: LogicalJoin, catalog: Catalog) -> Table:
    left = evaluate_naive(plan.left, catalog)
    right = evaluate_naive(plan.right, catalog)
    left_keys = left[plan.left_key]
    right_keys = right[plan.right_key]
    # O(n log n) double-sort nested expansion; order-insensitive output.
    left_pairs = []
    right_pairs = []
    right_by_key: dict[int, list[int]] = {}
    for row, key in enumerate(right_keys.tolist()):
        right_by_key.setdefault(key, []).append(row)
    for left_row, key in enumerate(left_keys.tolist()):
        for right_row in right_by_key.get(key, ()):
            left_pairs.append(left_row)
            right_pairs.append(right_row)
    data = {}
    left_idx = np.asarray(left_pairs, dtype=np.int64)
    right_idx = np.asarray(right_pairs, dtype=np.int64)
    for name in left.schema.names:
        data[name] = left[name][left_idx]
    for name in right.schema.names:
        data[name] = right[name][right_idx]
    return Table.from_arrays(data)


def _naive_group_by(plan: LogicalGroupBy, catalog: Catalog) -> Table:
    child = evaluate_naive(plan.child, catalog)
    keys = child[plan.key]
    groups: dict[int, list[int]] = {}
    for row, key in enumerate(keys.tolist()):
        groups.setdefault(key, []).append(row)
    group_keys = sorted(groups)
    data: dict[str, np.ndarray] = {
        plan.key: np.asarray(group_keys, dtype=keys.dtype)
    }
    for spec in plan.aggregates:
        values = child[spec.column] if spec.column is not None else None
        outputs = []
        for key in group_keys:
            rows = groups[key]
            if spec.function is AggregateFunction.COUNT:
                outputs.append(len(rows))
            elif spec.function is AggregateFunction.SUM:
                outputs.append(values[rows].sum())
            elif spec.function is AggregateFunction.MIN:
                outputs.append(values[rows].min())
            elif spec.function is AggregateFunction.MAX:
                outputs.append(values[rows].max())
            elif spec.function is AggregateFunction.AVG:
                outputs.append(float(values[rows].mean()))
            else:
                raise PlanError(f"unknown aggregate {spec.function!r}")
        data[spec.alias] = np.asarray(outputs)
    return Table.from_arrays(data)
