"""Logical algebra: the optimiser's input language.

A logical plan is a DAG of coarse *what*-operators (scan, filter, project,
join, group-by) with no *how* decisions — the paper's Figure 3(a) level.
Both SQO and DQO consume these trees; they differ in how finely they
decompose each node on the way down to a physical plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.aggregates import AggregateSpec
from repro.engine.expressions import Expression
from repro.errors import PlanError
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema


class LogicalPlan:
    """Base class of logical plan nodes. Immutable."""

    def children(self) -> list["LogicalPlan"]:
        """Child nodes in input order."""
        raise NotImplementedError

    def output_columns(self, catalog: Catalog) -> list[str]:
        """Names of the columns this node produces, resolved against
        ``catalog``."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Indented textual rendering of the subtree."""
        lines = [f"{'  ' * indent}{self.describe()}"]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line description used by :meth:`explain`."""
        return type(self).__name__

    def walk(self) -> Iterator["LogicalPlan"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class LogicalScan(LogicalPlan):
    """Scan a base table; output columns are qualified ``alias.column``."""

    table_name: str
    #: qualification prefix; defaults to the table name.
    alias: str = ""

    def __post_init__(self) -> None:
        if not self.alias:
            object.__setattr__(self, "alias", self.table_name)

    def children(self) -> list[LogicalPlan]:
        return []

    def output_columns(self, catalog: Catalog) -> list[str]:
        schema = catalog.table(self.table_name).schema
        return [f"{self.alias}.{name}" for name in schema.names]

    def describe(self) -> str:
        if self.alias != self.table_name:
            return f"Scan({self.table_name} AS {self.alias})"
        return f"Scan({self.table_name})"


@dataclass(frozen=True)
class LogicalFilter(LogicalPlan):
    """Keep rows satisfying a boolean expression."""

    child: LogicalPlan
    predicate: Expression

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_columns(self, catalog: Catalog) -> list[str]:
        return self.child.output_columns(catalog)

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass(frozen=True)
class LogicalProject(LogicalPlan):
    """Evaluate named expressions; ``outputs`` are (alias, expression)."""

    child: LogicalPlan
    outputs: tuple[tuple[str, Expression], ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_columns(self, catalog: Catalog) -> list[str]:
        return [alias for alias, __ in self.outputs]

    def describe(self) -> str:
        inner = ", ".join(f"{e!r} AS {a}" for a, e in self.outputs)
        return f"Project({inner})"


@dataclass(frozen=True)
class LogicalJoin(LogicalPlan):
    """Inner equi-join on one column pair."""

    left: LogicalPlan
    right: LogicalPlan
    left_key: str
    right_key: str

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def output_columns(self, catalog: Catalog) -> list[str]:
        left_cols = self.left.output_columns(catalog)
        right_cols = self.right.output_columns(catalog)
        overlap = set(left_cols) & set(right_cols)
        if overlap:
            raise PlanError(
                f"join children share column name(s): {sorted(overlap)}"
            )
        return left_cols + right_cols

    def describe(self) -> str:
        return f"Join({self.left_key} = {self.right_key})"


@dataclass(frozen=True)
class LogicalGroupBy(LogicalPlan):
    """Γ: group by one key column, compute aggregates — Figure 3(a)."""

    child: LogicalPlan
    key: str
    aggregates: tuple[AggregateSpec, ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_columns(self, catalog: Catalog) -> list[str]:
        return [self.key] + [spec.alias for spec in self.aggregates]

    def describe(self) -> str:
        aggs = ", ".join(
            f"{s.function.value.upper()}({s.column or '*'}) AS {s.alias}"
            for s in self.aggregates
        )
        return f"GroupBy(key={self.key}, [{aggs}])"


@dataclass(frozen=True)
class LogicalOrderBy(LogicalPlan):
    """Sort the final result by the given columns (ascending)."""

    child: LogicalPlan
    keys: tuple[str, ...]

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_columns(self, catalog: Catalog) -> list[str]:
        return self.child.output_columns(catalog)

    def describe(self) -> str:
        return f"OrderBy({', '.join(self.keys)})"


@dataclass(frozen=True)
class LogicalLimit(LogicalPlan):
    """Keep at most ``count`` rows."""

    child: LogicalPlan
    count: int

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def output_columns(self, catalog: Catalog) -> list[str]:
        return self.child.output_columns(catalog)

    def describe(self) -> str:
        return f"Limit({self.count})"


def validate_plan(plan: LogicalPlan, catalog: Catalog) -> None:
    """Structural validation: every referenced column must exist.

    :raises PlanError: on the first unresolved reference.
    """
    for node in plan.walk():
        if isinstance(node, LogicalFilter):
            available = set(node.child.output_columns(catalog))
            missing = node.predicate.referenced_columns() - available
            if missing:
                raise PlanError(f"filter references unknown: {sorted(missing)}")
        elif isinstance(node, LogicalProject):
            available = set(node.child.output_columns(catalog))
            for alias, expression in node.outputs:
                missing = expression.referenced_columns() - available
                if missing:
                    raise PlanError(
                        f"projection {alias!r} references unknown: "
                        f"{sorted(missing)}"
                    )
        elif isinstance(node, LogicalJoin):
            left_cols = set(node.left.output_columns(catalog))
            right_cols = set(node.right.output_columns(catalog))
            if node.left_key not in left_cols:
                raise PlanError(f"join key {node.left_key!r} not in left input")
            if node.right_key not in right_cols:
                raise PlanError(f"join key {node.right_key!r} not in right input")
        elif isinstance(node, LogicalGroupBy):
            available = set(node.child.output_columns(catalog))
            if node.key not in available:
                raise PlanError(f"grouping key {node.key!r} unknown")
            for spec in node.aggregates:
                if spec.column is not None and spec.column not in available:
                    raise PlanError(
                        f"aggregate column {spec.column!r} unknown"
                    )
        elif isinstance(node, LogicalOrderBy):
            available = set(node.child.output_columns(catalog))
            for key in node.keys:
                if key not in available:
                    raise PlanError(f"order-by key {key!r} unknown")
