"""Logical plans and a naive reference evaluator."""

from repro.logical.algebra import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOrderBy,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    validate_plan,
)
from repro.logical.naive import evaluate_naive

__all__ = [
    "LogicalFilter",
    "LogicalGroupBy",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalOrderBy",
    "LogicalPlan",
    "LogicalProject",
    "LogicalScan",
    "evaluate_naive",
    "validate_plan",
]
