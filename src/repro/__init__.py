"""Deep Query Optimisation (DQO) — a reproduction of Dittrich & Nix,
"The Case for Deep Query Optimisation", CIDR 2020.

Quick tour of the public API::

    from repro import (
        # data + catalog
        Table, Catalog, make_grouping_dataset, make_join_scenario,
        # the five grouping / join implementation families (§4.1, Table 2)
        GroupingAlgorithm, JoinAlgorithm, group_by, join,
        # SQL -> logical plan
        plan_query,
        # the unified optimiser: shallow (SQO) and deep (DQO) configs (§4.3)
        optimize_sqo, optimize_dqo, to_operator, execute,
        # algorithmic views (§3)
        AVRegistry, ViewKind, materialize_view, greedy_avsp,
    )

See README.md for a quickstart and DESIGN.md for the architecture map.
"""

from repro.avs import (
    AVRegistry,
    AdaptiveIndexView,
    AlgorithmicView,
    PartialAlgorithmicView,
    ViewKind,
    bind_offline,
    enumerate_candidates,
    exhaustive_avsp,
    greedy_avsp,
    materialize_view,
    workload_cost,
)
from repro.core import (
    CalibratedCostModel,
    Correlations,
    DynamicProgrammingOptimizer,
    Granularity,
    Granule,
    OptimizationResult,
    OptimizerConfig,
    PaperCostModel,
    PhysicalNode,
    PropertyVector,
    SearchStats,
    dqo_config,
    enumerate_recipes,
    logical_grouping,
    logical_join,
    optimize_dqo,
    optimize_greedy,
    optimize_sqo,
    render_table1,
    sqo_config,
    to_operator,
)
from repro.datagen import (
    Density,
    Sortedness,
    figure4_datasets,
    make_grouping_dataset,
    make_join_scenario,
    make_workload,
)
from repro.engine import (
    GroupingAlgorithm,
    JoinAlgorithm,
    col,
    count_star,
    execute,
    explain_analyze,
    group_by,
    join,
    sum_of,
)
from repro.obs import (
    FeedbackStore,
    MetricsRegistry,
    QueryLog,
    QueryProfile,
    Tracer,
    capture_observability,
    capture_profile,
    disable_observability,
    enable_observability,
    get_metrics,
    get_query_log,
    get_tracer,
    set_query_log,
)
from repro.logical import evaluate_naive
from repro.sql import parse, plan_query
from repro.storage import Catalog, Column, DataType, Schema, Table

__version__ = "1.0.0"

__all__ = [
    "AVRegistry",
    "AdaptiveIndexView",
    "AlgorithmicView",
    "CalibratedCostModel",
    "Catalog",
    "Column",
    "Correlations",
    "DataType",
    "Density",
    "DynamicProgrammingOptimizer",
    "FeedbackStore",
    "Granularity",
    "Granule",
    "GroupingAlgorithm",
    "JoinAlgorithm",
    "MetricsRegistry",
    "OptimizationResult",
    "OptimizerConfig",
    "PaperCostModel",
    "PartialAlgorithmicView",
    "PhysicalNode",
    "PropertyVector",
    "QueryLog",
    "QueryProfile",
    "Schema",
    "SearchStats",
    "Sortedness",
    "Table",
    "Tracer",
    "ViewKind",
    "bind_offline",
    "capture_observability",
    "capture_profile",
    "col",
    "count_star",
    "disable_observability",
    "dqo_config",
    "enable_observability",
    "enumerate_candidates",
    "enumerate_recipes",
    "evaluate_naive",
    "execute",
    "exhaustive_avsp",
    "explain_analyze",
    "figure4_datasets",
    "get_metrics",
    "get_query_log",
    "get_tracer",
    "greedy_avsp",
    "group_by",
    "join",
    "logical_grouping",
    "logical_join",
    "make_grouping_dataset",
    "make_join_scenario",
    "make_workload",
    "materialize_view",
    "optimize_dqo",
    "optimize_greedy",
    "optimize_sqo",
    "parse",
    "plan_query",
    "render_table1",
    "set_query_log",
    "sqo_config",
    "sum_of",
    "to_operator",
    "workload_cost",
]
