"""Sorted-array index with binary search.

The substrate of the paper's BSG / BSJ algorithms (§4.1): *"We store a
mapping from grouping key to aggregate data inside a sorted array. This
allows us to perform binary search to lookup a group by its key."* Lookups
cost O(log #keys) per probe — the logarithmic growth visible in Figure 4.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_, PreconditionError


class SortedKeyIndex:
    """An immutable sorted array of distinct keys with O(log n) lookups.

    Keys map to dense slot ids equal to their rank, so the slot order is
    simultaneously the sorted key order — a *property* (sorted output!)
    the deep optimiser can exploit downstream.
    """

    def __init__(self, sorted_keys: np.ndarray) -> None:
        """
        :param sorted_keys: strictly increasing distinct keys.
        :raises PreconditionError: if not strictly increasing.
        """
        keys = np.ascontiguousarray(sorted_keys, dtype=np.int64)
        if keys.size > 1 and not bool(np.all(keys[:-1] < keys[1:])):
            raise PreconditionError(
                "SortedKeyIndex requires strictly increasing distinct keys"
            )
        self._keys = keys

    @classmethod
    def from_values(cls, values: np.ndarray) -> "SortedKeyIndex":
        """Build from arbitrary values by sorting and deduplicating."""
        return cls(np.unique(np.asarray(values, dtype=np.int64)))

    @property
    def num_keys(self) -> int:
        """Number of indexed distinct keys."""
        return int(self._keys.size)

    def memory_bytes(self) -> int:
        """Bytes held by the sorted key array."""
        return int(self._keys.nbytes)

    def keys(self) -> np.ndarray:
        """The sorted distinct keys (read-only view)."""
        view = self._keys.view()
        view.flags.writeable = False
        return view

    def lookup(self, probes: np.ndarray) -> np.ndarray:
        """Binary-search ``probes``; returns slot ids, -1 for misses."""
        probes = np.asarray(probes, dtype=np.int64)
        positions = np.searchsorted(self._keys, probes)
        slots = np.where(
            (positions < self._keys.size)
            & (self._keys[np.minimum(positions, self._keys.size - 1)] == probes),
            positions,
            -1,
        )
        return slots.astype(np.int64)

    def lookup_existing(self, probes: np.ndarray) -> np.ndarray:
        """Like :meth:`lookup` but every probe must hit.

        :raises IndexError_: if any probe misses.
        """
        slots = self.lookup(probes)
        if slots.size and int(slots.min()) < 0:
            missing = np.asarray(probes)[slots < 0]
            raise IndexError_(
                f"{missing.size} probe key(s) not in index, e.g. "
                f"{missing[:5].tolist()}"
            )
        return slots

    def range_slots(self, low: int, high: int) -> tuple[int, int]:
        """Slot range ``[start, stop)`` of keys in the value range
        ``[low, high]`` (inclusive on both ends)."""
        start = int(np.searchsorted(self._keys, low, side="left"))
        stop = int(np.searchsorted(self._keys, high, side="right"))
        return start, stop
