"""Adaptive database cracking.

Section 6 (Runtime-Adaptivity): *"in traditional indexing, for each column,
the decision whether to create an index is binary. What if we make that
decision continuous? ... That is the core idea of adaptive indexing
[Kersten et al., CIDR 2005; Schuhknecht et al., PVLDB 2013]. ... In the DQO
universe a (meta-)adaptive index is simply a partial AV where some
optimisation decisions have been delegated to query time."*

:class:`CrackedColumn` implements standard two-sided cracking: every range
query partitions ("cracks") exactly the pieces it touches, so the column
converges towards sorted as a side effect of the workload. It backs the
adaptive partial AV in :mod:`repro.avs.adaptive`.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import IndexError_


class CrackedColumn:
    """A column that incrementally partitions itself under range queries.

    Invariant: the cracker index maps pivot values to positions such that
    every element left of ``position(p)`` is ``< p`` and every element at or
    right of it is ``>= p``. :meth:`check_invariants` verifies this.
    """

    def __init__(self, values: np.ndarray) -> None:
        self._values = np.array(values, dtype=np.int64)  # private working copy
        #: sorted pivot values with their partition positions.
        self._pivots: list[int] = []
        self._positions: list[int] = []
        self._crack_count = 0

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self._values.size)

    @property
    def num_pieces(self) -> int:
        """Number of partitions the column is currently cracked into."""
        return len(self._pivots) + 1

    @property
    def crack_count(self) -> int:
        """Total partitioning operations performed so far (work measure)."""
        return self._crack_count

    def memory_bytes(self) -> int:
        """Bytes held by the working copy plus the cracker index
        (pivot/position pairs, 8 bytes each)."""
        return int(self._values.nbytes) + len(self._pivots) * 16

    def values(self) -> np.ndarray:
        """Current physical order of the values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def range_query(self, low: int, high: int) -> np.ndarray:
        """All values in ``[low, high]``, cracking on both bounds.

        After the call, ``low`` and ``high + 1`` are pivots and the matching
        values are physically contiguous — the index got better by being
        queried, the defining behaviour of adaptive indexing.
        """
        if high < low:
            return np.empty(0, dtype=np.int64)
        start = self._crack(low)
        stop = self._crack(high + 1)
        return self._values[start:stop].copy()

    def is_fully_sorted(self) -> bool:
        """True once enough cracks accumulated to leave every piece trivial
        or the data happens to be in sorted order."""
        return bool(
            np.all(self._values[:-1] <= self._values[1:])
        ) if self._values.size > 1 else True

    def sortedness_fraction(self) -> float:
        """Fraction of adjacent pairs already in non-decreasing order —
        a cheap convergence measure for the adaptive-AV benchmarks."""
        if self._values.size <= 1:
            return 1.0
        ordered = np.count_nonzero(self._values[:-1] <= self._values[1:])
        return float(ordered) / (self._values.size - 1)

    def check_invariants(self) -> None:
        """Verify the cracker-index invariant.

        :raises IndexError_: on violation.
        """
        if self._positions != sorted(self._positions):
            raise IndexError_("cracker positions are not monotone")
        for pivot, position in zip(self._pivots, self._positions):
            left = self._values[:position]
            right = self._values[position:]
            if left.size and int(left.max()) >= pivot:
                raise IndexError_(
                    f"value >= pivot {pivot} found left of position {position}"
                )
            if right.size and int(right.min()) < pivot:
                raise IndexError_(
                    f"value < pivot {pivot} found right of position {position}"
                )

    def _crack(self, pivot: int) -> int:
        """Ensure ``pivot`` partitions the array; return its position."""
        index = bisect.bisect_left(self._pivots, pivot)
        if index < len(self._pivots) and self._pivots[index] == pivot:
            return self._positions[index]
        # The piece containing the pivot's future position:
        piece_start = self._positions[index - 1] if index > 0 else 0
        piece_stop = (
            self._positions[index] if index < len(self._positions) else self.size
        )
        piece = self._values[piece_start:piece_stop]
        smaller = piece < pivot
        position = piece_start + int(np.count_nonzero(smaller))
        # Stable two-way partition of just this piece.
        self._values[piece_start:piece_stop] = np.concatenate(
            [piece[smaller], piece[~smaller]]
        )
        self._pivots.insert(index, pivot)
        self._positions.insert(index, position)
        self._crack_count += 1
        return position
