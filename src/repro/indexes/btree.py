"""An in-memory B+-tree.

The paper's very first example of a physical decision is the access method:
*"unclustered B-tree vs scan"* (§1), and the research agenda (§6,
Algorithmic Index Views) points out that *"most indexes are basically
composed of substructures (atoms), i.e. different nodes and leaf-types"*.
This B+-tree makes that composition explicit: inner nodes and leaves are
distinct classes, and the node fanout is a constructor parameter — the
MOLECULE-level decision an AV can bind offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import IndexError_


@dataclass
class _LeafNode:
    """A leaf: sorted keys with parallel values, linked to the next leaf."""

    keys: list[int] = field(default_factory=list)
    values: list[object] = field(default_factory=list)
    next_leaf: "_LeafNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass
class _InnerNode:
    """An inner node: separator keys with ``len(keys) + 1`` children."""

    keys: list[int] = field(default_factory=list)
    children: list[object] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """A B+-tree mapping int keys to values, supporting range scans.

    :param order: maximum number of keys per node (fanout - 1); >= 3.
    """

    def __init__(self, order: int = 64) -> None:
        if order < 3:
            raise IndexError_(f"order must be >= 3, got {order}")
        self._order = order
        self._root: _LeafNode | _InnerNode = _LeafNode()
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def order(self) -> int:
        """Maximum keys per node."""
        return self._order

    @property
    def height(self) -> int:
        """Number of levels (1 for a lone leaf)."""
        return self._height

    def memory_bytes(self) -> int:
        """Estimated bytes of the node structure: 8 per key/value/child
        slot plus a nominal 64 per node — the substructure ("different
        nodes and leaf-types", §6) an AV could account per atom."""
        total = 0
        stack: list[object] = [self._root]
        while stack:
            node = stack.pop()
            total += 64 + len(node.keys) * 8
            if node.is_leaf:
                total += len(node.values) * 8
            else:
                total += len(node.children) * 8
                stack.extend(node.children)
        return total

    # -- mutation -------------------------------------------------------

    def insert(self, key: int, value: object) -> None:
        """Insert ``key`` -> ``value``; an existing key is overwritten."""
        split = self._insert(self._root, int(key), value)
        if split is not None:
            separator, right = split
            new_root = _InnerNode(keys=[separator], children=[self._root, right])
            self._root = new_root
            self._height += 1

    def bulkload(self, keys: np.ndarray, values: list | np.ndarray) -> None:
        """Bulk-load sorted distinct ``keys`` into an *empty* tree.

        Builds leaves left-to-right at ~full occupancy then stacks inner
        levels — the classic bottom-up bulkloading algorithm, i.e. the
        "bulkload" granule of the paper's Figure 3(c).

        :raises IndexError_: if the tree is non-empty or keys unsorted.
        """
        if self._size:
            raise IndexError_("bulkload requires an empty tree")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size > 1 and not bool(np.all(keys[:-1] < keys[1:])):
            raise IndexError_("bulkload requires strictly increasing keys")
        if keys.size == 0:
            return
        per_leaf = self._order
        leaves: list[_LeafNode] = []
        for start in range(0, keys.size, per_leaf):
            stop = min(start + per_leaf, keys.size)
            leaf = _LeafNode(
                keys=[int(k) for k in keys[start:stop]],
                values=list(values[start:stop]),
            )
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        self._size = int(keys.size)
        level: list[_LeafNode | _InnerNode] = list(leaves)
        self._height = 1
        while len(level) > 1:
            parents: list[_InnerNode] = []
            per_inner = self._order + 1  # children per inner node
            for start in range(0, len(level), per_inner):
                group = level[start : start + per_inner]
                parents.append(
                    _InnerNode(
                        keys=[self._smallest_key(child) for child in group[1:]],
                        children=list(group),
                    )
                )
            level = list(parents)
            self._height += 1
        self._root = level[0]

    # -- queries -------------------------------------------------------

    def get(self, key: int, default: object = None) -> object:
        """Point lookup."""
        leaf = self._descend(int(key))
        position = self._position(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return leaf.values[position]
        return default

    def __contains__(self, key: int) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def range(self, low: int, high: int) -> Iterator[tuple[int, object]]:
        """Yield (key, value) for keys in ``[low, high]``, key-ascending."""
        leaf: _LeafNode | None = self._descend(int(low))
        while leaf is not None:
            for position, key in enumerate(leaf.keys):
                if key > high:
                    return
                if key >= low:
                    yield key, leaf.values[position]
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[int, object]]:
        """All (key, value) pairs in key order (leaf-chain scan)."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: _LeafNode | None = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def check_invariants(self) -> None:
        """Assert structural invariants; raises :class:`IndexError_` on
        violation. Used by the property-based tests."""
        keys = [key for key, __ in self.items()]
        if keys != sorted(keys):
            raise IndexError_("leaf chain is not key-ordered")
        if len(set(keys)) != len(keys):
            raise IndexError_("duplicate keys in leaf chain")
        if len(keys) != self._size:
            raise IndexError_(
                f"size mismatch: counted {len(keys)}, recorded {self._size}"
            )
        self._check_node(self._root, depth=1)

    # -- internals -------------------------------------------------------

    def _check_node(self, node: _LeafNode | _InnerNode, depth: int) -> int:
        if node.is_leaf:
            if depth != self._height:
                raise IndexError_("leaves at unequal depths")
            return depth
        inner: _InnerNode = node  # type: ignore[assignment]
        if len(inner.children) != len(inner.keys) + 1:
            raise IndexError_("inner node child/key arity mismatch")
        for child in inner.children:
            self._check_node(child, depth + 1)
        return depth

    @staticmethod
    def _position(keys: list[int], key: int) -> int:
        # Binary search for the first position with keys[pos] >= key.
        low, high = 0, len(keys)
        while low < high:
            mid = (low + high) // 2
            if keys[mid] < key:
                low = mid + 1
            else:
                high = mid
        return low

    def _descend(self, key: int) -> _LeafNode:
        node = self._root
        while not node.is_leaf:
            inner: _InnerNode = node  # type: ignore[assignment]
            position = self._child_position(inner.keys, key)
            node = inner.children[position]
        return node  # type: ignore[return-value]

    @staticmethod
    def _child_position(keys: list[int], key: int) -> int:
        # First child whose subtree may contain `key`: count separators <= key.
        low, high = 0, len(keys)
        while low < high:
            mid = (low + high) // 2
            if keys[mid] <= key:
                low = mid + 1
            else:
                high = mid
        return low

    def _smallest_key(self, node: _LeafNode | _InnerNode) -> int:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def _insert(
        self, node: _LeafNode | _InnerNode, key: int, value: object
    ) -> tuple[int, object] | None:
        """Insert below ``node``; returns (separator, new right sibling) when
        ``node`` split, else None."""
        if node.is_leaf:
            leaf: _LeafNode = node  # type: ignore[assignment]
            position = self._position(leaf.keys, key)
            if position < len(leaf.keys) and leaf.keys[position] == key:
                leaf.values[position] = value
                return None
            leaf.keys.insert(position, key)
            leaf.values.insert(position, value)
            self._size += 1
            if len(leaf.keys) <= self._order:
                return None
            middle = len(leaf.keys) // 2
            right = _LeafNode(
                keys=leaf.keys[middle:],
                values=leaf.values[middle:],
                next_leaf=leaf.next_leaf,
            )
            del leaf.keys[middle:]
            del leaf.values[middle:]
            leaf.next_leaf = right
            return right.keys[0], right

        inner: _InnerNode = node  # type: ignore[assignment]
        position = self._child_position(inner.keys, key)
        split = self._insert(inner.children[position], key, value)
        if split is None:
            return None
        separator, right_child = split
        inner.keys.insert(position, separator)
        inner.children.insert(position + 1, right_child)
        if len(inner.keys) <= self._order:
            return None
        middle = len(inner.keys) // 2
        push_up = inner.keys[middle]
        right = _InnerNode(
            keys=inner.keys[middle + 1 :],
            children=inner.children[middle + 1 :],
        )
        del inner.keys[middle:]
        del inner.children[middle + 1 :]
        return push_up, right


class _Missing:
    """Internal sentinel distinct from any user value."""


_MISSING = _Missing()
