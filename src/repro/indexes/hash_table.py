"""Hash tables.

Two implementations at two granularity levels of Table 1:

* :class:`ChainedHashTable` — the textbook "out-of-the-box hash table"
  (the paper's HG uses ``std::unordered_map``, which is chained); a
  tuple-at-a-time Python structure kept for pedagogy and correctness tests.
* :class:`OpenAddressingHashTable` — a vectorised linear-probing table over
  numpy arrays; this is what the benchmarked HG/HJ kernels use so that all
  five algorithm families are compared at the same (batch) abstraction
  level (DESIGN.md substitution #1).

Both use the Murmur3 finaliser as the hash function, as in §4.1. The choice
of table *and* of hash function are exactly the MOLECULE-level decisions
(Table 1) that DQO exposes to the optimiser; see
:mod:`repro.core.physiological`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import IndexError_

#: Multiplicative constants of the 64-bit Murmur3 finaliser.
_MURMUR3_C1 = np.uint64(0xFF51AFD7ED558CCD)
_MURMUR3_C2 = np.uint64(0xC4CEB9FE1A85EC53)


def murmur3_finalizer(keys: np.ndarray | int) -> np.ndarray | int:
    """The 64-bit Murmur3 finaliser (fmix64), scalar or vectorised.

    This is the hash function the paper's HG implementation uses. It is a
    bijective mixer on 64-bit integers, so it is collision-free on the key
    domain and spreads dense keys over the full 64-bit space.
    """
    scalar = np.isscalar(keys)
    h = np.asarray(keys).astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        h ^= h >> np.uint64(33)
        h *= _MURMUR3_C1
        h ^= h >> np.uint64(33)
        h *= _MURMUR3_C2
        h ^= h >> np.uint64(33)
    return int(h) if scalar else h


def identity_hash(keys: np.ndarray | int) -> np.ndarray | int:
    """The identity "hash" — the degenerate molecule choice.

    Cheap but catastrophic on clustered key distributions; kept so the
    deep optimiser has a real hash-function decision to make.
    """
    if np.isscalar(keys):
        return int(keys)
    return np.asarray(keys).astype(np.uint64, copy=False)


#: Named hash functions available to the MOLECULE-level optimiser choice.
HASH_FUNCTIONS = {
    "murmur3": murmur3_finalizer,
    "identity": identity_hash,
}


class ChainedHashTable:
    """A separate-chaining hash table mapping int keys to Python values.

    Mirrors ``std::unordered_map`` structurally: an array of buckets, each
    a list of (key, value) pairs. Grows by doubling at load factor 1.0.
    """

    def __init__(self, initial_buckets: int = 16, hash_name: str = "murmur3") -> None:
        if initial_buckets < 1:
            raise IndexError_(
                f"initial_buckets must be >= 1, got {initial_buckets}"
            )
        if hash_name not in HASH_FUNCTIONS:
            raise IndexError_(
                f"unknown hash function {hash_name!r}; "
                f"have {sorted(HASH_FUNCTIONS)}"
            )
        self._hash = HASH_FUNCTIONS[hash_name]
        self._num_buckets = initial_buckets
        self._buckets: list[list[tuple[int, object]]] = [
            [] for __ in range(initial_buckets)
        ]
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not None

    @property
    def load_factor(self) -> float:
        """Entries per bucket."""
        return self._size / self._num_buckets

    def insert(self, key: int, value: object) -> None:
        """Insert or overwrite the entry for ``key``."""
        bucket = self._bucket_of(key)
        for position, (existing, __) in enumerate(bucket):
            if existing == key:
                bucket[position] = (key, value)
                return
        bucket.append((key, value))
        self._size += 1
        if self._size > self._num_buckets:
            self._grow()

    def probe(self, key: int) -> object:
        """The value stored under ``key``.

        :raises KeyError: if absent.
        """
        found = self._find(key)
        if found is None:
            raise KeyError(key)
        return found

    def get(self, key: int, default: object = None) -> object:
        """The value stored under ``key``, or ``default`` if absent."""
        found = self._find(key)
        return default if found is None else found

    def memory_bytes(self) -> int:
        """Estimated bytes of the chained structure: 8 per bucket pointer
        plus a nominal 24 per (key, value) entry — chaining's per-entry
        node overhead, the Table 1 cost SPH avoids."""
        return self._num_buckets * 8 + self._size * 24

    def key_set(self) -> Iterator[int]:
        """Iterate over all keys in (hash-table) bucket order.

        The iteration order is an artefact of the hash function and table
        size — exactly the "unknown order" the paper warns a blackbox hash
        table imposes on grouping output (§2.1).
        """
        for bucket in self._buckets:
            for key, __ in bucket:
                yield key

    def items(self) -> Iterator[tuple[int, object]]:
        """Iterate over (key, value) pairs in bucket order."""
        for bucket in self._buckets:
            yield from bucket

    def _bucket_of(self, key: int) -> list[tuple[int, object]]:
        return self._buckets[self._hash(key) % self._num_buckets]

    def _find(self, key: int) -> object | None:
        for existing, value in self._bucket_of(key):
            if existing == key:
                return value
        return None

    def _grow(self) -> None:
        old_buckets = self._buckets
        self._num_buckets *= 2
        self._buckets = [[] for __ in range(self._num_buckets)]
        for bucket in old_buckets:
            for key, value in bucket:
                self._bucket_of(key).append((key, value))


class OpenAddressingHashTable:
    """A vectorised linear-probing hash table over int64 keys.

    Designed for *batch* build and probe: both operations take whole numpy
    arrays and resolve collisions in vectorised probing rounds. The table
    maps each distinct key to a dense slot id ``0..num_keys-1`` (assigned
    at build time); callers keep their per-slot aggregate state in plain
    arrays indexed by slot id.

    :param capacity_hint: expected number of *distinct* keys. The table
        allocates ``capacity_hint / max_load`` buckets rounded up to a
        power of two.
    :param max_load: maximum load factor before the constructor widens
        the allocation.
    :param hash_name: one of :data:`HASH_FUNCTIONS`.
    """

    #: sentinel marking an empty bucket.
    _EMPTY = np.int64(-1)

    def __init__(
        self,
        capacity_hint: int,
        max_load: float = 0.5,
        hash_name: str = "murmur3",
    ) -> None:
        if capacity_hint < 1:
            raise IndexError_(
                f"capacity_hint must be >= 1, got {capacity_hint}"
            )
        if not 0.0 < max_load < 1.0:
            raise IndexError_(f"max_load must be in (0, 1), got {max_load}")
        if hash_name not in HASH_FUNCTIONS:
            raise IndexError_(
                f"unknown hash function {hash_name!r}; "
                f"have {sorted(HASH_FUNCTIONS)}"
            )
        self._hash = HASH_FUNCTIONS[hash_name]
        buckets = 1
        while buckets * max_load < capacity_hint:
            buckets *= 2
        self._mask = np.uint64(buckets - 1)
        self._bucket_keys = np.full(buckets, self._EMPTY, dtype=np.int64)
        self._bucket_slots = np.full(buckets, self._EMPTY, dtype=np.int64)
        self._num_slots = 0
        self._slot_keys = np.empty(capacity_hint, dtype=np.int64)

    @classmethod
    def from_state(
        cls,
        hash_name: str,
        bucket_keys: np.ndarray,
        bucket_slots: np.ndarray,
        slot_keys: np.ndarray,
        num_slots: int,
    ) -> "OpenAddressingHashTable":
        """Reassemble a built table around existing arrays without copying.

        Process workers use this to probe a build side whose bucket and
        slot arrays live in shared memory: the parent builds once, ships
        the array views, and every worker probes the same physical table.
        The arrays are used as-is (they may be read-only views).
        """
        if hash_name not in HASH_FUNCTIONS:
            raise IndexError_(
                f"unknown hash function {hash_name!r}; "
                f"have {sorted(HASH_FUNCTIONS)}"
            )
        table = cls.__new__(cls)
        table._hash = HASH_FUNCTIONS[hash_name]
        table._mask = np.uint64(bucket_keys.size - 1)
        table._bucket_keys = bucket_keys
        table._bucket_slots = bucket_slots
        table._slot_keys = slot_keys
        table._num_slots = int(num_slots)
        return table

    @property
    def num_buckets(self) -> int:
        """Allocated bucket count (a power of two)."""
        return int(self._bucket_keys.size)

    @property
    def num_keys(self) -> int:
        """Number of distinct keys inserted so far."""
        return self._num_slots

    def slot_keys(self) -> np.ndarray:
        """Key of each slot, indexed by slot id (insertion order)."""
        return self._slot_keys[: self._num_slots].copy()

    def memory_bytes(self) -> int:
        """Bytes held by the bucket and slot arrays — the HG footprint
        Table 1 contrasts with SPH's dense array."""
        return int(
            self._bucket_keys.nbytes
            + self._bucket_slots.nbytes
            + self._slot_keys.nbytes
        )

    def build(self, keys: np.ndarray) -> np.ndarray:
        """Insert ``keys`` (duplicates allowed) and return per-row slot ids.

        Vectorised: each probing round resolves every not-yet-placed row at
        once. Distinct keys get dense slot ids in first-occurrence order.

        :raises IndexError_: if the table overflows its allocation (more
            distinct keys than ``capacity_hint``).
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        positions = (self._hash(keys) & self._mask).astype(np.int64)
        slots = np.full(keys.size, self._EMPTY, dtype=np.int64)
        pending = np.arange(keys.size, dtype=np.int64)
        rounds = 0
        # Each row advances at most num_buckets times; additionally a row
        # may hold position for one round per arbitration loss, and losses
        # coincide with global slot placements (at most capacity per run).
        max_rounds = self.num_buckets + self._slot_keys.size + 2
        while pending.size:
            rounds += 1
            if rounds > max_rounds:
                raise IndexError_(
                    "hash table overflow: more distinct keys than capacity "
                    f"hint ({self._slot_keys.size})"
                )
            pos = positions[pending]
            occupant = self._bucket_keys[pos]
            # Case 1: bucket already holds this row's key -> resolve.
            matches = occupant == keys[pending]
            if np.any(matches):
                rows = pending[matches]
                slots[rows] = self._bucket_slots[positions[rows]]
            # Case 2: bucket occupied by a different key -> advance (probe).
            empty = occupant == self._EMPTY
            mismatches = pending[~matches & ~empty]
            # Case 3: bucket empty -> try to claim. Multiple rows may race
            # for one bucket within a round; scatter-then-check arbitrates:
            # the last writer wins the scatter, then every row re-reads the
            # bucket and only the winner (same row index) proceeds. Equal
            # keys share a home bucket, so at most one row wins per key.
            losers = np.empty(0, dtype=np.int64)
            claimers = pending[empty]
            if claimers.size:
                claim_pos = positions[claimers]
                arbiter = np.full(self.num_buckets, self._EMPTY, dtype=np.int64)
                arbiter[claim_pos] = claimers
                won = arbiter[claim_pos] == claimers
                winners = claimers[won]
                new_slot_base = self._num_slots
                count = winners.size
                if new_slot_base + count > self._slot_keys.size:
                    raise IndexError_(
                        "hash table overflow: more distinct keys than "
                        f"capacity hint ({self._slot_keys.size})"
                    )
                new_slots = np.arange(
                    new_slot_base, new_slot_base + count, dtype=np.int64
                )
                wpos = positions[winners]
                self._bucket_keys[wpos] = keys[winners]
                self._bucket_slots[wpos] = new_slots
                self._slot_keys[new_slots] = keys[winners]
                self._num_slots += count
                slots[winners] = new_slots
                losers = claimers[~won]
            # Mismatches advance to the next bucket. Losers must NOT
            # advance: the winner may have placed their key in this very
            # bucket, so they re-read it next round (and match case 1).
            positions[mismatches] = (
                (positions[mismatches] + 1) & np.int64(self._mask)
            )
            pending = np.concatenate([mismatches, losers])
        return slots

    def probe(self, keys: np.ndarray) -> np.ndarray:
        """Look up slot ids for ``keys``; -1 for keys never inserted."""
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        positions = (self._hash(keys) & self._mask).astype(np.int64)
        slots = np.full(keys.size, self._EMPTY, dtype=np.int64)
        pending = np.arange(keys.size, dtype=np.int64)
        for __ in range(self.num_buckets + 1):
            if not pending.size:
                break
            pos = positions[pending]
            occupant = self._bucket_keys[pos]
            matches = occupant == keys[pending]
            misses = occupant == self._EMPTY
            rows = pending[matches]
            slots[rows] = self._bucket_slots[positions[rows]]
            # Missing keys resolve to -1 (already initialised); drop them.
            continuing = pending[~matches & ~misses]
            positions[continuing] = (
                (positions[continuing] + 1) & np.int64(self._mask)
            )
            pending = continuing
        return slots
