"""Index structures: the MACROMOLECULE- and MOLECULE-level building blocks
(Table 1 of the paper) that deep query optimisation chooses among."""

from repro.indexes.btree import BPlusTree
from repro.indexes.cracking import CrackedColumn
from repro.indexes.hash_table import (
    HASH_FUNCTIONS,
    ChainedHashTable,
    OpenAddressingHashTable,
    identity_hash,
    murmur3_finalizer,
)
from repro.indexes.perfect_hash import StaticPerfectHash
from repro.indexes.sorted_array import SortedKeyIndex

__all__ = [
    "BPlusTree",
    "ChainedHashTable",
    "CrackedColumn",
    "HASH_FUNCTIONS",
    "OpenAddressingHashTable",
    "SortedKeyIndex",
    "StaticPerfectHash",
    "identity_hash",
    "murmur3_finalizer",
]
