"""Static perfect hashing (SPH).

Section 2.1: *"SPH can simply be an array of groups of tuples (or running
aggregates ...). The grouping key then serves as the index into that array.
Here, the linear array slot computation works like a perfect hash function.
If all array slots are used, the SPH is even minimal. This is only
applicable if the key domain of the grouping key is (relatively) dense."*

:class:`StaticPerfectHash` is exactly that: ``slot(key) = key - min_key``.
It refuses construction when the domain is too sparse, which is how the
applicability precondition surfaces as a hard error (the optimiser is the
component that must *not* ask for SPH on a sparse domain).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PreconditionError


class StaticPerfectHash:
    """A (minimal when dense) static perfect hash over ``[min_key, max_key]``.

    :param min_key: smallest key of the domain.
    :param max_key: largest key of the domain.
    :param num_distinct: distinct keys that will actually occur; used for
        the minimality check and the density guard.
    :param min_density: minimum acceptable ``num_distinct / domain_size``;
        the default of 0.5 encodes the paper's "(relatively) dense".
    :raises PreconditionError: when the domain is too sparse.
    """

    def __init__(
        self,
        min_key: int,
        max_key: int,
        num_distinct: int | None = None,
        min_density: float = 0.5,
    ) -> None:
        if max_key < min_key:
            raise PreconditionError(
                f"empty key domain: [{min_key}, {max_key}]"
            )
        domain_size = max_key - min_key + 1
        if num_distinct is not None:
            if num_distinct > domain_size:
                raise PreconditionError(
                    f"num_distinct ({num_distinct}) exceeds domain size "
                    f"({domain_size})"
                )
            density = num_distinct / domain_size
            if density < min_density:
                raise PreconditionError(
                    "static perfect hashing requires a dense key domain: "
                    f"density {density:.4f} < required {min_density:.4f} "
                    f"(domain [{min_key}, {max_key}], {num_distinct} distinct)"
                )
        self._min_key = min_key
        self._max_key = max_key
        self._num_distinct = num_distinct

    @property
    def min_key(self) -> int:
        """Smallest key in the domain."""
        return self._min_key

    @property
    def max_key(self) -> int:
        """Largest key in the domain."""
        return self._max_key

    @property
    def num_slots(self) -> int:
        """Size of the slot array: ``max_key - min_key + 1``."""
        return self._max_key - self._min_key + 1

    def memory_bytes(self) -> int:
        """Bytes of the dense slot array SPH stands for: one 8-byte entry
        per domain slot (§2.1: "an array of groups of tuples ... the
        grouping key then serves as the index into that array")."""
        return self.num_slots * 8

    @property
    def is_minimal(self) -> bool:
        """True when every slot is used (paper: "the SPH is even minimal")."""
        return self._num_distinct == self.num_slots

    def slot(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Map key(s) to slot(s): ``key - min_key``. No bounds check —
        use :meth:`slot_checked` for untrusted input."""
        if np.isscalar(keys):
            return int(keys) - self._min_key
        return np.asarray(keys, dtype=np.int64) - np.int64(self._min_key)

    def slot_checked(self, keys: np.ndarray) -> np.ndarray:
        """Like :meth:`slot` but validates every key is inside the domain.

        :raises PreconditionError: on any out-of-domain key.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (
            int(keys.min()) < self._min_key or int(keys.max()) > self._max_key
        ):
            raise PreconditionError(
                f"key(s) outside SPH domain [{self._min_key}, {self._max_key}]"
            )
        return keys - np.int64(self._min_key)

    def key_of_slot(self, slots: np.ndarray | int) -> np.ndarray | int:
        """Inverse of :meth:`slot`: ``slot + min_key``."""
        if np.isscalar(slots):
            return int(slots) + self._min_key
        return np.asarray(slots, dtype=np.int64) + np.int64(self._min_key)

    @classmethod
    def for_keys(
        cls, keys: np.ndarray, min_density: float = 0.5
    ) -> "StaticPerfectHash":
        """Build an SPH for the observed ``keys`` (one scan for min/max/NDV).

        :raises PreconditionError: if ``keys`` is empty or too sparse.
        """
        if keys.size == 0:
            raise PreconditionError("cannot build an SPH over no keys")
        min_key = int(keys.min())
        max_key = int(keys.max())
        num_distinct = int(np.unique(keys).size)
        return cls(min_key, max_key, num_distinct, min_density)
