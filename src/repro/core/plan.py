"""Deep physical plans: the optimiser's output.

A :class:`PhysicalNode` tree records *every* decision the optimiser made —
which algorithm family implements each operator (ORGANELLE level), and,
for deep plans, the full physiological recipe below it (MACROMOLECULE /
MOLECULE levels, Figure 3). ``explain()`` renders the tree with granule
depth annotations; :func:`to_operator` lowers the plan onto the executable
engine so optimised plans actually run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.granularity import Granularity
from repro.core.physiological import Granule
from repro.core.properties import PropertyVector
from repro.engine.aggregates import AggregateSpec
from repro.engine.expressions import Expression
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.engine.operators import (
    DecodeColumn,
    Filter,
    IndexRangeScan,
    GroupBy,
    Join,
    Limit,
    PhysicalOperator,
    Project,
    SegmentScan,
    Sort,
    TableScan,
)
from repro.errors import PlanError
from repro.storage.catalog import Catalog
from repro.storage.disk import is_disk_table


@dataclass(frozen=True)
class PhysicalNode:
    """One node of an optimised physical plan.

    ``op`` discriminates the node type; the optional fields hold that
    type's parameters. ``cost`` is cumulative over the subtree, in the
    cost model's abstract units.
    """

    op: str  # 'scan' | 'filter' | 'sort' | 'join' | 'group_by' | 'project' | 'limit'
    children: tuple["PhysicalNode", ...] = ()
    # scan:
    table_name: str = ""
    alias: str = ""
    #: Algorithmic View applied at this scan: (view kind value, raw column
    #: name), or ("", "") for a plain base-table scan. Lowering a plan
    #: whose scans use views requires passing the registry to
    #: :func:`to_operator`.
    scan_view: tuple[str, str] = ("", "")
    #: for a 'btree' scan view: the inclusive value range fetched from
    #: the index.
    index_range: tuple[int, int] = (0, 0)
    #: where the scanned table lives: "" for in-memory (the default,
    #: absent from fingerprints so historical hashes survive), "disk"
    #: for a disk-resident table lowered to a SegmentScan.
    scan_storage: str = ""
    #: predicates pushed down to the scan for zone-map segment skipping
    #: (the Filter above still applies them row-wise; results are
    #: identical with or without the pushdown).
    scan_predicates: tuple[Expression, ...] = ()
    # filter:
    predicate: Expression | None = None
    # sort:
    sort_keys: tuple[str, ...] = ()
    # join:
    join_algorithm: JoinAlgorithm | None = None
    left_key: str = ""
    right_key: str = ""
    # group_by:
    grouping_algorithm: GroupingAlgorithm | None = None
    group_key: str = ""
    aggregates: tuple[AggregateSpec, ...] = ()
    # project:
    outputs: tuple[tuple[str, Expression], ...] = ()
    # limit:
    count: int = 0
    # deep recipe (None for shallow / non-algorithmic nodes):
    recipe: Granule | None = None
    #: the recipe's MOLECULE-level ``loop`` decision: True pins the
    #: morsel-parallel implementation at lowering, False pins serial.
    parallel: bool = False
    #: the recipe's MACROMOLECULE-level ``exchange`` decision: True pins
    #: the hash-repartition (shuffle, then local) implementation.
    exchange: bool = False
    #: which worker pool the parallel/exchange work runs on:
    #: ``"thread"`` or ``"process"`` (shared-memory workers).
    backend: str = "thread"
    # annotations:
    rows: float = 0.0
    local_cost: float = 0.0
    cost: float = 0.0
    #: estimated distinct groups this node builds/probes over (join and
    #: group-by nodes; 0.0 elsewhere) — the cost model's second input,
    #: recorded so runtime feedback can refit coefficients per algorithm.
    estimated_groups: float = 0.0
    properties: PropertyVector = field(default_factory=PropertyVector)

    # -- rendering ----------------------------------------------------------

    def describe(self) -> str:
        """One-line description with algorithm, cost, and properties."""
        if self.op == "scan":
            head = f"Scan({self.table_name}"
            if self.alias and self.alias != self.table_name:
                head += f" AS {self.alias}"
            if self.scan_view[0]:
                head += f" via AV[{self.scan_view[0]}({self.scan_view[1]})]"
            head += ")"
            if self.scan_storage == "disk":
                head += " [disk]"
                if self.scan_predicates:
                    head += f" pushed={len(self.scan_predicates)}"
        elif self.op == "filter":
            head = f"Filter({self.predicate!r})"
        elif self.op == "sort":
            head = f"Sort(by={list(self.sort_keys)})"
        elif self.op == "join":
            assert self.join_algorithm is not None
            head = (
                f"Join[{self.join_algorithm.name}{self._mode_suffix()}]"
                f"({self.left_key} = {self.right_key})"
            )
        elif self.op == "group_by":
            assert self.grouping_algorithm is not None
            head = (
                f"GroupBy[{self.grouping_algorithm.name}{self._mode_suffix()}]"
                f"(key={self.group_key})"
            )
        elif self.op == "project":
            head = f"Project({', '.join(a for a, __ in self.outputs)})"
        elif self.op == "limit":
            head = f"Limit({self.count})"
        else:
            head = self.op
        return (
            f"{head}  cost={self.cost:,.0f} rows={self.rows:,.0f} "
            f"props={self.properties.describe()}"
        )

    def _mode_suffix(self) -> str:
        """The loop/exchange/backend decision as a describe() suffix.

        Plain thread parallelism keeps the historical "/parallel" form so
        existing baselines and log greps stay valid; only the new modes
        grow a "@backend" qualifier."""
        if self.exchange:
            return f"/exchange@{self.backend}"
        if self.parallel:
            return (
                "/parallel"
                if self.backend == "thread"
                else f"/parallel@{self.backend}"
            )
        return ""

    def explain(self, indent: int = 0, deep: bool = False) -> str:
        """Indented plan rendering; ``deep=True`` also prints each node's
        physiological recipe (the Figure 3 sub-plan)."""
        lines = [f"{'  ' * indent}{self.describe()}"]
        if deep and self.recipe is not None:
            for recipe_line in self.recipe.explain().splitlines():
                lines.append(f"{'  ' * (indent + 1)}| {recipe_line}")
        for child in self.children:
            lines.append(child.explain(indent + 1, deep))
        return "\n".join(lines)

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def max_granularity(self) -> Granularity:
        """The deepest granule level decided anywhere in this plan —
        ORGANELLE for shallow plans, deeper when recipes are attached."""
        deepest = Granularity.ORGANELLE
        for node in self.walk():
            if node.recipe is not None:
                deepest = max(deepest, node.recipe.max_level())
        return deepest


def plan_fingerprint(node: PhysicalNode) -> str:
    """A stable digest of a plan's *shape*: the operator tree, every
    algorithm choice, and the parallelism decisions — but none of the
    cost/cardinality annotations.

    Two optimisations of the same query share this hash exactly when the
    optimiser made the same decisions; a catalog-statistics change that
    flips SPHJ to BSJ (or serial to parallel) produces a different hash.
    That makes "same query, different plan" a first-class observable:
    the hash is stamped into :class:`~repro.core.optimizer.base.
    OptimizationResult`, plan-cache entries, query-log rows, and
    :class:`~repro.obs.profile.QueryProfile` records, and the
    plan-regression sentinel (:mod:`repro.obs.sentinel`) keys its
    plan-flip detector on it.
    """
    parts: list[str] = []
    for depth, item in _walk_with_depth(node, 0):
        token = [str(depth), item.op]
        if item.op == "scan":
            token += [
                item.table_name,
                item.alias,
                item.scan_view[0],
                item.scan_view[1],
            ]
            if item.scan_view[0] == "btree":
                token.append(f"{item.index_range[0]}:{item.index_range[1]}")
            # Only non-default storage grows the token, so every plan
            # hash minted before the out-of-core path existed is stable.
            if item.scan_storage:
                token.append(item.scan_storage)
                token += [repr(p) for p in item.scan_predicates]
        elif item.op == "filter":
            token.append(repr(item.predicate))
        elif item.op == "sort":
            token.append(",".join(item.sort_keys))
        elif item.op == "join":
            assert item.join_algorithm is not None
            token += [
                item.join_algorithm.name,
                item.left_key,
                item.right_key,
                _mode_token(item),
            ]
        elif item.op == "group_by":
            assert item.grouping_algorithm is not None
            token += [
                item.grouping_algorithm.name,
                item.group_key,
                _mode_token(item),
            ]
        elif item.op == "project":
            token.append(",".join(alias for alias, __ in item.outputs))
        elif item.op == "limit":
            token.append(str(item.count))
        parts.append("|".join(token))
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def _mode_token(node: PhysicalNode) -> str:
    """The loop/exchange/backend decision as one fingerprint token. The
    historical "parallel"/"serial" spellings are preserved for thread
    plans so pre-existing plan hashes (sentinel baselines, logged
    ``plan_hash`` values) survive unchanged; backend and exchange flips
    produce distinct tokens and so distinct hashes."""
    if node.exchange:
        return f"exchange@{node.backend}"
    if not node.parallel:
        return "serial"
    return "parallel" if node.backend == "thread" else f"parallel@{node.backend}"


def _walk_with_depth(node: PhysicalNode, depth: int):
    yield depth, node
    for child in node.children:
        yield from _walk_with_depth(child, depth + 1)


def plan_decisions(node: PhysicalNode) -> list[dict]:
    """The plan's decisions as a flat, JSON-friendly list (pre-order).

    Each dict names one operator-level decision — access path, algorithm
    choice, enforcer placement, parallelism — without cost/cardinality
    annotations, so two decision lists are comparable across catalog
    versions. Query-log optimize rows carry this list; the sentinel's
    flip alerts diff the committed list against the observed one with
    :func:`plan_diff` to say *why* a plan flipped, not just that it did.
    """
    decisions: list[dict] = []
    for depth, item in _walk_with_depth(node, 0):
        decision: dict = {"depth": depth, "op": item.op}
        if item.op == "scan":
            decision["table"] = item.table_name
            decision["alias"] = item.alias
            if item.scan_view[0]:
                decision["view"] = f"{item.scan_view[0]}({item.scan_view[1]})"
            if item.scan_storage:
                decision["storage"] = item.scan_storage
        elif item.op == "sort":
            decision["keys"] = list(item.sort_keys)
        elif item.op == "join":
            decision["algorithm"] = (
                item.join_algorithm.name if item.join_algorithm else ""
            )
            decision["keys"] = [item.left_key, item.right_key]
            decision["parallel"] = bool(item.parallel)
            # Only non-default modes appear, so decision lists committed
            # before these dials existed still compare equal.
            if item.exchange:
                decision["exchange"] = True
            if item.backend != "thread":
                decision["backend"] = item.backend
        elif item.op == "group_by":
            decision["algorithm"] = (
                item.grouping_algorithm.name if item.grouping_algorithm else ""
            )
            decision["keys"] = [item.group_key]
            decision["parallel"] = bool(item.parallel)
            if item.exchange:
                decision["exchange"] = True
            if item.backend != "thread":
                decision["backend"] = item.backend
        elif item.op == "limit":
            decision["count"] = item.count
        decisions.append(decision)
    return decisions


def decision_label(decision: dict) -> str:
    """One decision as a compact human-readable label, e.g.
    ``join[SPHJ](R.ID = S.R_ID)`` or ``scan(R via btree(ID))``."""
    op = decision.get("op", "?")
    if op == "scan":
        label = f"scan({decision.get('alias') or decision.get('table', '?')}"
        if decision.get("view"):
            label += f" via {decision['view']}"
        return label + ")"
    keys = decision.get("keys", [])
    if op == "join":
        algorithm = decision.get("algorithm", "?") + _decision_mode(decision)
        joined = " = ".join(keys) if keys else "?"
        return f"join[{algorithm}]({joined})"
    if op == "group_by":
        algorithm = decision.get("algorithm", "?") + _decision_mode(decision)
        return f"group_by[{algorithm}]({', '.join(keys) or '?'})"
    if op == "sort":
        return f"sort({', '.join(keys) or '?'})"
    if op == "limit":
        return f"limit({decision.get('count')})"
    return op


def _decision_mode(decision: dict) -> str:
    """The loop/exchange/backend suffix of a decision label."""
    suffix = ""
    if decision.get("exchange"):
        suffix = "/exchange"
    elif decision.get("parallel"):
        suffix = "/parallel"
    backend = decision.get("backend")
    if backend and backend != "thread":
        suffix += f"@{backend}"
    return suffix


def _decision_site(decision: dict) -> tuple:
    """What a decision is *about*, ignoring how it was implemented —
    the pairing key that turns a removed+added pair into "changed"."""
    op = decision.get("op", "")
    if op == "scan":
        return (op, decision.get("table", ""), decision.get("alias", ""))
    return (op, tuple(decision.get("keys", [])))


def plan_diff(old: list[dict], new: list[dict]) -> dict:
    """Structured diff between two :func:`plan_decisions` lists.

    Returns ``{"identical": bool, "changed": [...], "added": [...],
    "removed": [...]}`` where ``changed`` pairs decisions about the same
    site (same operator over the same keys/table) whose implementation
    differs — the "HJ became SPHJ on R.ID = S.R_ID" a flip alert wants —
    and ``added``/``removed`` hold the labels with no counterpart.
    """
    old_only = list(old)
    new_only = list(new)
    # Cancel exactly-equal decisions first (multiset semantics; depth is
    # ignored so pure tree re-shaping doesn't read as a change).
    for decision in list(old_only):
        stripped = {k: v for k, v in decision.items() if k != "depth"}
        for candidate in new_only:
            if {k: v for k, v in candidate.items() if k != "depth"} == stripped:
                old_only.remove(decision)
                new_only.remove(candidate)
                break
    changed: list[dict] = []
    for decision in list(old_only):
        site = _decision_site(decision)
        for candidate in list(new_only):
            if _decision_site(candidate) == site:
                keys = decision.get("keys") or [
                    decision.get("alias") or decision.get("table", "")
                ]
                changed.append(
                    {
                        "op": decision.get("op", ""),
                        "site": f"{decision.get('op', '')}({' = '.join(keys)})",
                        "from": decision_label(decision),
                        "to": decision_label(candidate),
                    }
                )
                old_only.remove(decision)
                new_only.remove(candidate)
                break
    removed = [decision_label(decision) for decision in old_only]
    added = [decision_label(decision) for decision in new_only]
    return {
        "identical": not (changed or removed or added),
        "changed": changed,
        "added": added,
        "removed": removed,
    }


def render_plan_diff(diff: dict) -> str:
    """One line summarising a :func:`plan_diff`, e.g.
    ``join[OJ](R.ID = S.R_ID) -> join[SPHJ](R.ID = S.R_ID); -sort(R.A)``."""
    if diff.get("identical"):
        return "plans identical"
    parts = [
        f"{change['from']} -> {change['to']}"
        for change in diff.get("changed", [])
    ]
    parts += [f"-{label}" for label in diff.get("removed", [])]
    parts += [f"+{label}" for label in diff.get("added", [])]
    return "; ".join(parts)


def to_operator(
    node: PhysicalNode,
    catalog: Catalog,
    validate: bool = True,
    views=None,
) -> PhysicalOperator:
    """Lower a physical plan onto the executable engine.

    :param validate: make precondition-carrying operators (OG, OJ) verify
        their preconditions at runtime, so that a plan whose property
        claims are wrong *fails loudly* instead of silently producing
        garbage. Integration tests rely on this.
    :param views: the :class:`repro.avs.registry.AVRegistry` the plan was
        optimised against. Required whenever the plan reads a scan-level
        view (sorted projection / dictionary); the artifact is read from
        the registry.
    :raises PlanError: when the plan uses a view but no registry (or the
        wrong registry) is supplied.
    """
    operator = _lower_node(node, catalog, validate, views)
    _annotate_estimates(operator, node)
    return operator


def _annotate_estimates(operator: PhysicalOperator, node: PhysicalNode) -> None:
    """Carry the optimiser's predictions onto the executable operator so
    instrumented execution can join estimates against actuals."""
    operator.estimated_rows = node.rows
    operator.estimated_cost = node.cost
    if node.op in ("join", "group_by"):
        operator.estimated_groups = node.estimated_groups
    operator.plan_op = node.op
    operator.plan_fingerprint = plan_fingerprint(node)
    if node.join_algorithm is not None:
        operator.plan_algorithm = node.join_algorithm.name
    elif node.grouping_algorithm is not None:
        operator.plan_algorithm = node.grouping_algorithm.name


def _lower_node(
    node: PhysicalNode,
    catalog: Catalog,
    validate: bool,
    views,
) -> PhysicalOperator:
    if node.op == "scan":
        return _lower_scan(node, catalog, views)
    if node.op == "filter":
        assert node.predicate is not None
        return Filter(
            to_operator(node.children[0], catalog, validate, views),
            node.predicate,
        )
    if node.op == "sort":
        return Sort(
            to_operator(node.children[0], catalog, validate, views),
            list(node.sort_keys),
        )
    if node.op == "join":
        assert node.join_algorithm is not None
        return Join(
            to_operator(node.children[0], catalog, validate, views),
            to_operator(node.children[1], catalog, validate, views),
            node.left_key,
            node.right_key,
            algorithm=node.join_algorithm,
            validate=validate,
            # Pin the optimiser's loop decision (True/False, never the
            # auto-detect None): a costed plan must execute as costed.
            parallel=node.parallel,
            exchange=node.exchange,
            backend=node.backend,
        )
    if node.op == "group_by":
        assert node.grouping_algorithm is not None
        operator: PhysicalOperator = GroupBy(
            to_operator(node.children[0], catalog, validate, views),
            key=node.group_key,
            aggregates=list(node.aggregates),
            algorithm=node.grouping_algorithm,
            validate=validate,
            parallel=node.parallel,
            exchange=node.exchange,
            backend=node.backend,
        )
        # If the grouping key column came out of a dictionary view, the
        # group keys are codes: plant the decode right after grouping.
        encoding = _dictionary_encoding_for(node, node.group_key, views)
        if encoding is not None:
            operator = DecodeColumn(operator, node.group_key, encoding)
        return operator
    if node.op == "project":
        return Project(
            to_operator(node.children[0], catalog, validate, views),
            list(node.outputs),
        )
    if node.op == "limit":
        return Limit(
            to_operator(node.children[0], catalog, validate, views), node.count
        )
    raise PlanError(f"cannot lower node kind {node.op!r}")


def _lower_scan(node: PhysicalNode, catalog: Catalog, views) -> PhysicalOperator:
    alias = node.alias or node.table_name
    kind, column = node.scan_view
    if not kind:
        table = catalog.table(node.table_name)
        # Disk residency is discovered from the catalog, not from the
        # node, so hand-built and greedy/exhaustive plans (which never
        # set scan_storage) still take the segment path.
        if is_disk_table(table):
            return SegmentScan(table, alias=alias, predicates=node.scan_predicates)
        return TableScan(table.qualified(alias))
    if views is None:
        raise PlanError(
            f"plan scans {node.table_name!r} through a {kind!r} view but no "
            "view registry was passed to to_operator()"
        )
    view = views.get(kind, node.table_name, column)
    if kind == "sorted_projection":
        return TableScan(view.artifact.qualified(alias))
    if kind == "dictionary":
        return TableScan(view.artifact.encoded_table.qualified(alias))
    if kind == "btree":
        low, high = node.index_range
        return IndexRangeScan(
            catalog.table(node.table_name).qualified(alias),
            f"{alias}.{column}",
            view.artifact,
            low,
            high,
        )
    raise PlanError(f"cannot lower scan view kind {kind!r}")


def _dictionary_encoding_for(group_node: PhysicalNode, key: str, views):
    """The DictionaryEncoded codec to decode ``key`` with, if the group
    key flows out of a dictionary-view scan below ``group_node``."""
    for node in group_node.walk():
        if node.op != "scan" or node.scan_view[0] != "dictionary":
            continue
        alias = node.alias or node.table_name
        if f"{alias}.{node.scan_view[1]}" == key:
            view = views.get("dictionary", node.table_name, node.scan_view[1])
            return view.artifact.encoding
    return None
