"""The physiological algebra: granules and recursive unnesting (Fig. 2/3).

§6 ("Physiological Algebra") asks for *"the right components to use in DQO
... a physiological component set akin to relational algebra yet including
both logical and physical aspects"*. This module is that component set for
grouping and joins:

* a :class:`Granule` is a node in an implementation recipe — Figure 3's
  "bubbles" — tagged with its Table 1 :class:`Granularity` level;
* :func:`unnest` expands one granule into its implementation alternatives
  one level deeper — Figure 3's ``unnest`` arrows;
* :func:`enumerate_recipes` explores the whole lattice down to a depth
  cap, which is exactly the SQO/DQO dial: capping at ORGANELLE yields the
  textbook operator catalogue, deeper caps open macro-molecule (index
  structure) and molecule (hash function, loop mode) decisions.

A *complete* recipe maps to a concrete executable configuration
(:func:`recipe_algorithm` / :func:`recipe_join_algorithm`) and declares
its property preconditions (:func:`recipe_requirements`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.granularity import Granularity
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.errors import PlanError


@dataclass(frozen=True)
class ParamSpec:
    """One open decision of a granule kind: name, depth, alternatives.

    ``default`` is the *developer's choice* — what you get when the
    optimiser is not allowed to descend to this level (Table 1's
    "optimised by developer" cells).
    """

    name: str
    level: Granularity
    options: tuple[str, ...]
    default: str


@dataclass(frozen=True)
class Granule:
    """A node of an implementation recipe (one bubble of Figure 3)."""

    kind: str
    level: Granularity
    #: bound parameters, name -> chosen option.
    bindings: tuple[tuple[str, str], ...] = ()
    children: tuple["Granule", ...] = ()

    def binding(self, name: str) -> str | None:
        """The bound value of parameter ``name``, if any."""
        for key, value in self.bindings:
            if key == name:
                return value
        return None

    def with_binding(self, name: str, value: str) -> "Granule":
        """A copy with one more parameter bound."""
        return replace(self, bindings=self.bindings + ((name, value),))

    def explain(self, indent: int = 0) -> str:
        """Indented rendering with level tags — a textual Figure 3 node."""
        bound = ", ".join(f"{k}={v}" for k, v in self.bindings)
        suffix = f" [{bound}]" if bound else ""
        lines = [f"{'  ' * indent}{self.kind}{suffix}  <{self.level.name}>"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def max_level(self) -> Granularity:
        """Deepest granularity level appearing in this recipe."""
        return max(node.level for node in self.walk())


@dataclass(frozen=True)
class Requirements:
    """Property preconditions a recipe imposes on its input stream."""

    needs_clustered: bool = False
    needs_sorted: bool = False
    needs_dense: bool = False


# ---------------------------------------------------------------------------
# Seeds: the purely logical operators (Figure 3a).
# ---------------------------------------------------------------------------


def logical_grouping() -> Granule:
    """Γ — the logical grouping operator, Figure 3(a)."""
    return Granule(kind="group_by", level=Granularity.CELL)


def logical_join() -> Granule:
    """⋈ — the logical join; per footnote 1 a co-group with two inputs."""
    return Granule(kind="join", level=Granularity.CELL)


# ---------------------------------------------------------------------------
# Unnesting rules (Figure 3's arrows).
# ---------------------------------------------------------------------------

#: parameters each granule kind leaves open, by kind.
PARAM_SPECS: dict[str, tuple[ParamSpec, ...]] = {
    "hash_table": (
        ParamSpec(
            name="hash_function",
            level=Granularity.MOLECULE,
            options=("murmur3", "identity"),
            default="murmur3",
        ),
        ParamSpec(
            name="table_kind",
            level=Granularity.MOLECULE,
            options=("open_addressing", "chained"),
            default="open_addressing",
        ),
    ),
    "bulkload": (
        ParamSpec(
            name="loop",
            level=Granularity.MOLECULE,
            options=("serial", "parallel"),
            default="serial",
        ),
        ParamSpec(
            name="backend",
            level=Granularity.MOLECULE,
            options=("thread", "process"),
            default="thread",
        ),
    ),
    "exchange": (
        ParamSpec(
            name="backend",
            level=Granularity.MOLECULE,
            options=("thread", "process"),
            default="thread",
        ),
    ),
}


def _index_partition(index_granule: Granule) -> Granule:
    """``partition_by`` realised as bulkload-an-index + index-scan
    (Figure 3c): the index choice is the macro-molecule decision."""
    return Granule(
        kind="index_partition",
        level=Granularity.MACROMOLECULE,
        children=(
            Granule(
                kind="bulkload",
                level=Granularity.MACROMOLECULE,
                children=(index_granule,),
            ),
            Granule(kind="index_scan", level=Granularity.MACROMOLECULE),
        ),
    )


def unnest(granule: Granule) -> list[Granule]:
    """One unnest step: the implementation alternatives of ``granule``.

    Returns an empty list when the granule has no deeper expansion
    (it is already a leaf of the lattice).
    """
    if granule.kind == "group_by":
        # Figure 3(a) -> (b): Γ = partitionBy ∘ (bundle of γ aggregates).
        return [
            Granule(
                kind="partitioned_grouping",
                level=Granularity.ORGANELLE,
                children=(
                    Granule(kind="partition_by", level=Granularity.ORGANELLE),
                    Granule(
                        kind="aggregate_bundle", level=Granularity.ORGANELLE
                    ),
                ),
            )
        ]
    if granule.kind == "join":
        # Footnote 1: a join is a co-group of two inputs + per-co-group
        # aggregation; same partition_by decision space.
        return [
            Granule(
                kind="co_group",
                level=Granularity.ORGANELLE,
                children=(
                    Granule(kind="partition_by", level=Granularity.ORGANELLE),
                    Granule(
                        kind="match_bundle", level=Granularity.ORGANELLE
                    ),
                ),
            )
        ]
    if granule.kind == "partition_by":
        # Figure 3(b) -> (c): how to realise the partitioning. The first
        # alternative is the developer default taken when the depth cap
        # forbids making this decision — the textbook hash path, matching
        # the paper's SQO arrow "translate to hash-based grouping".
        return [
            _index_partition(
                Granule(kind="hash_table", level=Granularity.MOLECULE)
            ),
            Granule(kind="presorted_partition", level=Granularity.MACROMOLECULE),
            Granule(kind="sort_partition", level=Granularity.MACROMOLECULE),
            _index_partition(
                Granule(kind="sph_array", level=Granularity.MOLECULE)
            ),
            _index_partition(
                Granule(kind="sorted_array", level=Granularity.MOLECULE)
            ),
            # Exchange (repartition): shuffle rows across workers by key
            # hash, then partition locally. The shuffle backend (thread vs
            # process pool) is the MOLECULE decision on the exchange node.
            Granule(
                kind="exchange_partition",
                level=Granularity.MACROMOLECULE,
                children=(
                    Granule(kind="exchange", level=Granularity.MACROMOLECULE),
                    Granule(
                        kind="local_partition",
                        level=Granularity.MACROMOLECULE,
                    ),
                ),
            ),
        ]
    if granule.kind == "local_partition":
        # Post-shuffle strategies only: repartitioning destroys both input
        # clusteredness (no presorted_partition) and key-domain density
        # (no sph_array) within a partition.
        return [
            _index_partition(
                Granule(kind="hash_table", level=Granularity.MOLECULE)
            ),
            Granule(kind="sort_partition", level=Granularity.MACROMOLECULE),
            _index_partition(
                Granule(kind="sorted_array", level=Granularity.MOLECULE)
            ),
        ]
    return []


def _bind_params(granule: Granule, max_level: Granularity) -> list[Granule]:
    """Enumerate bindings of this granule's own open params up to
    ``max_level``; deeper params silently take their defaults."""
    specs = PARAM_SPECS.get(granule.kind, ())
    results = [granule]
    for spec in specs:
        if granule.binding(spec.name) is not None:
            continue
        next_results = []
        if spec.level <= max_level:
            for option in spec.options:
                next_results.extend(
                    g.with_binding(spec.name, option) for g in results
                )
        else:
            next_results.extend(
                g.with_binding(spec.name, spec.default) for g in results
            )
        results = next_results
    return results


def enumerate_recipes(
    seed: Granule, max_level: Granularity = Granularity.MOLECULE
) -> list[Granule]:
    """All complete recipes reachable from ``seed``, unnesting no deeper
    than ``max_level``.

    At ``max_level=ORGANELLE`` the expansion stops at the physiological
    operator (Figure 3b) — the developer's defaults fill in everything
    below, which models SQO's single-step "translate to hash-based
    grouping". Deeper caps hand more decisions to the enumeration.
    """
    expansions = unnest(seed)
    if expansions and seed.level < max_level:
        recipes: list[Granule] = []
        for alternative in expansions:
            recipes.extend(enumerate_recipes(alternative, max_level))
        return recipes
    if expansions:
        # Depth cap reached with decisions left: take the developer default
        # (the first, textbook alternative), recursing only to bind params.
        seed = expansions[0] if seed.level >= max_level else seed
    completed_children: list[list[Granule]] = [
        enumerate_recipes(child, max_level) for child in seed.children
    ]
    bound_selves = _bind_params(seed, max_level)
    if not completed_children:
        return bound_selves
    # Cartesian product of child alternatives.
    results: list[Granule] = []
    for bound in bound_selves:
        combos: list[tuple[Granule, ...]] = [()]
        for child_options in completed_children:
            combos = [
                prefix + (option,)
                for prefix in combos
                for option in child_options
            ]
        results.extend(replace(bound, children=combo) for combo in combos)
    return results


# ---------------------------------------------------------------------------
# Interpreting complete recipes.
# ---------------------------------------------------------------------------


def _partition_strategy(recipe: Granule) -> Granule:
    """The partitioning granule inside a complete grouping/join recipe."""
    for node in recipe.walk():
        if node.kind in (
            "presorted_partition",
            "sort_partition",
            "index_partition",
            "partition_by",
        ):
            return node
    raise PlanError(f"no partition strategy in recipe:\n{recipe.explain()}")


def _index_kind(partition: Granule) -> str | None:
    for node in partition.walk():
        if node.kind in ("hash_table", "sph_array", "sorted_array"):
            return node.kind
    return None


def recipe_algorithm(recipe: Granule) -> GroupingAlgorithm:
    """Map a complete grouping recipe to its executable algorithm."""
    partition = _partition_strategy(recipe)
    if partition.kind == "presorted_partition":
        return GroupingAlgorithm.OG
    if partition.kind == "sort_partition":
        return GroupingAlgorithm.SOG
    if partition.kind == "partition_by":
        # Unexpanded organelle: the developer default is the textbook
        # hash-based operator (the paper's SQO translation).
        return GroupingAlgorithm.HG
    index = _index_kind(partition)
    if index == "hash_table":
        return GroupingAlgorithm.HG
    if index == "sph_array":
        return GroupingAlgorithm.SPHG
    if index == "sorted_array":
        return GroupingAlgorithm.BSG
    raise PlanError(f"unmappable recipe:\n{recipe.explain()}")


def recipe_join_algorithm(recipe: Granule) -> JoinAlgorithm:
    """Map a complete join (co-group) recipe to its executable algorithm."""
    partition = _partition_strategy(recipe)
    if partition.kind == "presorted_partition":
        return JoinAlgorithm.OJ
    if partition.kind == "sort_partition":
        return JoinAlgorithm.SOJ
    if partition.kind == "partition_by":
        return JoinAlgorithm.HJ
    index = _index_kind(partition)
    if index == "hash_table":
        return JoinAlgorithm.HJ
    if index == "sph_array":
        return JoinAlgorithm.SPHJ
    if index == "sorted_array":
        return JoinAlgorithm.BSJ
    raise PlanError(f"unmappable recipe:\n{recipe.explain()}")


def recipe_requirements(recipe: Granule) -> Requirements:
    """The input-property preconditions of a complete recipe."""
    partition = _partition_strategy(recipe)
    if partition.kind == "presorted_partition":
        return Requirements(needs_clustered=True, needs_sorted=True)
    if _index_kind(partition) == "sph_array":
        return Requirements(needs_dense=True)
    return Requirements()


def recipe_hash_function(recipe: Granule) -> str:
    """The bound hash function of a recipe (default when not hash-based)."""
    for node in recipe.walk():
        if node.kind == "hash_table":
            return node.binding("hash_function") or "murmur3"
    return "murmur3"


def recipe_is_exchange(recipe: Granule) -> bool:
    """True when the recipe partitions through an exchange (repartition)."""
    return any(node.kind == "exchange_partition" for node in recipe.walk())


def recipe_backend(recipe: Granule) -> str:
    """The bound MOLECULE-level execution backend: ``'thread'`` or
    ``'process'``.

    The binding lives on the ``exchange`` granule for exchange recipes and
    on the ``bulkload`` granule for parallel-loop recipes; the pre-order
    walk meets the exchange node first, so an exchange recipe's backend is
    the shuffle's even when an inner bulkload carries a default binding.
    """
    for node in recipe.walk():
        if node.kind in ("exchange", "bulkload"):
            bound = node.binding("backend")
            if bound is not None:
                return bound
    return "thread"


def recipe_loop(recipe: Granule) -> str:
    """The bound MOLECULE-level ``loop`` mode of a recipe: ``'serial'`` or
    ``'parallel'``.

    The ``loop`` parameter lives on the ``bulkload`` granule (Figure 3e's
    "parallel load"), so only index-partition recipes — the executable
    HG/SPHG/BSG and HJ/SPHJ/BSJ families — ever carry a parallel binding;
    every other recipe is serial by construction.
    """
    for node in recipe.walk():
        if node.kind == "bulkload":
            return node.binding("loop") or "serial"
    return "serial"


def enumerate_prefixes(
    seed: Granule, bound_level: Granularity
) -> list[Granule]:
    """All *partial* recipes with every decision at or above
    ``bound_level`` made and everything deeper left open.

    Unlike :func:`enumerate_recipes`, reaching the depth cap leaves the
    granule unexpanded and its deeper parameters unbound — the shape a
    partial Algorithmic View (§6) freezes offline, to be completed by
    query-time enumeration.
    """
    expansions = unnest(seed)
    if expansions and seed.level < bound_level:
        prefixes: list[Granule] = []
        for alternative in expansions:
            prefixes.extend(enumerate_prefixes(alternative, bound_level))
        return prefixes
    if expansions:
        # Cap reached: leave the decision open (no default substitution).
        return [seed]
    child_options = [
        enumerate_prefixes(child, bound_level) for child in seed.children
    ]
    # Bind only this granule's params at or above the bound level.
    bound_selves = [seed]
    for spec in PARAM_SPECS.get(seed.kind, ()):
        if seed.binding(spec.name) is not None or spec.level > bound_level:
            continue
        bound_selves = [
            granule.with_binding(spec.name, option)
            for granule in bound_selves
            for option in spec.options
        ]
    if not child_options:
        return bound_selves
    results: list[Granule] = []
    for bound in bound_selves:
        combos: list[tuple[Granule, ...]] = [()]
        for options in child_options:
            combos = [
                prefix + (option,) for prefix in combos for option in options
            ]
        results.extend(replace(bound, children=combo) for combo in combos)
    return results


def count_recipes(max_level: Granularity) -> int:
    """Size of the grouping implementation space at a given depth cap —
    the enumeration-cost measure of the depth-cap ablation."""
    return len(enumerate_recipes(logical_grouping(), max_level))
