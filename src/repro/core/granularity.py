"""The granularity hierarchy of Table 1 — the paper's biology analogy.

A living cell is composed of organelles, which consist of macro-molecules,
which consist of molecules, which consist of atoms. Table 1 maps each
level to query processing and states who optimises it under SQO vs DQO:

* SQO: the *query optimiser* assembles cells (plans) from organelles
  (physical operators); everything below is frozen by the *developer*.
* DQO: the query optimiser's reach extends down to macro-molecules and
  molecules; only atoms stay with the compiler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Granularity(enum.IntEnum):
    """Granule levels, ordered from coarsest (CELL) to finest (ATOM).

    The integer values increase with *physicality* (Figure 3's x-axis):
    a larger value means a deeper, more physical decision level.
    """

    CELL = 0
    ORGANELLE = 1
    MACROMOLECULE = 2
    MOLECULE = 3
    ATOM = 4


@dataclass(frozen=True)
class GranularityInfo:
    """One row of Table 1."""

    level: Granularity
    biology: str
    query_optimisation: str
    typical_loc: int
    optimised_by_sqo: str
    optimised_by_dqo: str


#: Table 1, verbatim as data.
TABLE1: tuple[GranularityInfo, ...] = (
    GranularityInfo(
        level=Granularity.CELL,
        biology="living cell",
        query_optimisation='"physical" query plan',
        typical_loc=10_000,
        optimised_by_sqo="query optimiser",
        optimised_by_dqo="query optimiser",
    ),
    GranularityInfo(
        level=Granularity.ORGANELLE,
        biology="organelle",
        query_optimisation='"physical" operator',
        typical_loc=1_000,
        optimised_by_sqo="query optimiser",
        optimised_by_dqo="query optimiser",
    ),
    GranularityInfo(
        level=Granularity.MACROMOLECULE,
        biology="macro-molecule",
        query_optimisation=(
            "type of index structure (hash vs tree), scan method, "
            "high-level bulkloading and probing algorithm"
        ),
        typical_loc=100,
        optimised_by_sqo="developer",
        optimised_by_dqo="query optimiser",
    ),
    GranularityInfo(
        level=Granularity.MOLECULE,
        biology="molecule",
        query_optimisation=(
            "any subcomponent of an index, e.g. a node or leaf type, "
            "hash function used, particular probing implementation, "
            "low-level cache&SIMD tricks"
        ),
        typical_loc=10,
        optimised_by_sqo="developer",
        optimised_by_dqo="query optimiser",
    ),
    GranularityInfo(
        level=Granularity.ATOM,
        biology="atom",
        query_optimisation=(
            "assignment, loop initialisation, arithmetic operation, "
            "matrix operation"
        ),
        typical_loc=1,
        optimised_by_sqo="compiler",
        optimised_by_dqo="compiler",
    ),
)


def info_for(level: Granularity) -> GranularityInfo:
    """The Table 1 row of a level."""
    return TABLE1[int(level)]


def sqo_reach() -> Granularity:
    """Deepest level SQO's optimiser decides: physical operators."""
    return Granularity.ORGANELLE


def dqo_reach() -> Granularity:
    """Deepest level DQO's optimiser decides: molecules (atoms stay with
    the compiler, as in Table 1)."""
    return Granularity.MOLECULE


def render_table1() -> str:
    """A textual rendering of Table 1 (the ``repro.bench.table1`` output)."""
    header = (
        f"{'level':<14} {'biology':<16} {'typical LOC':>12}   "
        f"{'SQO':<16} {'DQO':<16}"
    )
    rule = "-" * len(header)
    lines = [header, rule]
    for row in TABLE1:
        lines.append(
            f"{row.level.name:<14} {row.biology:<16} {row.typical_loc:>12}   "
            f"{row.optimised_by_sqo:<16} {row.optimised_by_dqo:<16}"
        )
    return "\n".join(lines)
