"""The paper's primary contribution: granularity hierarchy, DQO plan
properties, the physiological algebra with unnesting, cost models, and the
unified SQO/DQO optimiser."""

from repro.core.cost import (
    CalibratedCostModel,
    CardinalityEstimator,
    CostModel,
    PaperCostModel,
)
from repro.core.granularity import (
    TABLE1,
    Granularity,
    GranularityInfo,
    dqo_reach,
    render_table1,
    sqo_reach,
)
from repro.core.physiological import (
    Granule,
    Requirements,
    count_recipes,
    enumerate_prefixes,
    enumerate_recipes,
    logical_grouping,
    logical_join,
    recipe_algorithm,
    recipe_join_algorithm,
    recipe_requirements,
    unnest,
)
from repro.core.plan import PhysicalNode, to_operator
from repro.core.properties import (
    Correlations,
    PropertyVector,
    correlations_from_table,
    detect_monotone_correlation,
    properties_from_table,
)
from repro.core.optimizer import (
    DynamicProgrammingOptimizer,
    OptimizationResult,
    OptimizerConfig,
    SearchStats,
    dqo_config,
    optimize_dqo,
    optimize_greedy,
    optimize_sqo,
    sqo_config,
)

__all__ = [
    "CalibratedCostModel",
    "CardinalityEstimator",
    "Correlations",
    "CostModel",
    "DynamicProgrammingOptimizer",
    "Granularity",
    "GranularityInfo",
    "Granule",
    "OptimizationResult",
    "OptimizerConfig",
    "PaperCostModel",
    "PhysicalNode",
    "PropertyVector",
    "Requirements",
    "SearchStats",
    "TABLE1",
    "correlations_from_table",
    "count_recipes",
    "enumerate_prefixes",
    "detect_monotone_correlation",
    "dqo_config",
    "dqo_reach",
    "enumerate_recipes",
    "logical_grouping",
    "logical_join",
    "optimize_dqo",
    "optimize_greedy",
    "optimize_sqo",
    "properties_from_table",
    "recipe_algorithm",
    "recipe_join_algorithm",
    "recipe_requirements",
    "render_table1",
    "sqo_config",
    "sqo_reach",
    "to_operator",
    "unnest",
]
