"""DQO plan properties (§2.2) and their propagation.

§2.2: *"in DQO, an 'interesting order' is just one tiny special case. Other
cases include ... sparse vs dense, clustered, partitioned, correlated,
compressed (and how exactly?), layout"*. This module defines the property
vector the deep optimiser's dynamic programming carries per subplan, plus
the correlation side-information that lets sortedness propagate across
monotone-related columns (the FK-correlation assumption behind Figure 5,
DESIGN.md substitution #5b).

SQO sees a *projection* of this vector — ``restrict_to_orders`` keeps only
the classical interesting orders — which is exactly how the paper frames
the difference: §4.3 *"While SQO only considers data sortedness as in
traditional dynamic programming, DQO also considers other [DQO] plan
properties ... here: the density of the grouping keys."*
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from repro.storage.statistics import ColumnStatistics
from repro.storage.table import Table


@dataclass(frozen=True)
class PropertyVector:
    """The properties a (sub)plan's output stream is known to have.

    All fields are column-name sets; a column being in a set is a
    *guarantee*, absence means "unknown" (the safe assumption of §2.1:
    what we cannot prove we must treat as absent).
    """

    #: columns whose values are non-decreasing in stream order.
    sorted_on: frozenset[str] = frozenset()
    #: columns whose equal values are contiguous (sorted implies clustered).
    clustered_on: frozenset[str] = frozenset()
    #: columns with dense (gap-free) integer domains.
    dense: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        # Sorted columns are clustered by definition; normalise.
        if not self.sorted_on <= self.clustered_on:
            object.__setattr__(
                self, "clustered_on", self.clustered_on | self.sorted_on
            )

    def is_sorted_on(self, column: str) -> bool:
        """Is the stream known sorted by ``column``?"""
        return column in self.sorted_on

    def is_clustered_on(self, column: str) -> bool:
        """Is the stream known clustered by ``column``?"""
        return column in self.clustered_on

    def is_dense(self, column: str) -> bool:
        """Is ``column`` known to have a dense domain?"""
        return column in self.dense

    def covers(self, other: "PropertyVector") -> bool:
        """True when this vector guarantees everything ``other`` does.

        This is the dominance partial order the DP prunes with: a plan
        with lower-or-equal cost whose properties cover another's makes
        the other redundant.
        """
        return (
            self.sorted_on >= other.sorted_on
            and self.clustered_on >= other.clustered_on
            and self.dense >= other.dense
        )

    def restrict_to_orders(self) -> "PropertyVector":
        """The SQO projection: keep only classical interesting orders
        (sortedness/clusteredness); forget density."""
        return PropertyVector(
            sorted_on=self.sorted_on,
            clustered_on=self.clustered_on,
            dense=frozenset(),
        )

    def restrict_to_columns(self, columns: Iterable[str]) -> "PropertyVector":
        """Drop guarantees about columns not in ``columns`` (projection)."""
        keep = frozenset(columns)
        return PropertyVector(
            sorted_on=self.sorted_on & keep,
            clustered_on=self.clustered_on & keep,
            dense=self.dense & keep,
        )

    def union(self, other: "PropertyVector") -> "PropertyVector":
        """Pointwise union (for combining disjoint column sets, e.g. join
        inputs whose guarantees both survive)."""
        return PropertyVector(
            sorted_on=self.sorted_on | other.sorted_on,
            clustered_on=self.clustered_on | other.clustered_on,
            dense=self.dense | other.dense,
        )

    def with_sorted(self, *columns: str) -> "PropertyVector":
        """A copy additionally guaranteeing sortedness on ``columns``."""
        added = frozenset(columns)
        return PropertyVector(
            sorted_on=self.sorted_on | added,
            clustered_on=self.clustered_on | added,
            dense=self.dense,
        )

    def with_dense(self, *columns: str) -> "PropertyVector":
        """A copy additionally guaranteeing density on ``columns``."""
        return replace(self, dense=self.dense | frozenset(columns))

    def without_order(self) -> "PropertyVector":
        """A copy with all order guarantees dropped (e.g. after a hash
        shuffle); density is a value-domain property and survives."""
        return PropertyVector(dense=self.dense)

    def describe(self) -> str:
        """Compact human-readable rendering."""
        parts = []
        if self.sorted_on:
            parts.append(f"sorted({', '.join(sorted(self.sorted_on))})")
        clustered_only = self.clustered_on - self.sorted_on
        if clustered_only:
            parts.append(f"clustered({', '.join(sorted(clustered_only))})")
        if self.dense:
            parts.append(f"dense({', '.join(sorted(self.dense))})")
        return "{" + ", ".join(parts) + "}" if parts else "{}"


@dataclass(frozen=True)
class Correlations:
    """Monotone column correlations: ``(x, y)`` means sorting a stream by
    ``x`` leaves it sorted by ``y`` as well.

    §2.2 lists "correlated" among DQO plan properties. Correlations are
    declared (or detected) per base table and used to *close* sortedness
    guarantees: whenever a plan's output becomes sorted on ``x``, it is
    also sorted on every ``y`` monotone in ``x``.
    """

    pairs: frozenset[tuple[str, str]] = frozenset()

    def implied_by(self, column: str) -> frozenset[str]:
        """All columns monotone in ``column`` (transitively)."""
        implied: set[str] = set()
        frontier = [column]
        while frontier:
            current = frontier.pop()
            for x, y in self.pairs:
                if x == current and y not in implied:
                    implied.add(y)
                    frontier.append(y)
        return frozenset(implied)

    def close_sorted(self, properties: PropertyVector) -> PropertyVector:
        """Extend ``sorted_on`` with everything correlation implies."""
        extra: set[str] = set()
        for column in properties.sorted_on:
            extra |= self.implied_by(column)
        if not extra:
            return properties
        return properties.with_sorted(*extra)

    def merged(self, other: "Correlations") -> "Correlations":
        """Union of two correlation sets."""
        return Correlations(self.pairs | other.pairs)


def detect_monotone_correlation(
    table: Table, x: str, y: str, sample_limit: int = 100_000
) -> bool:
    """Measure whether ``y`` is non-decreasing when rows are ordered by
    ``x`` — i.e. whether ``(x, y)`` is a monotone correlation.

    Checks up to ``sample_limit`` rows (a prefix after sorting); exact for
    tables at or below the limit.
    """
    x_values = table[x]
    y_values = table[y]
    if x_values.size > sample_limit:
        x_values = x_values[:sample_limit]
        y_values = y_values[:sample_limit]
    order = np.argsort(x_values, kind="stable")
    reordered = y_values[order]
    if reordered.size <= 1:
        return True
    return bool(np.all(reordered[:-1] <= reordered[1:]))


def properties_from_table(table: Table, qualify: str = "") -> PropertyVector:
    """Measure the initial property vector of a base table's scan output.

    :param qualify: optional ``alias`` to prefix column names with, so
        that the vector speaks the same names as the plan's streams.
    """
    sorted_on: set[str] = set()
    clustered_on: set[str] = set()
    dense: set[str] = set()
    for column in table.columns():
        name = f"{qualify}.{column.name}" if qualify else column.name
        stats: ColumnStatistics = column.statistics
        if stats.is_sorted:
            sorted_on.add(name)
        if stats.is_clustered:
            clustered_on.add(name)
        if stats.is_dense:
            dense.add(name)
    return PropertyVector(
        sorted_on=frozenset(sorted_on),
        clustered_on=frozenset(clustered_on),
        dense=frozenset(dense),
    )


#: memo for :func:`correlations_from_table`, keyed by (table identity,
#: qualifier). Tables are immutable, so identity-keyed caching is sound;
#: entries die with the table object (weak keying is not worth the
#: bookkeeping at this scale).
_CORRELATION_CACHE: dict[tuple[int, str, int], Correlations] = {}


def correlations_from_table(
    table: Table, qualify: str = "", sample_limit: int = 100_000
) -> Correlations:
    """Detect all pairwise monotone correlations among a table's columns.

    Quadratic in column count — intended for the narrow relations of the
    paper's experiments, not thousand-column tables. Results are memoised
    per table object (tables are immutable).
    """
    cache_key = (id(table), qualify, sample_limit)
    cached = _CORRELATION_CACHE.get(cache_key)
    if cached is not None:
        return cached
    pairs: set[tuple[str, str]] = set()
    names = list(table.schema.names)
    for x in names:
        for y in names:
            if x == y:
                continue
            if detect_monotone_correlation(table, x, y, sample_limit):
                qualified_x = f"{qualify}.{x}" if qualify else x
                qualified_y = f"{qualify}.{y}" if qualify else y
                pairs.add((qualified_x, qualified_y))
    result = Correlations(frozenset(pairs))
    if len(_CORRELATION_CACHE) > 4096:
        _CORRELATION_CACHE.clear()
    _CORRELATION_CACHE[cache_key] = result
    return result
