"""A cost model calibrated against measured kernel runtimes.

Table 2's coefficients (the "4" in ``HG = 4·|R|``) were chosen by the
authors for their C++ kernels. On a different substrate those constants
differ, so this module fits, per algorithm, the coefficients of the basis

    cost(n, g) = c0 + c1·n + c2·n·log2(n) + c3·n·log2(g)

to measured (n, g, seconds) samples by non-negative least squares. The
ablation benchmark ``bench_ablation_costmodel`` checks whether a fitted
model picks the same Figure 5 winners as the paper's model — i.e. whether
the paper's conclusion is robust to the cost-model constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost.model import CostModel
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.errors import CostModelError


@dataclass(frozen=True)
class Sample:
    """One measurement: grouping ``rows`` rows of ``groups`` groups took
    ``seconds`` wall-clock seconds."""

    rows: int
    groups: int
    seconds: float


def _basis(rows: float, groups: float) -> np.ndarray:
    log_n = math.log2(rows) if rows > 1 else 0.0
    log_g = math.log2(groups) if groups > 1 else 0.0
    return np.array([1.0, rows, rows * log_n, rows * log_g])


def fit_coefficients(samples: list[Sample]) -> np.ndarray:
    """Fit the 4 basis coefficients to samples (non-negative least squares
    by projected iteration — scipy-free and adequate for this basis).

    :raises CostModelError: with fewer than 4 samples.
    """
    if len(samples) < 4:
        raise CostModelError(
            f"need at least 4 samples to fit, got {len(samples)}"
        )
    matrix = np.stack([_basis(s.rows, s.groups) for s in samples])
    target = np.array([s.seconds for s in samples])
    # Plain least squares, then clamp negatives to zero and re-fit the
    # remaining support; one round suffices for this small basis.
    coefficients, *__ = np.linalg.lstsq(matrix, target, rcond=None)
    negative = coefficients < 0
    if np.any(negative):
        support = ~negative
        refit = np.zeros_like(coefficients)
        sub, *__ = np.linalg.lstsq(matrix[:, support], target, rcond=None)
        refit[support] = np.maximum(sub, 0.0)
        coefficients = refit
    return coefficients


@dataclass
class CalibratedCostModel(CostModel):
    """A :class:`CostModel` whose per-algorithm coefficients were fitted
    from measurements via :func:`calibrate_grouping`.

    Join costs reuse the grouping fit: a join is a co-group (footnote 1),
    so the build side is costed like grouping its rows and the probe side
    like probing the same structure — coefficient-wise, build + probe of
    the matching grouping family.
    """

    grouping_coefficients: dict[GroupingAlgorithm, np.ndarray] = field(
        default_factory=dict
    )

    def _evaluate(
        self, algorithm: GroupingAlgorithm, rows: float, groups: float
    ) -> float:
        if algorithm not in self.grouping_coefficients:
            raise CostModelError(
                f"no calibration for {algorithm.name}; "
                f"have {[a.name for a in self.grouping_coefficients]}"
            )
        return float(
            self.grouping_coefficients[algorithm] @ _basis(rows, groups)
        )

    def grouping_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        return self._evaluate(algorithm, float(input_rows), float(num_groups))

    def join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        counterpart = _JOIN_TO_GROUPING[algorithm]
        return self._evaluate(
            counterpart, float(left_rows), float(num_groups)
        ) + self._evaluate(counterpart, float(right_rows), float(num_groups))

    def sort_cost(self, rows: float) -> float:
        # The sort coefficient is SOG's n·log2(n) term when available.
        sog = self.grouping_coefficients.get(GroupingAlgorithm.SOG)
        if sog is None:
            return float(rows) * (math.log2(rows) if rows > 1 else 0.0)
        return float(sog[2]) * float(rows) * (
            math.log2(rows) if rows > 1 else 0.0
        )

    def scan_cost(self, rows: float) -> float:
        return 0.0


_JOIN_TO_GROUPING = {
    JoinAlgorithm.HJ: GroupingAlgorithm.HG,
    JoinAlgorithm.SPHJ: GroupingAlgorithm.SPHG,
    JoinAlgorithm.OJ: GroupingAlgorithm.OG,
    JoinAlgorithm.SOJ: GroupingAlgorithm.SOG,
    JoinAlgorithm.BSJ: GroupingAlgorithm.BSG,
}


def calibrate_grouping(
    samples: dict[GroupingAlgorithm, list[Sample]],
) -> CalibratedCostModel:
    """Fit one coefficient vector per algorithm from measured samples."""
    return CalibratedCostModel(
        grouping_coefficients={
            algorithm: fit_coefficients(sample_list)
            for algorithm, sample_list in samples.items()
        }
    )


def measure_grouping_samples(
    sizes: list[int],
    group_counts: list[int],
    algorithms: list[GroupingAlgorithm] | None = None,
    repeats: int = 2,
    seed: int = 0,
) -> dict[GroupingAlgorithm, list[Sample]]:
    """Run the grouping kernels over a (sizes x group_counts) grid and
    collect timing samples for calibration.

    Uses unsorted-dense data so every algorithm is applicable.
    """
    from repro._util.timer import time_callable
    from repro.datagen.grouping import Density, Sortedness, make_grouping_dataset
    from repro.engine.kernels.grouping import group_by

    algorithms = algorithms or list(GroupingAlgorithm)
    results: dict[GroupingAlgorithm, list[Sample]] = {
        algorithm: [] for algorithm in algorithms
    }
    for n in sizes:
        for groups in group_counts:
            if groups > n:
                continue
            dataset = make_grouping_dataset(
                n,
                groups,
                sortedness=Sortedness.UNSORTED,
                density=Density.DENSE,
                seed=seed,
            )
            sorted_keys = np.sort(dataset.keys)
            for algorithm in algorithms:
                keys = (
                    sorted_keys
                    if algorithm is GroupingAlgorithm.OG
                    else dataset.keys
                )
                timing = time_callable(
                    lambda a=algorithm, k=keys: group_by(
                        k, dataset.payload, a, num_distinct_hint=groups
                    ),
                    repeats=repeats,
                    warmup=1,
                )
                results[algorithm].append(Sample(n, groups, timing.best))
    return results
