"""Table 2 of the paper, implemented exactly.

::

    Grouping                             Join
    HG(R)   = 4 * |R|                    HJ(R,S)   = 4 * (|R| + |S|)
    OG(R)   = |R|                        OJ(R,S)   = |R| + |S|
    SOG(R)  = |R|*log2|R| + |R|          SOJ(R,S)  = |R|*log2|R| + |S|*log2|S| + |R| + |S|
    SPHG(R) = |R|                        SPHJ(R,S) = |R| + |S|
    BSG(R)  = |R|*log2(#groups)          BSJ(R,S)  = |R|*log2(#groups) + |S|*log2(#groups)

The build/probe split used for Algorithmic View credit (§3) is the natural
reading of each formula: the |R| (build-side) term is the build phase, the
|S| (probe-side) term the probe phase.
"""

from __future__ import annotations

import math

from repro.core.cost.model import CostModel
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.errors import CostModelError


def _log2(value: float) -> float:
    """log2 clamped at zero for degenerate cardinalities (<= 1)."""
    return math.log2(value) if value > 1 else 0.0


class PaperCostModel(CostModel):
    """The exact Table 2 formulas; scans are free, sorts are n·log2(n).

    Scans being free matches the paper's §4.3 accounting, which sums only
    the join and grouping terms.
    """

    def cache_fingerprint(self) -> tuple:
        # Stateless: every instance costs identically, so plan-cache
        # entries are shared across instances (each optimize_dqo() call
        # constructs a fresh default model).
        kind = type(self)
        return (kind.__module__, kind.__qualname__)

    def grouping_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        n = float(input_rows)
        if algorithm is GroupingAlgorithm.HG:
            return 4.0 * n
        if algorithm is GroupingAlgorithm.OG:
            return n
        if algorithm is GroupingAlgorithm.SOG:
            return n * _log2(n) + n
        if algorithm is GroupingAlgorithm.SPHG:
            return n
        if algorithm is GroupingAlgorithm.BSG:
            return n * _log2(num_groups)
        raise CostModelError(f"unknown grouping algorithm {algorithm!r}")

    def join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        r = float(left_rows)
        s = float(right_rows)
        if algorithm is JoinAlgorithm.HJ:
            return 4.0 * (r + s)
        if algorithm is JoinAlgorithm.OJ:
            return r + s
        if algorithm is JoinAlgorithm.SOJ:
            return r * _log2(r) + s * _log2(s) + r + s
        if algorithm is JoinAlgorithm.SPHJ:
            return r + s
        if algorithm is JoinAlgorithm.BSJ:
            return r * _log2(num_groups) + s * _log2(num_groups)
        raise CostModelError(f"unknown join algorithm {algorithm!r}")

    def sort_cost(self, rows: float) -> float:
        n = float(rows)
        return n * _log2(n)

    def scan_cost(self, rows: float) -> float:
        return 0.0

    # -- cost attribution (EXPLAIN WHY) ------------------------------------

    def grouping_cost_terms(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> list[tuple[str, float]]:
        # Table 2's formulas, term by term, with the paper's reading of
        # each: the names are what EXPLAIN WHY prints as the decisive
        # cost term of an algorithm choice.
        n = float(input_rows)
        if algorithm is GroupingAlgorithm.HG:
            return [("hash build+probe 4*|R|", 4.0 * n)]
        if algorithm is GroupingAlgorithm.OG:
            return [("ordered pass |R|", n)]
        if algorithm is GroupingAlgorithm.SOG:
            return [("sort |R|*log2|R|", n * _log2(n)), ("pass |R|", n)]
        if algorithm is GroupingAlgorithm.SPHG:
            return [("direct-address pass |R|", n)]
        if algorithm is GroupingAlgorithm.BSG:
            return [("binary-search probes |R|*log2(g)", n * _log2(num_groups))]
        raise CostModelError(f"unknown grouping algorithm {algorithm!r}")

    def join_cost_terms(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> list[tuple[str, float]]:
        r = float(left_rows)
        s = float(right_rows)
        if algorithm is JoinAlgorithm.HJ:
            return [("hash build 4*|R|", 4.0 * r), ("hash probe 4*|S|", 4.0 * s)]
        if algorithm is JoinAlgorithm.OJ:
            return [("merge pass |R|+|S|", r + s)]
        if algorithm is JoinAlgorithm.SOJ:
            return [
                ("sort build |R|*log2|R|", r * _log2(r)),
                ("sort probe |S|*log2|S|", s * _log2(s)),
                ("merge pass |R|+|S|", r + s),
            ]
        if algorithm is JoinAlgorithm.SPHJ:
            return [("dense build |R|", r), ("probe pass |S|", s)]
        if algorithm is JoinAlgorithm.BSJ:
            return [
                ("binary-search build |R|*log2(g)", r * _log2(num_groups)),
                ("binary-search probe |S|*log2(g)", s * _log2(num_groups)),
            ]
        raise CostModelError(f"unknown join algorithm {algorithm!r}")

    # -- build/probe split for Algorithmic Views (§3) ----------------------

    def grouping_build_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        # Grouping has no reusable build side over its own (per-query)
        # input except BSG's sorted key directory, whose construction the
        # Table 2 formula folds into |R|*log2(#groups); an AV holding the
        # directory saves the searchsorted-build fraction, modelled as the
        # #groups-dependent share of one pass.
        if algorithm is GroupingAlgorithm.BSG:
            return float(num_groups) * _log2(num_groups)
        return 0.0

    def join_build_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        r = float(left_rows)
        if algorithm is JoinAlgorithm.HJ:
            return 4.0 * r
        if algorithm is JoinAlgorithm.SPHJ:
            return r
        if algorithm is JoinAlgorithm.BSJ:
            return r * _log2(num_groups)
        if algorithm is JoinAlgorithm.SOJ:
            # The build-side sort can be pre-materialised.
            return r * _log2(r)
        return 0.0


class AccessPathCostModel(PaperCostModel):
    """Table 2 plus non-free scans: every base-table scan costs one unit
    per row.

    Under :class:`PaperCostModel` scans are free, so the §1 access-path
    decision ("unclustered B-tree vs scan") can never pay off. This model
    makes the decision real: a full scan costs |R| while an unclustered
    index fetch costs log2|R| + matches — the classic selectivity
    crossover, explored by ``benchmarks/bench_access_path.py``.
    """

    def scan_cost(self, rows: float) -> float:
        return float(rows)
