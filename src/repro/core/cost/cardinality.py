"""Cardinality estimation.

The optimiser needs output-size estimates for joins and group-bys. The
paper's §4.3 fixes these by assumption (*"we assume the output-size of the
join to be 90,000 because of the foreign-key constraint and the
[grouping] output-size to be 20,000"*); this module derives exactly those
numbers from catalog metadata — FK constraints and column NDVs — instead
of hard-coding them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.storage.catalog import Catalog


def qerror(estimated: float, actual: float) -> float:
    """The q-error of one estimate: ``max(est/act, act/est)``.

    The standard multiplicative estimation-accuracy metric (Moerkotte et
    al.): 1.0 is a perfect estimate, 2.0 is off by 2x in either
    direction. Edge cases: both sides zero is a perfect estimate (1.0);
    exactly one side zero is an unbounded miss (``inf``). Negative
    inputs are clamped to zero — cardinalities cannot be negative.
    """
    est = max(float(estimated), 0.0)
    act = max(float(actual), 0.0)
    if est == 0.0 and act == 0.0:
        return 1.0
    if est == 0.0 or act == 0.0:
        return math.inf
    return max(est / act, act / est)


@dataclass(frozen=True)
class RelationEstimate:
    """Estimated shape of an intermediate relation."""

    #: estimated row count.
    rows: float
    #: per-column estimated NDV, keyed by qualified column name.
    distinct: dict[str, float]

    def ndv(self, column: str) -> float:
        """Estimated NDV of ``column`` (falls back to ``rows``)."""
        return self.distinct.get(column, self.rows)


class CardinalityEstimator:
    """FK-aware textbook estimation over a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def base_table(self, table_name: str, alias: str) -> RelationEstimate:
        """Exact statistics of a base table, under ``alias.`` names."""
        table = self._catalog.table(table_name)
        distinct = {
            f"{alias}.{column.name}": float(column.statistics.distinct)
            for column in table.columns()
        }
        return RelationEstimate(rows=float(table.num_rows), distinct=distinct)

    def join(
        self,
        left: RelationEstimate,
        right: RelationEstimate,
        left_key: str,
        right_key: str,
        is_foreign_key: bool,
        fk_child_is_right: bool = True,
    ) -> RelationEstimate:
        """Estimate an equi-join's output.

        With a foreign key, output rows equal the child (FK) side's rows —
        the §4.3 assumption. Without one, the standard
        ``|L|·|R| / max(ndv_L, ndv_R)`` formula applies.
        """
        if is_foreign_key:
            rows = right.rows if fk_child_is_right else left.rows
        else:
            ndv_left = max(left.ndv(left_key), 1.0)
            ndv_right = max(right.ndv(right_key), 1.0)
            rows = left.rows * right.rows / max(ndv_left, ndv_right)
        distinct: dict[str, float] = {}
        for source in (left, right):
            for column, ndv in source.distinct.items():
                # NDVs cannot exceed the output row count; FK joins keep
                # parent-side NDVs when every parent row is referenced.
                distinct[column] = min(ndv, rows)
        return RelationEstimate(rows=rows, distinct=distinct)

    def group_by(self, child: RelationEstimate, key: str) -> RelationEstimate:
        """Grouping output: one row per distinct key value."""
        groups = min(child.ndv(key), child.rows)
        return RelationEstimate(
            rows=groups, distinct={key: groups}
        )
