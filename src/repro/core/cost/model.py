"""The abstract cost model interface.

Costs are abstract work units (the paper's Table 2 counts "touched rows",
weighted); only *ratios* of costs are meaningful, which is also all that
Figure 5 reports (improvement factors).
"""

from __future__ import annotations

import math

from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm


class CostModel:
    """Base class: cost of each physical algorithm family.

    ``num_groups`` is the NDV of the grouping/join key — the paper
    assumes it known (§4.1) and Table 2's BSG/BSJ formulas depend on it.
    """

    def cache_fingerprint(self) -> tuple:
        """What the plan cache keys this model on.

        The default is instance identity — safe for any model, including
        stateful fitted ones, at the price of never sharing cache entries
        across instances. Stateless models (every instance costs
        identically) should override to drop the ``id`` term.
        """
        kind = type(self)
        return (kind.__module__, kind.__qualname__, id(self))

    def grouping_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        """Cost of grouping ``input_rows`` rows into ``num_groups`` groups."""
        raise NotImplementedError

    def join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        """Cost of joining (build side left, probe side right)."""
        raise NotImplementedError

    def sort_cost(self, rows: float) -> float:
        """Cost of an explicit sort enforcer."""
        raise NotImplementedError

    # -- cost attribution (EXPLAIN WHY) ------------------------------------

    def grouping_cost_terms(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> list[tuple[str, float]]:
        """:meth:`grouping_cost` decomposed into named terms, largest of
        which is the *decisive* term ``EXPLAIN WHY`` reports. The default
        is the undecomposed total; models with structured formulas (Table
        2) override."""
        return [("total", self.grouping_cost(algorithm, input_rows, num_groups))]

    def join_cost_terms(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> list[tuple[str, float]]:
        """:meth:`join_cost` decomposed into named terms (see
        :meth:`grouping_cost_terms`)."""
        return [
            (
                "total",
                self.join_cost(algorithm, left_rows, right_rows, num_groups),
            )
        ]

    def scan_cost(self, rows: float) -> float:
        """Cost of scanning a base table."""
        raise NotImplementedError

    def index_scan_cost(self, total_rows: float, matching_rows: float) -> float:
        """Cost of fetching ``matching_rows`` of ``total_rows`` through an
        unclustered B-tree (§1's "unclustered B-tree vs scan"): a descent
        plus one *random-access* gather per match. Random accesses carry
        the same 4x factor Table 2 charges hash-based algorithms, putting
        the scan-vs-index crossover at 25% selectivity."""
        descent = math.log2(total_rows) if total_rows > 1 else 0.0
        return descent + 4.0 * matching_rows

    def grouping_build_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        """The portion of :meth:`grouping_cost` spent building the
        algorithm's internal structure — what a matching Algorithmic View
        saves when it is already materialised (§3).

        Defaults to zero (no AV benefit) unless a model overrides it.
        """
        return 0.0

    def join_build_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        """The build-side portion of :meth:`join_cost` (see
        :meth:`grouping_build_cost`)."""
        return 0.0

    # -- morsel-parallel loop variants (Figure 3e's "parallel load") -------

    def parallel_merge_cost(self, num_groups: float, workers: float) -> float:
        """Cost of merging the per-shard partial aggregates: the shards
        contribute up to ``workers * num_groups`` partial rows which are
        sorted (``np.unique``) and summed."""
        merged = max(float(workers) * max(float(num_groups), 1.0), 1.0)
        log_term = math.log2(merged) if merged > 1 else 0.0
        return merged * log_term + merged

    def parallel_grouping_cost(
        self,
        algorithm: GroupingAlgorithm,
        input_rows: float,
        num_groups: float,
        workers: float,
    ) -> float:
        """Cost of the parallel-loop grouping variant: the serial work
        divides across ``workers`` shards, then the partials merge, plus
        one dispatch unit per worker. At ``workers = 1`` this is strictly
        worse than :meth:`grouping_cost` — the optimiser then rightly
        keeps the serial loop."""
        w = max(float(workers), 1.0)
        serial = self.grouping_cost(algorithm, input_rows, num_groups)
        return serial / w + self.parallel_merge_cost(num_groups, w) + w

    def parallel_join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
        workers: float,
    ) -> float:
        """Cost of the shared-build, sharded-probe join variant: the
        build phase stays serial (erected once), the probe phase divides
        across ``workers``, plus one dispatch unit per worker. Strictly
        worse than :meth:`join_cost` at ``workers = 1``."""
        w = max(float(workers), 1.0)
        serial = self.join_cost(algorithm, left_rows, right_rows, num_groups)
        build = min(
            self.join_build_cost(algorithm, left_rows, right_rows, num_groups),
            serial,
        )
        return build + (serial - build) / w + w
