"""The abstract cost model interface.

Costs are abstract work units (the paper's Table 2 counts "touched rows",
weighted); only *ratios* of costs are meaningful, which is also all that
Figure 5 reports (improvement factors).
"""

from __future__ import annotations

import math

from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm


class CostModel:
    """Base class: cost of each physical algorithm family.

    ``num_groups`` is the NDV of the grouping/join key — the paper
    assumes it known (§4.1) and Table 2's BSG/BSJ formulas depend on it.
    """

    def grouping_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        """Cost of grouping ``input_rows`` rows into ``num_groups`` groups."""
        raise NotImplementedError

    def join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        """Cost of joining (build side left, probe side right)."""
        raise NotImplementedError

    def sort_cost(self, rows: float) -> float:
        """Cost of an explicit sort enforcer."""
        raise NotImplementedError

    def scan_cost(self, rows: float) -> float:
        """Cost of scanning a base table."""
        raise NotImplementedError

    def index_scan_cost(self, total_rows: float, matching_rows: float) -> float:
        """Cost of fetching ``matching_rows`` of ``total_rows`` through an
        unclustered B-tree (§1's "unclustered B-tree vs scan"): a descent
        plus one *random-access* gather per match. Random accesses carry
        the same 4x factor Table 2 charges hash-based algorithms, putting
        the scan-vs-index crossover at 25% selectivity."""
        descent = math.log2(total_rows) if total_rows > 1 else 0.0
        return descent + 4.0 * matching_rows

    def grouping_build_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        """The portion of :meth:`grouping_cost` spent building the
        algorithm's internal structure — what a matching Algorithmic View
        saves when it is already materialised (§3).

        Defaults to zero (no AV benefit) unless a model overrides it.
        """
        return 0.0

    def join_build_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        """The build-side portion of :meth:`join_cost` (see
        :meth:`grouping_build_cost`)."""
        return 0.0
