"""The abstract cost model interface.

Costs are abstract work units (the paper's Table 2 counts "touched rows",
weighted); only *ratios* of costs are meaningful, which is also all that
Figure 5 reports (improvement factors).
"""

from __future__ import annotations

import math

from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm


class CostModel:
    """Base class: cost of each physical algorithm family.

    ``num_groups`` is the NDV of the grouping/join key — the paper
    assumes it known (§4.1) and Table 2's BSG/BSJ formulas depend on it.
    """

    def cache_fingerprint(self) -> tuple:
        """What the plan cache keys this model on.

        The default is instance identity — safe for any model, including
        stateful fitted ones, at the price of never sharing cache entries
        across instances. Stateless models (every instance costs
        identically) should override to drop the ``id`` term.
        """
        kind = type(self)
        return (kind.__module__, kind.__qualname__, id(self))

    def grouping_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        """Cost of grouping ``input_rows`` rows into ``num_groups`` groups."""
        raise NotImplementedError

    def join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        """Cost of joining (build side left, probe side right)."""
        raise NotImplementedError

    def sort_cost(self, rows: float) -> float:
        """Cost of an explicit sort enforcer."""
        raise NotImplementedError

    # -- cost attribution (EXPLAIN WHY) ------------------------------------

    def grouping_cost_terms(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> list[tuple[str, float]]:
        """:meth:`grouping_cost` decomposed into named terms, largest of
        which is the *decisive* term ``EXPLAIN WHY`` reports. The default
        is the undecomposed total; models with structured formulas (Table
        2) override."""
        return [("total", self.grouping_cost(algorithm, input_rows, num_groups))]

    def join_cost_terms(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> list[tuple[str, float]]:
        """:meth:`join_cost` decomposed into named terms (see
        :meth:`grouping_cost_terms`)."""
        return [
            (
                "total",
                self.join_cost(algorithm, left_rows, right_rows, num_groups),
            )
        ]

    def scan_cost(self, rows: float) -> float:
        """Cost of scanning a base table."""
        raise NotImplementedError

    def index_scan_cost(self, total_rows: float, matching_rows: float) -> float:
        """Cost of fetching ``matching_rows`` of ``total_rows`` through an
        unclustered B-tree (§1's "unclustered B-tree vs scan"): a descent
        plus one *random-access* gather per match. Random accesses carry
        the same 4x factor Table 2 charges hash-based algorithms, putting
        the scan-vs-index crossover at 25% selectivity."""
        descent = math.log2(total_rows) if total_rows > 1 else 0.0
        return descent + 4.0 * matching_rows

    # -- out-of-core I/O terms ---------------------------------------------

    def io_read_weight(self) -> float:
        """Cost per row of fetching it cold from disk — the same 4x
        factor Table 2 charges random accesses, so a fully cold scan
        costs 5x an in-memory one (4 read + 1 touch)."""
        return 4.0

    def io_decode_weight(self, encoding: str) -> float:
        """Cost per row of decoding one on-disk page encoding: plain
        pages are served zero-copy from the mmap, dictionary pages pay a
        gather, RLE pages a repeat-expansion."""
        return {"plain": 0.0, "dictionary": 1.0, "rle": 0.5}.get(encoding, 1.0)

    def disk_scan_cost(
        self, rows: float, hit_fraction: float = 0.0, decode_weight: float = 0.0
    ) -> float:
        """Cost of scanning ``rows`` rows of a disk-resident table.

        ``hit_fraction`` is the expected buffer-hit probability (the
        table's current residency); only misses pay the cold-read
        weight. ``decode_weight`` is the residency-weighted per-row
        decode cost of the table's encoding mix. The in-memory
        :meth:`scan_cost` term rides on top — touched rows are touched
        rows wherever they live."""
        miss = min(max(1.0 - hit_fraction, 0.0), 1.0)
        return rows * (miss * self.io_read_weight() + decode_weight) + self.scan_cost(
            rows
        )

    def disk_scan_cost_terms(
        self, rows: float, hit_fraction: float = 0.0, decode_weight: float = 0.0
    ) -> list[tuple[str, float]]:
        """:meth:`disk_scan_cost` decomposed for ``EXPLAIN WHY``."""
        miss = min(max(1.0 - hit_fraction, 0.0), 1.0)
        return [
            ("cold-read", rows * miss * self.io_read_weight()),
            ("decode", rows * decode_weight),
            ("touch", self.scan_cost(rows)),
        ]

    def grouping_build_cost(
        self, algorithm: GroupingAlgorithm, input_rows: float, num_groups: float
    ) -> float:
        """The portion of :meth:`grouping_cost` spent building the
        algorithm's internal structure — what a matching Algorithmic View
        saves when it is already materialised (§3).

        Defaults to zero (no AV benefit) unless a model overrides it.
        """
        return 0.0

    def join_build_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
    ) -> float:
        """The build-side portion of :meth:`join_cost` (see
        :meth:`grouping_build_cost`)."""
        return 0.0

    # -- morsel-parallel loop variants (Figure 3e's "parallel load") -------

    def gil_fraction(self) -> float:
        """Fraction of kernel work the *thread* backend cannot overlap —
        the interpreter-held stretches around the GIL-releasing numpy
        calls (dispatch, dictionary decode, small-array glue). Amdahl's
        serial fraction of the thread backend; the process backend pays
        IPC instead (see :meth:`ipc_row_cost`)."""
        return 0.15

    def ipc_row_cost(self) -> float:
        """Abstract cost of moving one result row across the process
        boundary (pickle + queue copy). Inputs are free — they travel
        through shared memory — so only *outputs* (partial aggregates,
        match indices) are charged."""
        return 0.5

    def dispatch_cost(self, backend: str) -> float:
        """Per-worker scheduling cost of one parallel batch. Process
        dispatch crosses a command queue and wakes another process, so it
        is orders of magnitude heavier than a thread wake-up — which is
        what keeps small inputs off the process backend."""
        return 50.0 if backend == "process" else 1.0

    def effective_workers(self, workers: float, backend: str) -> float:
        """The speedup ``workers`` can actually deliver on ``backend``.

        Threads are Amdahl-limited by :meth:`gil_fraction`; processes
        scale linearly (each has its own interpreter)."""
        w = max(float(workers), 1.0)
        if backend == "process":
            return w
        g = self.gil_fraction()
        return 1.0 / (g + (1.0 - g) / w)

    def parallel_merge_cost(self, num_groups: float, workers: float) -> float:
        """Cost of merging the per-shard partial aggregates: the shards
        contribute up to ``workers * num_groups`` partial rows which are
        sorted (``np.unique``) and summed."""
        merged = max(float(workers) * max(float(num_groups), 1.0), 1.0)
        log_term = math.log2(merged) if merged > 1 else 0.0
        return merged * log_term + merged

    def parallel_grouping_cost(
        self,
        algorithm: GroupingAlgorithm,
        input_rows: float,
        num_groups: float,
        workers: float,
        backend: str = "thread",
    ) -> float:
        """Cost of the parallel-loop grouping variant: the serial work
        divides across the backend's :meth:`effective_workers`, then the
        partials merge, plus per-worker dispatch. The process backend
        additionally ships ``workers x num_groups`` partial rows back over
        the queue. At ``workers = 1`` this is strictly worse than
        :meth:`grouping_cost` — the optimiser then rightly keeps the
        serial loop."""
        w = max(float(workers), 1.0)
        ew = self.effective_workers(w, backend)
        serial = self.grouping_cost(algorithm, input_rows, num_groups)
        cost = (
            serial / ew
            + self.parallel_merge_cost(num_groups, w)
            + w * self.dispatch_cost(backend)
        )
        if backend == "process":
            cost += self.ipc_row_cost() * w * max(float(num_groups), 1.0)
        return cost

    def parallel_join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
        workers: float,
        backend: str = "thread",
    ) -> float:
        """Cost of the shared-build, sharded-probe join variant: the
        build phase stays serial (erected once — in shared memory for the
        process backend), the probe phase divides across the backend's
        :meth:`effective_workers`, plus per-worker dispatch. The process
        backend ships one output index pair per probe row back over the
        queue. Strictly worse than :meth:`join_cost` at ``workers = 1``."""
        w = max(float(workers), 1.0)
        ew = self.effective_workers(w, backend)
        serial = self.join_cost(algorithm, left_rows, right_rows, num_groups)
        build = min(
            self.join_build_cost(algorithm, left_rows, right_rows, num_groups),
            serial,
        )
        cost = build + (serial - build) / ew + w * self.dispatch_cost(backend)
        if backend == "process":
            cost += self.ipc_row_cost() * max(float(right_rows), 1.0)
        return cost

    # -- exchange (hash repartition) variants ------------------------------

    def exchange_grouping_cost(
        self,
        algorithm: GroupingAlgorithm,
        input_rows: float,
        num_groups: float,
        workers: float,
        backend: str = "thread",
    ) -> float:
        """Cost of grouping through an exchange: one partition pass over
        the input (hash + stable reorder, ~2 touches per row), local
        grouping on disjoint partitions, and a merge that only
        concatenates sorted runs (linear in ``num_groups``, *not* the
        ``workers x num_groups`` sort of :meth:`parallel_merge_cost`) —
        the exchange's niche at huge group counts."""
        w = max(float(workers), 1.0)
        ew = self.effective_workers(w, backend)
        partition = 2.0 * max(float(input_rows), 1.0)
        local = self.grouping_cost(algorithm, input_rows, num_groups) / ew
        merge = max(float(num_groups), 1.0)
        cost = partition + local + merge + w * self.dispatch_cost(backend)
        if backend == "process":
            cost += self.ipc_row_cost() * max(float(num_groups), 1.0)
        return cost

    def exchange_join_cost(
        self,
        algorithm: JoinAlgorithm,
        left_rows: float,
        right_rows: float,
        num_groups: float,
        workers: float,
        backend: str = "thread",
    ) -> float:
        """Cost of joining through an exchange: both sides partition
        (~2 touches per row each), the partition-local joins — *including
        their build phases*, which the shared-build variant cannot
        parallelise — divide across workers, and the probe-major order is
        restored by one sort of the output. The exchange's niche is a
        huge build side."""
        w = max(float(workers), 1.0)
        ew = self.effective_workers(w, backend)
        rows_out = max(float(right_rows), 1.0)
        partition = 2.0 * (max(float(left_rows), 1.0) + rows_out)
        local = self.join_cost(algorithm, left_rows, right_rows, num_groups) / ew
        restore = rows_out * (math.log2(rows_out) if rows_out > 1 else 0.0)
        cost = partition + local + restore + w * self.dispatch_cost(backend)
        if backend == "process":
            cost += self.ipc_row_cost() * rows_out
        return cost
