"""Cost models: the paper's Table 2, a calibrated fit, and cardinalities."""

from repro.core.cost.calibrated import (
    CalibratedCostModel,
    Sample,
    calibrate_grouping,
    fit_coefficients,
    measure_grouping_samples,
)
from repro.core.cost.cardinality import CardinalityEstimator, RelationEstimate
from repro.core.cost.model import CostModel
from repro.core.cost.paper import AccessPathCostModel, PaperCostModel

__all__ = [
    "AccessPathCostModel",
    "CalibratedCostModel",
    "CardinalityEstimator",
    "CostModel",
    "PaperCostModel",
    "RelationEstimate",
    "Sample",
    "calibrate_grouping",
    "fit_coefficients",
    "measure_grouping_samples",
]
