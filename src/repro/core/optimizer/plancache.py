"""The optimiser plan cache: memoised :class:`OptimizationResult`s.

Deep query optimisation pays for its plan quality with enumeration
effort (§4.3's search-statistics tables); a plan cache amortises that
effort across repeated queries, which is how the paper's "longterm
vision" (§6) expects DQO to stay affordable in steady state: the deep
search runs once per (query shape, catalog state) and every repetition
reuses the verdict.

Cache keys combine

* a normalised **query fingerprint** — scans with their pushed-down
  filter conjuncts (order-insensitive), the join-edge set
  (order-insensitive), grouping, aggregates, decoration — so two
  syntactically shuffled but equivalent :class:`QuerySpec`s share an
  entry;
* the **catalog fingerprint** — identity token plus mutation version
  (:meth:`repro.storage.catalog.Catalog.fingerprint`), so registering,
  replacing (fresh statistics), or unregistering a table, or adding a
  constraint, invalidates every plan optimised against the old state;
* the **configuration and cost model identity**, and the executor
  **worker count** — a plan costed for 4 workers is not the plan for 1.

Entries evict LRU. Hits return a fresh :class:`OptimizationResult`
carrying the cached plan with zeroed :class:`SearchStats` and
``cached=True`` — a hit does no enumeration and no property closures.
Lookups report ``optimizer.plancache.{hit,miss}`` (and evictions) to the
process-wide metrics registry when observability is enabled.

The cache is opt-in: pass one to
:class:`~repro.core.optimizer.dp.DynamicProgrammingOptimizer`, or
install a process-wide default with :func:`enable_plan_cache`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.core.optimizer.base import (
    OptimizationResult,
    OptimizerConfig,
    SearchStats,
)
from repro.obs.runtime import get_metrics

if TYPE_CHECKING:
    from repro.core.cost.model import CostModel
    from repro.core.optimizer.query import QuerySpec
    from repro.storage.catalog import Catalog

#: default LRU capacity of a plan cache.
DEFAULT_CAPACITY = 128


def spec_fingerprint(spec: "QuerySpec") -> str:
    """A stable digest of a normalised query specification.

    Scan order is significant (join edges address scans by index), but
    the filter conjuncts within a scan and the join-edge set are sorted:
    conjunction and edge-set order don't change the query.
    """
    parts: list[str] = []
    for scan in spec.scans:
        conjuncts = " & ".join(sorted(repr(f) for f in scan.filters))
        parts.append(f"scan {scan.table_name} as {scan.alias} [{conjuncts}]")
    for edge in sorted(
        (e.left_scan, e.right_scan, e.left_column, e.right_column)
        for e in spec.joins
    ):
        parts.append(f"join {edge}")
    parts.append(f"group {spec.group_key!r}")
    parts.append(f"aggs {[repr(a) for a in spec.aggregates]}")
    if spec.final_outputs is None:
        parts.append("out *")
    else:
        parts.append(
            "out "
            + "; ".join(f"{alias} = {expr!r}" for alias, expr in spec.final_outputs)
        )
    parts.append(f"order {list(spec.order_by)}")
    parts.append(f"limit {spec.limit}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def config_fingerprint(config: OptimizerConfig) -> tuple:
    """The configuration dials a cached plan depends on. View registries
    are compared by identity: registering/dropping views swaps the
    registry object in a fresh config (they are also mutable — callers
    mutating a registry in place must :meth:`PlanCache.clear`)."""
    return (
        config.max_granularity,
        config.property_scope,
        config.consider_commutation,
        config.consider_enforcers,
        config.prune_dominated,
        getattr(config, "backend", "thread"),
        id(config.views) if config.views is not None else None,
    )


def _cost_model_fingerprint(cost_model: "CostModel") -> tuple:
    """Delegates to :meth:`CostModel.cache_fingerprint`: stateless models
    fingerprint by class (entries shared across instances), stateful ones
    by instance identity. A model mutated *in place* keeps its identity —
    callers doing that must :meth:`PlanCache.clear` (refitting normally
    produces a new instance)."""
    return cost_model.cache_fingerprint()


class _CacheEntry:
    """One cached result plus its bookkeeping (hits, insertion time)."""

    __slots__ = ("result", "hits", "created_at")

    def __init__(self, result: OptimizationResult) -> None:
        self.result = result
        self.hits = 0
        self.created_at = time.monotonic()


class PlanCache:
    """A thread-safe LRU cache of optimisation results."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained entries."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that required a fresh search."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries displaced by the LRU policy."""
        return self._evictions

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self,
        spec: "QuerySpec",
        catalog: "Catalog",
        config: OptimizerConfig,
        cost_model: "CostModel",
        workers: int,
    ) -> tuple:
        """The cache key of one optimisation request."""
        return (
            spec_fingerprint(spec),
            catalog.fingerprint(),
            config_fingerprint(config),
            _cost_model_fingerprint(cost_model),
            int(workers),
        )

    def get(self, key: tuple) -> OptimizationResult | None:
        """The cached result under ``key``, or None.

        A hit returns a *fresh* :class:`OptimizationResult` sharing the
        (immutable) plan tree but carrying zeroed search stats and
        ``cached=True``; the stored entry is untouched.
        """
        metrics = get_metrics()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                if metrics.enabled:
                    metrics.counter(
                        "optimizer.plancache.miss", exist_ok=True
                    ).inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            entry.hits += 1
        if metrics.enabled:
            metrics.counter("optimizer.plancache.hit", exist_ok=True).inc()
        return replace(
            entry.result,
            stats=SearchStats(),
            alternatives=list(entry.result.alternatives),
            cached=True,
            # A cached verdict ran no search, so it carries no decision
            # trace — without this, replace() would leak the stored
            # result's stamp into every hit.
            search_trace=None,
        )

    def put(self, key: tuple, result: OptimizationResult) -> None:
        """Store ``result`` under ``key``, evicting LRU entries beyond
        capacity."""
        evicted = 0
        with self._lock:
            self._entries[key] = _CacheEntry(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter(
                    "optimizer.plancache.evictions", exist_ok=True
                ).inc(evicted)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def info(self) -> dict:
        """A JSON-friendly snapshot of the cache state."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def entry_stats(self, limit: int | None = None) -> list[dict]:
        """Per-entry statistics, hottest first: the spec fingerprint and
        plan hash each entry serves, its hit count, and its age.

        ``limit`` caps the rows (None = all). A cache key's first
        component is the spec fingerprint (see :meth:`key_for`), so
        entries are attributable back to query-log rows carrying the
        same ``spec_fingerprint``.
        """
        now = time.monotonic()
        with self._lock:
            rows = [
                {
                    "spec_fingerprint": key[0],
                    "plan_hash": entry.result.plan_fingerprint,
                    "hits": entry.hits,
                    "age_seconds": now - entry.created_at,
                    "cost": entry.result.cost,
                    "workers": key[4],
                }
                for key, entry in self._entries.items()
            ]
        rows.sort(key=lambda row: (-row["hits"], row["age_seconds"]))
        return rows if limit is None else rows[: max(int(limit), 0)]


# -- process-wide default cache (opt-in) -----------------------------------

_global_cache: PlanCache | None = None
_global_lock = threading.Lock()


def get_plan_cache() -> PlanCache | None:
    """The process-wide plan cache, or None when caching is disabled
    (the default)."""
    return _global_cache


def set_plan_cache(cache: PlanCache | None) -> None:
    """Install (or, with None, remove) the process-wide plan cache."""
    global _global_cache
    with _global_lock:
        _global_cache = cache


def enable_plan_cache(capacity: int = DEFAULT_CAPACITY) -> PlanCache:
    """Install a process-wide plan cache and return it. Idempotent: an
    already-installed cache is returned unchanged (capacity ignored)."""
    global _global_cache
    with _global_lock:
        if _global_cache is None:
            _global_cache = PlanCache(capacity)
        return _global_cache


def disable_plan_cache() -> None:
    """Remove the process-wide plan cache."""
    set_plan_cache(None)
