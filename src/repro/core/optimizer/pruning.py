"""Dominance pruning over (cost, property-vector) Pareto frontiers.

§2.2: *"these properties can be considered and handled very similarly to
how interesting properties are handled in dynamic programming. If any
subcomponent in DQO produces an output with such a property, we must not
discard that information."* — so each DP equivalence class keeps not one
best plan but a Pareto frontier: entry A makes entry B redundant only if
A costs no more *and* guarantees every property B does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost.cardinality import RelationEstimate
from repro.core.optimizer.base import SearchStats
from repro.core.plan import PhysicalNode
from repro.core.properties import PropertyVector


@dataclass(frozen=True)
class DPEntry:
    """One retained subplan: plan, cost, properties, and cardinality."""

    plan: PhysicalNode
    cost: float
    properties: PropertyVector
    estimate: RelationEstimate


def dominates(a: DPEntry, b: DPEntry) -> bool:
    """Entry ``a`` makes ``b`` redundant: cheaper-or-equal and at least as
    strong properties."""
    return a.cost <= b.cost and a.properties.covers(b.properties)


def pareto_insert(
    entries: list[DPEntry],
    candidate: DPEntry,
    stats: SearchStats,
    prune: bool = True,
    trace=None,
    cls: str = "",
) -> list[DPEntry]:
    """Insert ``candidate`` into a frontier, maintaining Pareto shape.

    With ``prune=False`` (the ablation's no-pruning mode) every candidate
    is retained, modelling a naive DP whose state grows unchecked.

    ``trace`` (a :class:`repro.obs.search.SearchTrace`, or None) journals
    each outcome — generated / kept / dominated-by-whom / displaced —
    under DP class ``cls``; the default None adds only these two branch
    checks to the hot path.
    """
    stats.generated += 1
    if trace is not None:
        trace.generated(cls, candidate)
    if not prune:
        entries.append(candidate)
        if trace is not None:
            trace.kept(cls, candidate)
        return entries
    for existing in entries:
        if dominates(existing, candidate):
            stats.pruned_dominated += 1
            if trace is not None:
                trace.dominated(cls, candidate, existing)
            return entries
    survivors = []
    for existing in entries:
        if dominates(candidate, existing):
            stats.displaced += 1
            if trace is not None:
                trace.displaced(cls, existing, candidate)
        else:
            survivors.append(existing)
    survivors.append(candidate)
    if trace is not None:
        trace.kept(cls, candidate)
    return survivors
