"""Deep query optimisation — the paper's contribution.

A thin convenience wrapper: the DQO configuration of the unified DP
(molecule-level reach, full §2.2 property vector).
"""

from __future__ import annotations

from repro.core.cost.model import CostModel
from repro.core.optimizer.base import OptimizationResult, dqo_config
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.logical.algebra import LogicalPlan
from repro.storage.catalog import Catalog


def optimize_dqo(
    plan: LogicalPlan,
    catalog: Catalog,
    cost_model: CostModel | None = None,
    **config_overrides,
) -> OptimizationResult:
    """Optimise ``plan`` deeply (§4.3's DQO side)."""
    optimizer = DynamicProgrammingOptimizer(
        catalog, cost_model, dqo_config(**config_overrides)
    )
    return optimizer.optimize(plan)
