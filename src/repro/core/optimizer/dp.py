"""Property-vector dynamic programming — the unified SQO/DQO optimiser.

The DP is the classical join-order DPsub enriched exactly as §2.2
prescribes: per plan class (subset of scans, and finally the group-by
stage), a *Pareto frontier* of (cost, property-vector) entries is kept
instead of one best plan, because a more expensive subplan with stronger
properties (sorted! dense!) can win globally. §4.3's experiment is this
machinery with two configurations (see :mod:`repro.core.optimizer.base`).

Supported query class: conjunctive equi-join queries over base tables
with single-table filters, at most one group-by (on top), and trailing
project / order-by / limit — a superset of the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations

import numpy as np

from repro.core.cost.cardinality import CardinalityEstimator, RelationEstimate
from repro.core.cost.model import CostModel
from repro.core.cost.paper import PaperCostModel
from repro.core.optimizer.base import (
    OptimizationResult,
    OptimizerConfig,
    PropertyScope,
    SearchStats,
    dqo_config,
)
from repro.core.optimizer.plancache import (
    PlanCache,
    get_plan_cache,
    spec_fingerprint,
)
from repro.core.optimizer.pruning import DPEntry, pareto_insert
from repro.core.optimizer.query import QuerySpec, ScanSpec, extract_query
from repro.core.optimizer.rules import (
    GroupingOption,
    JoinOption,
    grouping_options,
    join_options,
)
from repro.core.plan import PhysicalNode, plan_decisions, plan_fingerprint
from repro.core.properties import (
    Correlations,
    PropertyVector,
    correlations_from_table,
    properties_from_table,
)
from repro.engine.kernels.joins import JoinAlgorithm
from repro.engine.parallel import get_executor_config
from repro.errors import OptimizationError
from repro.service.context import check_active_context, get_active_context
from repro.obs.querylog import get_query_log
from repro.obs.runtime import get_metrics, get_tracer
from repro.obs.search.trace import get_search_trace
from repro.logical.algebra import LogicalPlan
from repro.storage.catalog import Catalog
from repro.storage.disk import is_disk_table

#: join algorithm -> the Algorithmic View kind whose presence on the build
#: side's (table, column) waives the build-phase cost (§3).
_JOIN_VIEW_KINDS = {
    JoinAlgorithm.HJ: "hash_table",
    JoinAlgorithm.SPHJ: "sph_array",
    JoinAlgorithm.BSJ: "sorted_keys",
    JoinAlgorithm.SOJ: "sorted_projection",
}


def _range_bounds(filters, column: str, value_min: int, value_max: int):
    """Inclusive [low, high] bounds on ``column`` implied by conjuncts.

    Returns None when no conjunct constrains the column, or when any
    conjunct on it is not a simple ``column <op> literal`` comparison
    (those shapes an unclustered B-tree cannot serve).
    """
    from repro.engine.expressions import BinaryOp, ColumnRef, Literal

    low, high = value_min, value_max
    constrained = False
    for conjunct in filters:
        if column not in conjunct.referenced_columns():
            continue
        if not isinstance(conjunct, BinaryOp):
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            # Normalise to column-on-the-left.
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (
            isinstance(left, ColumnRef)
            and left.name == column
            and isinstance(right, Literal)
        ):
            return None
        value = int(right.value)
        if op == "=":
            low, high = max(low, value), min(high, value)
        elif op == ">=":
            low = max(low, value)
        elif op == ">":
            low = max(low, value + 1)
        elif op == "<=":
            high = min(high, value)
        elif op == "<":
            high = min(high, value - 1)
        else:
            return None  # '<>' and friends
        constrained = True
    return (low, high) if constrained else None


def base_access_cost(
    cost_model: CostModel, table, predicates=(), alias: str = ""
) -> tuple[float, float]:
    """``(cost, rows_touched)`` of the cheapest base access to ``table``.

    In-memory tables cost a plain scan over every row. Disk-resident
    tables cost :meth:`~repro.core.cost.model.CostModel.disk_scan_cost`
    over the rows the zone maps cannot prune for ``predicates``, with
    the buffer pool's current residency discounting the cold-read term
    and the table's encoding mix pricing the decode. Shared by the DP
    and the exhaustive oracle so both cost the identical access path.
    """
    rows = float(table.num_rows)
    if not is_disk_table(table):
        return cost_model.scan_cost(rows), rows
    estimate = table.estimate_scan(tuple(predicates), alias)
    decode = sum(
        fraction * cost_model.io_decode_weight(encoding)
        for encoding, fraction in table.encoding_mix().items()
    )
    touched = float(estimate.rows_scanned)
    cost = cost_model.disk_scan_cost(touched, table.buffer_residency(), decode)
    return cost, touched


@dataclass
class _ScanContext:
    """Precomputed per-scan facts the DP consults."""

    spec: ScanSpec
    estimate: RelationEstimate
    properties: PropertyVector
    columns: list[str]
    interesting: list[str] = field(default_factory=list)
    #: qualified join-key columns owned by this scan (a dictionary view
    #: must never re-encode one: codes would no longer join with the
    #: other side's raw values).
    join_keys: set[str] = field(default_factory=set)
    #: the query's group key, when this scan owns it.
    group_key: str = ""


class DynamicProgrammingOptimizer:
    """The unified optimiser; configuration selects SQO vs DQO behaviour."""

    def __init__(
        self,
        catalog: Catalog,
        cost_model: CostModel | None = None,
        config: OptimizerConfig | None = None,
        plan_cache: PlanCache | None = None,
        trace=None,
    ) -> None:
        self._catalog = catalog
        self._cost_model = cost_model or PaperCostModel()
        self._config = config or dqo_config()
        self._estimator = CardinalityEstimator(catalog)
        self._stats = SearchStats()  # rebound per optimize_spec() call
        self._plan_cache = plan_cache
        self._workers = 1  # rebound per optimize_spec() call
        #: pinned :class:`repro.obs.search.SearchTrace`; None falls back
        #: to the process-wide handle at each optimise call.
        self._trace_arg = trace
        self._trace = None  # the resolved trace, rebound per call
        self._trace_cls = ""  # current DP class label for trace events

    @property
    def config(self) -> OptimizerConfig:
        """The active configuration."""
        return self._config

    def _insert(
        self, entries: list[DPEntry], candidate: DPEntry, stats: SearchStats
    ) -> list[DPEntry]:
        """Frontier insertion policy; subclasses may override (the greedy
        baseline keeps only the cheapest entry)."""
        return pareto_insert(
            entries,
            candidate,
            stats,
            self._config.prune_dominated,
            trace=self._trace,
            cls=self._trace_cls,
        )

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        """Optimise a logical plan into an annotated physical plan."""
        return self.optimize_spec(extract_query(plan))

    def optimize_spec(self, spec: QuerySpec) -> OptimizationResult:
        """Optimise a pre-extracted :class:`QuerySpec`.

        The configuration's worker count (``config.workers``; ``None``
        resolves the ambient
        :func:`repro.engine.parallel.get_executor_config`) scopes the
        implementation space: with more than one worker the deep
        enumeration includes the lattice's parallel-loop recipes, costed
        against their serial siblings. When a plan cache is attached
        (constructor argument, else the process-wide
        :func:`~repro.core.optimizer.plancache.get_plan_cache`), a
        fingerprint match on an unchanged catalog returns the memoised
        plan without any enumeration (``result.cached`` is True and the
        search stats stay zero).
        """
        self._workers = max(
            self._config.workers
            if self._config.workers is not None
            else get_executor_config().workers,
            1,
        )
        trace = (
            self._trace_arg
            if self._trace_arg is not None
            else get_search_trace()
        )
        if trace is not None and not trace.enabled:
            trace = None
        self._trace = trace
        self._trace_cls = ""
        spec_fp = spec_fingerprint(spec)
        cache = self._plan_cache if self._plan_cache is not None else get_plan_cache()
        cache_key: tuple | None = None
        if cache is not None:
            cache_key = cache.key_for(
                spec, self._catalog, self._config, self._cost_model, self._workers
            )
            hit = cache.get(cache_key)
            if hit is not None:
                query_log = get_query_log()
                if query_log is not None:
                    # Cached rows carry the cached plan's hash too, so a
                    # plan flip stays attributable even when every
                    # repetition resolves from the cache.
                    query_log.append(
                        {
                            "kind": "optimize",
                            "cached": True,
                            "cost": hit.cost,
                            "estimated_rows": hit.estimated_rows,
                            "scans": len(spec.scans),
                            "deep": self._config.is_deep,
                            "workers": self._workers,
                            "backend": self._config.backend,
                            "plan_hash": hit.plan_fingerprint,
                            "spec_fingerprint": hit.spec_fingerprint
                            or spec_fp,
                            "catalog_version": self._catalog.version,
                        }
                    )
                return hit
        stats = SearchStats()
        self._stats = stats
        if trace is not None:
            trace.begin(
                spec_fp,
                scans=len(spec.scans),
                deep=self._config.is_deep,
                workers=self._workers,
                catalog_version=self._catalog.version,
            )
        tracer = get_tracer()
        self._aggregate_columns = {
            aggregate.column
            for aggregate in spec.aggregates
            if aggregate.column is not None
        }
        active = get_active_context()
        span_tags = {"scans": len(spec.scans), "deep": self._config.is_deep}
        if active is not None:
            span_tags["trace_id"] = active.trace_id
            span_tags["query_id"] = active.query_id
        with tracer.span("optimizer.optimize", **span_tags):
            contexts, correlations = self._prepare_contexts(spec)
            with tracer.span("optimizer.join_dp"):
                frontier = self._join_dp(spec, contexts, correlations, stats)
            with tracer.span("optimizer.grouping"):
                finals = self._apply_grouping(
                    spec, frontier, correlations, stats
                )
                finals = [
                    self._apply_decoration(spec, entry, stats)
                    for entry in finals
                ]
        if not finals:
            raise OptimizationError("no applicable plan found")
        finals.sort(key=lambda entry: entry.cost)
        stats.retained += len(finals)
        self._report_metrics(stats, traced=trace is not None)
        best = finals[0]
        plan_hash = plan_fingerprint(best.plan)
        trace_stamp = None
        if trace is not None:
            # Journal the complete decorated plans, best-first: rank 0 is
            # the verdict, so a replay can reconstruct it exactly.
            for rank, entry in enumerate(finals[:8]):
                trace.finalist(
                    rank,
                    entry,
                    plan_hash if rank == 0 else plan_fingerprint(entry.plan),
                )
            trace_stamp = trace.finish(plan_hash, best.cost, stats.as_dict())
        query_log = get_query_log()
        if query_log is not None:
            row = {
                "kind": "optimize",
                "plan": best.plan.explain(),
                "cost": best.cost,
                "estimated_rows": best.plan.rows,
                "scans": len(spec.scans),
                "deep": self._config.is_deep,
                "workers": self._workers,
                "backend": self._config.backend,
                "plan_hash": plan_hash,
                "spec_fingerprint": spec_fp,
                "catalog_version": self._catalog.version,
                "search": stats.as_dict(),
                "decisions": plan_decisions(best.plan),
            }
            if trace_stamp is not None:
                row["search_trace"] = trace_stamp
            query_log.append(row)
        result = OptimizationResult(
            plan=best.plan,
            cost=best.cost,
            config=self._config,
            estimated_rows=best.plan.rows,
            stats=stats,
            alternatives=[entry.plan for entry in finals[1:6]],
            plan_fingerprint=plan_hash,
            spec_fingerprint=spec_fp,
            search_trace=trace_stamp,
        )
        if cache is not None and cache_key is not None:
            cache.put(cache_key, result)
        return result

    @staticmethod
    def _report_metrics(stats: SearchStats, traced: bool = False) -> None:
        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.counter("optimizer.optimizations", exist_ok=True).inc()
        metrics.counter("optimizer.candidates_generated", exist_ok=True).inc(
            stats.generated
        )
        metrics.counter("optimizer.pruned_dominated", exist_ok=True).inc(
            stats.pruned_dominated
        )
        metrics.counter("optimizer.closures", exist_ok=True).inc(
            stats.closures
        )
        # Search-observatory telemetry (PR 8): frontier-churn detail and
        # how many searches ran with a decision trace attached.
        metrics.counter("optimizer.search.displaced", exist_ok=True).inc(
            stats.displaced
        )
        metrics.counter("optimizer.search.truncated", exist_ok=True).inc(
            stats.truncated
        )
        metrics.counter("optimizer.search.retained", exist_ok=True).inc(
            stats.retained
        )
        if traced:
            metrics.counter("optimizer.search.traced", exist_ok=True).inc()

    # -- preparation ---------------------------------------------------------

    def _prepare_contexts(
        self, spec: QuerySpec
    ) -> tuple[list[_ScanContext], Correlations]:
        correlations = Correlations()
        contexts: list[_ScanContext] = []
        for scan in spec.scans:
            table = self._catalog.table(scan.table_name)
            estimate = self._estimator.base_table(scan.table_name, scan.alias)
            properties = properties_from_table(table, scan.alias)
            correlations = correlations.merged(
                correlations_from_table(table, scan.alias)
            )
            if scan.filters:
                selectivity = self._exact_selectivity(scan)
                rows = max(estimate.rows * selectivity, 0.0)
                estimate = RelationEstimate(
                    rows=rows,
                    distinct={
                        column: min(ndv, rows)
                        for column, ndv in estimate.distinct.items()
                    },
                )
                # Filtering preserves order but punches holes into dense
                # domains (§2.2: density is a DQO property the filter
                # must be assumed to destroy unless it kept everything).
                if selectivity < 1.0:
                    properties = PropertyVector(
                        sorted_on=properties.sorted_on,
                        clustered_on=properties.clustered_on,
                        dense=frozenset(),
                    )
            if self._config.property_scope is PropertyScope.ORDERS:
                properties = properties.restrict_to_orders()
            self._stats.closures += 1
            properties = correlations.close_sorted(properties)
            contexts.append(
                _ScanContext(
                    spec=scan,
                    estimate=estimate,
                    properties=properties,
                    columns=[
                        f"{scan.alias}.{name}" for name in table.schema.names
                    ],
                )
            )
        # Interesting columns: join keys + group key + order-by keys.
        for edge in spec.joins:
            contexts[edge.left_scan].interesting.append(edge.left_column)
            contexts[edge.right_scan].interesting.append(edge.right_column)
            contexts[edge.left_scan].join_keys.add(edge.left_column)
            contexts[edge.right_scan].join_keys.add(edge.right_column)
        for column in list(spec.order_by) + (
            [spec.group_key] if spec.group_key else []
        ):
            try:
                owner = spec.scan_of_column(column)
            except Exception:
                continue
            contexts[owner].interesting.append(column)
            if column == spec.group_key:
                contexts[owner].group_key = column
        return contexts, correlations

    def _exact_selectivity(self, scan: ScanSpec) -> float:
        """Evaluate the scan's filter conjuncts against the base table.

        Exact selectivities keep estimation error out of the experiments —
        cardinality estimation is not the phenomenon under study.
        """
        base = self._catalog.table(scan.table_name)
        if is_disk_table(base):
            # Segment-by-segment through the buffer pool: bounded memory,
            # zone-map-pruned segments never read — and the same exact
            # number the in-memory path computes, so plans agree.
            return base.exact_selectivity(scan.filters, scan.alias)
        table = base.qualified(scan.alias)
        if table.num_rows == 0:
            return 0.0
        data = {name: table[name] for name in table.schema.names}
        mask = np.ones(table.num_rows, dtype=bool)
        for conjunct in scan.filters:
            mask &= np.asarray(conjunct.evaluate(data), dtype=bool)
        return float(np.count_nonzero(mask)) / table.num_rows

    # -- base entries ---------------------------------------------------------

    def _base_entries(
        self, context: _ScanContext, stats: SearchStats
    ) -> list[DPEntry]:
        scan = context.spec
        if self._trace is not None:
            self._trace_cls = f"scan:{scan.alias}"
        base_rows = float(self._catalog.cardinality(scan.table_name))
        memory_cost = self._cost_model.scan_cost(base_rows)
        table = self._catalog.table(scan.table_name)
        storage = ""
        pushed: tuple = ()
        scan_rows = base_rows
        scan_cost = memory_cost
        if is_disk_table(table):
            # Out-of-core scan: zone maps bound what the scan touches,
            # residency discounts the cold-read weight, and the table's
            # encoding mix prices the decode (all manifest-only facts).
            storage = "disk"
            pushed = tuple(scan.filters)
            scan_cost, scan_rows = base_access_cost(
                self._cost_model, table, pushed, scan.alias
            )
        node = PhysicalNode(
            op="scan",
            table_name=scan.table_name,
            alias=scan.alias,
            scan_storage=storage,
            scan_predicates=pushed,
            rows=scan_rows,
            local_cost=scan_cost,
            cost=scan_cost,
            properties=context.properties,
        )
        for predicate in scan.filters:
            node = PhysicalNode(
                op="filter",
                children=(node,),
                predicate=predicate,
                rows=context.estimate.rows,
                local_cost=0.0,
                cost=node.cost,
                properties=context.properties,
            )
        entries: list[DPEntry] = []
        entries = self._insert(
            entries,
            DPEntry(node, node.cost, context.properties, context.estimate),
            stats,
        )
        # Algorithmic sorted-projection views: order for free (§3).
        views = self._config.views
        if views is not None and not scan.filters:
            av_node = node
            if storage:
                # AV artifacts are in-memory materialisations (lowering
                # reads the artifact, never the segments), but an AV
                # scan is costed like the base scan: views must stay
                # cost-neutral access paths whose only value is the
                # property they manufacture — SQO must not see a
                # cheaper scan where DQO sees a property.
                av_node = replace(node, scan_storage="", scan_predicates=())
            for column in views.sorted_scan_columns(scan.table_name):
                qualified = f"{scan.alias}.{column}"
                if context.properties.is_sorted_on(qualified):
                    continue
                properties = self._close(
                    context.properties.with_sorted(qualified)
                )
                entries = self._insert(
                    entries,
                    DPEntry(
                        replace(
                            av_node,
                            properties=properties,
                            scan_view=("sorted_projection", column),
                        ),
                        av_node.cost,
                        properties,
                        context.estimate,
                    ),
                    stats,
                )
            # Dictionary views: density for free (§2.1 — the codes of a
            # dictionary-compressed column directly feed SPH). Safe only
            # for the grouping key: codes must neither join against raw
            # values nor feed value aggregates, and the group keys are
            # decoded after the group-by (see core.plan.to_operator).
            for column in views.dense_scan_columns(scan.table_name):
                qualified = f"{scan.alias}.{column}"
                if (
                    qualified != context.group_key
                    or qualified in context.join_keys
                    or qualified in self._aggregate_columns
                    or context.properties.is_dense(qualified)
                ):
                    continue
                properties = self._close(
                    context.properties.with_dense(qualified)
                )
                entries = self._insert(
                    entries,
                    DPEntry(
                        replace(
                            av_node,
                            properties=properties,
                            scan_view=("dictionary", column),
                        ),
                        av_node.cost,
                        properties,
                        context.estimate,
                    ),
                    stats,
                )
        # Unclustered B-tree access path (§1: "unclustered B-tree vs
        # scan"): serve a range/equality filter from an index view.
        # Output rows arrive in index (value) order: sorted on the
        # column, an access-path decision with a property side effect.
        if views is not None and scan.filters:
            base_rows = float(self._catalog.cardinality(scan.table_name))
            for column in views.btree_scan_columns(scan.table_name):
                qualified = f"{scan.alias}.{column}"
                column_stats = self._catalog.column_statistics(
                    scan.table_name, column
                )
                if column_stats.count == 0:
                    continue
                bounds = _range_bounds(
                    scan.filters,
                    qualified,
                    int(column_stats.minimum),
                    int(column_stats.maximum),
                )
                if bounds is None:
                    continue
                cost = self._cost_model.index_scan_cost(
                    base_rows, context.estimate.rows
                )
                properties = self._close(
                    PropertyVector(sorted_on=frozenset([qualified]))
                )
                index_node = PhysicalNode(
                    op="scan",
                    table_name=scan.table_name,
                    alias=scan.alias,
                    scan_view=("btree", column),
                    index_range=bounds,
                    rows=context.estimate.rows,
                    local_cost=cost,
                    cost=cost,
                    properties=properties,
                )
                wrapped = index_node
                for predicate in scan.filters:
                    wrapped = PhysicalNode(
                        op="filter",
                        children=(wrapped,),
                        predicate=predicate,
                        rows=context.estimate.rows,
                        cost=cost,
                        properties=properties,
                    )
                entries = self._insert(
                    entries,
                    DPEntry(wrapped, cost, properties, context.estimate),
                    stats,
                )
        # Sort enforcers on interesting columns.
        if self._config.consider_enforcers:
            for column in dict.fromkeys(context.interesting):
                if context.properties.is_sorted_on(column):
                    continue
                sort_cost = self._cost_model.sort_cost(context.estimate.rows)
                properties = self._close(
                    PropertyVector(
                        sorted_on=frozenset([column]),
                        dense=context.properties.dense,
                    )
                )
                sorted_node = PhysicalNode(
                    op="sort",
                    children=(node,),
                    sort_keys=(column,),
                    rows=context.estimate.rows,
                    local_cost=sort_cost,
                    cost=node.cost + sort_cost,
                    properties=properties,
                )
                entries = self._insert(
                    entries,
                    DPEntry(
                        sorted_node,
                        sorted_node.cost,
                        properties,
                        context.estimate,
                    ),
                    stats,
                )
        return entries

    def _close(self, properties: PropertyVector) -> PropertyVector:
        self._stats.closures += 1
        properties = self._correlations_cache.close_sorted(properties)
        if self._config.property_scope is PropertyScope.ORDERS:
            return properties.restrict_to_orders()
        return properties

    # -- join enumeration ------------------------------------------------------

    def _join_dp(
        self,
        spec: QuerySpec,
        contexts: list[_ScanContext],
        correlations: Correlations,
        stats: SearchStats,
    ) -> list[DPEntry]:
        self._correlations_cache = correlations
        count = len(contexts)
        table: dict[frozenset[int], list[DPEntry]] = {}
        for index, context in enumerate(contexts):
            table[frozenset([index])] = self._base_entries(context, stats)
        stats.table_entries_by_size[1] = sum(
            len(entries) for entries in table.values()
        )
        if count == 1:
            return table[frozenset([0])]
        options = join_options(self._config, self._workers)
        all_scans = frozenset(range(count))
        for size in range(2, count + 1):
            size_entries = 0
            for subset_tuple in combinations(range(count), size):
                # Enumeration is the service's other unbounded loop: a
                # deep search over a large join graph can outlast a
                # deadline before execution even starts, so poll per
                # plan class.
                check_active_context()
                subset = frozenset(subset_tuple)
                if self._trace is not None:
                    self._trace_cls = "join:" + "+".join(
                        sorted(contexts[i].spec.alias for i in subset)
                    )
                entries: list[DPEntry] = []
                for split_size in range(1, size):
                    for part in combinations(sorted(subset), split_size):
                        left_set = frozenset(part)
                        right_set = subset - left_set
                        if min(left_set) != min(subset):
                            continue  # canonical split: avoid mirror pairs
                        entries = self._combine(
                            spec,
                            table.get(left_set, []),
                            table.get(right_set, []),
                            left_set,
                            right_set,
                            options,
                            correlations,
                            entries,
                            stats,
                        )
                if entries:
                    table[subset] = entries
                    size_entries += len(entries)
            stats.table_entries_by_size[size] = size_entries
        result = table.get(all_scans, [])
        if not result:
            raise OptimizationError(
                "join graph is disconnected or no join implementation applies"
            )
        return result


    def _combine(
        self,
        spec: QuerySpec,
        left_entries: list[DPEntry],
        right_entries: list[DPEntry],
        left_set: frozenset[int],
        right_set: frozenset[int],
        options: list[JoinOption],
        correlations: Correlations,
        entries: list[DPEntry],
        stats: SearchStats,
    ) -> list[DPEntry]:
        for edge in spec.joins:
            sides = {edge.left_scan, edge.right_scan}
            if not (
                (edge.left_scan in left_set and edge.right_scan in right_set)
                or (edge.left_scan in right_set and edge.right_scan in left_set)
            ):
                continue
            # Syntactic orientation: the edge's left side builds.
            orientations = [(edge.left_scan, edge.right_scan)]
            if self._config.consider_commutation:
                orientations.append((edge.right_scan, edge.left_scan))
            for build_scan, probe_scan in orientations:
                build_key = (
                    edge.left_column
                    if build_scan == edge.left_scan
                    else edge.right_column
                )
                probe_key = (
                    edge.right_column
                    if probe_scan == edge.right_scan
                    else edge.left_column
                )
                if build_scan in left_set:
                    build_entries, probe_entries = left_entries, right_entries
                else:
                    build_entries, probe_entries = right_entries, left_entries
                fk = self._catalog.foreign_key_between(
                    *self._resolve(spec, build_key),
                    *self._resolve(spec, probe_key),
                )
                for build in build_entries:
                    for probe in probe_entries:
                        entries = self._try_join(
                            build,
                            probe,
                            build_key,
                            probe_key,
                            fk,
                            options,
                            correlations,
                            entries,
                            stats,
                            spec,
                        )
        return entries

    def _resolve(self, spec: QuerySpec, qualified: str) -> tuple[str, str]:
        """(table name, raw column name) of a qualified column."""
        scan = spec.scans[spec.scan_of_column(qualified)]
        return scan.table_name, qualified.split(".", 1)[1]

    def _try_join(
        self,
        build: DPEntry,
        probe: DPEntry,
        build_key: str,
        probe_key: str,
        fk,
        options: list[JoinOption],
        correlations: Correlations,
        entries: list[DPEntry],
        stats: SearchStats,
        spec: QuerySpec,
    ) -> list[DPEntry]:
        scope = self._config.property_scope
        fk_child_is_probe = bool(
            fk is not None
            and fk.child_table == self._resolve(spec, probe_key)[0]
            and fk.child_column == probe_key.split(".", 1)[1]
        )
        estimate = self._estimator.join(
            build.estimate,
            probe.estimate,
            build_key,
            probe_key,
            is_foreign_key=fk is not None,
            fk_child_is_right=fk_child_is_probe or fk is None,
        )
        group_hint = max(
            min(
                build.estimate.ndv(build_key), probe.estimate.ndv(probe_key)
            ),
            1.0,
        )
        for option in options:
            if not option.applicable(
                build.properties, probe.properties, build_key, probe_key, scope
            ):
                continue
            if option.exchange:
                cost = self._cost_model.exchange_join_cost(
                    option.algorithm,
                    build.estimate.rows,
                    probe.estimate.rows,
                    group_hint,
                    float(self._workers),
                    option.backend,
                )
            elif option.parallel:
                cost = self._cost_model.parallel_join_cost(
                    option.algorithm,
                    build.estimate.rows,
                    probe.estimate.rows,
                    group_hint,
                    float(self._workers),
                    option.backend,
                )
            else:
                cost = self._cost_model.join_cost(
                    option.algorithm,
                    build.estimate.rows,
                    probe.estimate.rows,
                    group_hint,
                )
            cost -= self._view_credit(option, build, build_key, group_hint, spec)
            properties = option.derive(
                build.properties,
                probe.properties,
                build_key,
                probe_key,
                correlations,
                scope,
            )
            node = PhysicalNode(
                op="join",
                children=(build.plan, probe.plan),
                join_algorithm=option.algorithm,
                left_key=build_key,
                right_key=probe_key,
                recipe=option.recipe,
                parallel=option.parallel,
                exchange=option.exchange,
                backend=option.backend,
                rows=estimate.rows,
                local_cost=cost,
                cost=build.cost + probe.cost + cost,
                estimated_groups=group_hint,
                properties=properties,
            )
            entries = self._insert(
                entries,
                DPEntry(node, node.cost, properties, estimate),
                stats,
            )
        return entries

    def _view_credit(
        self,
        option: JoinOption,
        build: DPEntry,
        build_key: str,
        group_hint: float,
        spec: QuerySpec,
    ) -> float:
        """Build-phase cost waived by a matching Algorithmic View (§3)."""
        views = self._config.views
        if views is None or build.plan.op != "scan":
            return 0.0
        kind = _JOIN_VIEW_KINDS.get(option.algorithm)
        if kind is None:
            return 0.0
        table_name, column = self._resolve(spec, build_key)
        if not views.has_view(kind, table_name, column):
            return 0.0
        return self._cost_model.join_build_cost(
            option.algorithm, build.estimate.rows, 0.0, group_hint
        )

    # -- grouping + decoration ---------------------------------------------------

    def _apply_grouping(
        self,
        spec: QuerySpec,
        frontier: list[DPEntry],
        correlations: Correlations,
        stats: SearchStats,
    ) -> list[DPEntry]:
        if spec.group_key is None:
            return list(frontier)
        if self._trace is not None:
            self._trace_cls = "group_by"
        scope = self._config.property_scope
        options = grouping_options(self._config, self._workers)
        key = spec.group_key
        results: list[DPEntry] = []
        candidates = list(frontier)
        if self._config.consider_enforcers:
            for entry in frontier:
                if entry.properties.is_sorted_on(key):
                    continue
                sort_cost = self._cost_model.sort_cost(entry.estimate.rows)
                properties = self._close(
                    PropertyVector(
                        sorted_on=frozenset([key]),
                        dense=entry.properties.dense,
                    )
                )
                node = PhysicalNode(
                    op="sort",
                    children=(entry.plan,),
                    sort_keys=(key,),
                    rows=entry.estimate.rows,
                    local_cost=sort_cost,
                    cost=entry.cost + sort_cost,
                    properties=properties,
                )
                candidates.append(
                    DPEntry(node, node.cost, properties, entry.estimate)
                )
        for entry in candidates:
            check_active_context()
            groups = entry.estimate.ndv(key)
            out_estimate = self._estimator.group_by(entry.estimate, key)
            for option in options:
                if not option.applicable(entry.properties, key, scope):
                    continue
                if option.exchange:
                    cost = self._cost_model.exchange_grouping_cost(
                        option.algorithm,
                        entry.estimate.rows,
                        groups,
                        float(self._workers),
                        option.backend,
                    )
                elif option.parallel:
                    cost = self._cost_model.parallel_grouping_cost(
                        option.algorithm,
                        entry.estimate.rows,
                        groups,
                        float(self._workers),
                        option.backend,
                    )
                else:
                    cost = self._cost_model.grouping_cost(
                        option.algorithm, entry.estimate.rows, groups
                    )
                cost -= self._grouping_view_credit(option, entry, key, groups, spec)
                properties = option.derive(
                    entry.properties, key, correlations, scope
                )
                node = PhysicalNode(
                    op="group_by",
                    children=(entry.plan,),
                    grouping_algorithm=option.algorithm,
                    group_key=key,
                    aggregates=spec.aggregates,
                    recipe=option.recipe,
                    parallel=option.parallel,
                    exchange=option.exchange,
                    backend=option.backend,
                    rows=out_estimate.rows,
                    local_cost=cost,
                    cost=entry.cost + cost,
                    estimated_groups=groups,
                    properties=properties,
                )
                results = self._insert(
                    results,
                    DPEntry(node, node.cost, properties, out_estimate),
                    stats,
                )
        return results

    def _grouping_view_credit(
        self,
        option: GroupingOption,
        entry: DPEntry,
        key: str,
        groups: float,
        spec: QuerySpec,
    ) -> float:
        views = self._config.views
        if views is None or entry.plan.op not in ("scan", "filter"):
            return 0.0
        try:
            table_name, column = self._resolve(spec, key)
        except Exception:
            return 0.0
        if not views.has_view("sorted_keys", table_name, column):
            return 0.0
        return self._cost_model.grouping_build_cost(
            option.algorithm, entry.estimate.rows, groups
        )

    def _apply_decoration(
        self, spec: QuerySpec, entry: DPEntry, stats: SearchStats
    ) -> DPEntry:
        node = entry.plan
        properties = entry.properties
        cost = entry.cost
        if spec.final_outputs is not None:
            kept = [alias for alias, __ in spec.final_outputs]
            properties = properties.restrict_to_columns(kept)
            # Project may rename; a rename of a guaranteed column keeps
            # its guarantee under the new name.
            renames = {
                expr.name: alias
                for alias, expr in spec.final_outputs
                if hasattr(expr, "name")
            }
            properties = PropertyVector(
                sorted_on=frozenset(
                    renames.get(c, c)
                    for c in entry.properties.sorted_on
                    if c in renames or c in kept
                ),
                clustered_on=frozenset(
                    renames.get(c, c)
                    for c in entry.properties.clustered_on
                    if c in renames or c in kept
                ),
                dense=frozenset(
                    renames.get(c, c)
                    for c in entry.properties.dense
                    if c in renames or c in kept
                ),
            )
            node = PhysicalNode(
                op="project",
                children=(node,),
                outputs=spec.final_outputs,
                rows=entry.estimate.rows,
                cost=cost,
                properties=properties,
            )
        if spec.order_by:
            if not all(properties.is_sorted_on(key) for key in spec.order_by):
                sort_cost = self._cost_model.sort_cost(entry.estimate.rows)
                cost += sort_cost
                properties = properties.with_sorted(*spec.order_by)
                node = PhysicalNode(
                    op="sort",
                    children=(node,),
                    sort_keys=spec.order_by,
                    rows=entry.estimate.rows,
                    local_cost=sort_cost,
                    cost=cost,
                    properties=properties,
                )
        if spec.limit is not None:
            node = PhysicalNode(
                op="limit",
                children=(node,),
                count=spec.limit,
                rows=min(entry.estimate.rows, spec.limit),
                cost=cost,
                properties=properties,
            )
        return DPEntry(node, cost, properties, entry.estimate)
