"""Implementation options: applicability and property derivation rules.

Each physical algorithm family is wrapped in an *option* that knows

* whether it is **applicable** given the input property vectors — the
  §2.1 preconditions (OG needs clustered input, SPH needs a dense domain,
  OJ needs both inputs sorted);
* which properties its output **derives** — §2.2's propagation (SPH and
  sort variants emit sorted output, probe-streaming joins preserve probe
  order, density survives value-preserving operators).

Options are produced from the physiological lattice
(:mod:`repro.core.physiological`) when the configuration is deep, or from
the blackbox textbook catalogue when it is shallow, so the *same* DP
consumes either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer.base import OptimizerConfig, PropertyScope
from repro.core.physiological import (
    Granule,
    enumerate_recipes,
    logical_grouping,
    logical_join,
    recipe_algorithm,
    recipe_backend,
    recipe_is_exchange,
    recipe_join_algorithm,
    recipe_loop,
)
from repro.core.properties import Correlations, PropertyVector
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm, JoinOutputOrder
from repro.engine.kernels.parallel import (
    EXCHANGE_GROUPING_ALGORITHMS,
    EXCHANGE_JOIN_ALGORITHMS,
    PARALLEL_PROBE_ALGORITHMS,
)

#: the blackbox textbook operator catalogue available to SQO. SPH variants
#: are absent: without density tracking they can never be proven safe.
SQO_GROUPING_CATALOG = (
    GroupingAlgorithm.HG,
    GroupingAlgorithm.OG,
    GroupingAlgorithm.SOG,
    GroupingAlgorithm.BSG,
)
SQO_JOIN_CATALOG = (
    JoinAlgorithm.HJ,
    JoinAlgorithm.OJ,
    JoinAlgorithm.SOJ,
    JoinAlgorithm.BSJ,
)


@dataclass(frozen=True)
class GroupingOption:
    """One candidate grouping implementation (with its deep recipe, if
    the configuration is deep).

    ``parallel`` reflects the recipe's MOLECULE-level ``loop`` binding:
    the shard-local runs merge through
    :func:`repro.engine.kernels.parallel.merge_partials`, whose output is
    always key-sorted — a property only a deep optimiser can exploit.
    ``exchange`` marks the repartitioning recipes (hash-shuffle, then
    group locally), and ``backend`` which pool the parallel work runs on.
    """

    algorithm: GroupingAlgorithm
    recipe: Granule | None = None
    parallel: bool = False
    exchange: bool = False
    backend: str = "thread"

    def applicable(
        self, props: PropertyVector, key: str, scope: PropertyScope
    ) -> bool:
        """May this implementation be used on an input with ``props``?"""
        if self.algorithm is GroupingAlgorithm.OG:
            return props.is_clustered_on(key)
        if self.algorithm is GroupingAlgorithm.SPHG:
            return scope is PropertyScope.FULL and props.is_dense(key)
        return True

    def derive(
        self,
        props: PropertyVector,
        key: str,
        correlations: Correlations,
        scope: PropertyScope,
    ) -> PropertyVector:
        """Output properties of grouping with this implementation.

        The output relation has the key column plus aggregate columns;
        only the key can carry guarantees.
        """
        sorted_on: frozenset[str] = frozenset()
        clustered_on: frozenset[str] = frozenset()
        if (
            self.parallel
            or self.exchange
            or self.algorithm
            in (
                GroupingAlgorithm.SPHG,
                GroupingAlgorithm.SOG,
                GroupingAlgorithm.BSG,
            )
        ):
            # Sort variants emit key order by construction; both the
            # parallel loop's partial-merge and the exchange's partition
            # concatenation sort the merged keys regardless of the
            # shard/partition-local algorithm.
            sorted_on = frozenset([key])
        elif self.algorithm is GroupingAlgorithm.OG:
            # Clustered input gives first-occurrence order; only a fully
            # sorted input gives sorted output.
            if props.is_sorted_on(key):
                sorted_on = frozenset([key])
            clustered_on = frozenset([key])
        # HG: blackbox hash order — assume nothing (§2.1).
        dense: frozenset[str] = frozenset()
        if scope is PropertyScope.FULL and props.is_dense(key):
            # The output keys are exactly the distinct input keys; a dense
            # input domain stays dense.
            dense = frozenset([key])
        result = PropertyVector(
            sorted_on=sorted_on,
            clustered_on=clustered_on | sorted_on,
            dense=dense,
        )
        result = correlations.close_sorted(result)
        return result if scope is PropertyScope.FULL else result.restrict_to_orders()


@dataclass(frozen=True)
class JoinOption:
    """One candidate join implementation (build = left, probe = right).

    ``parallel`` reflects the recipe's MOLECULE-level ``loop`` binding:
    the build structure is erected once, then probed by concurrent probe
    morsels. Only the probe-streaming families (HJ/SPHJ/BSJ) shard this
    way, and shard outputs concatenate back in probe order, so the
    parallel variant derives exactly the serial variant's properties.
    ``exchange`` marks the repartitioning recipes, whose restored output
    is likewise probe-major; ``backend`` picks the pool.
    """

    algorithm: JoinAlgorithm
    recipe: Granule | None = None
    parallel: bool = False
    exchange: bool = False
    backend: str = "thread"

    @property
    def output_order(self) -> JoinOutputOrder:
        """Which row order the output exhibits (Table 2 discussion)."""
        if self.algorithm in (JoinAlgorithm.OJ, JoinAlgorithm.SOJ):
            return JoinOutputOrder.KEY_SORTED
        return JoinOutputOrder.PROBE_ORDER

    def applicable(
        self,
        build_props: PropertyVector,
        probe_props: PropertyVector,
        build_key: str,
        probe_key: str,
        scope: PropertyScope,
    ) -> bool:
        """May this implementation join these inputs?"""
        if self.algorithm is JoinAlgorithm.OJ:
            return build_props.is_sorted_on(build_key) and probe_props.is_sorted_on(
                probe_key
            )
        if self.algorithm is JoinAlgorithm.SPHJ:
            return scope is PropertyScope.FULL and build_props.is_dense(build_key)
        return True

    def derive(
        self,
        build_props: PropertyVector,
        probe_props: PropertyVector,
        build_key: str,
        probe_key: str,
        correlations: Correlations,
        scope: PropertyScope,
    ) -> PropertyVector:
        """Output properties of this join.

        Probe-streaming joins (HJ/SPHJ/BSJ) preserve the probe side's row
        order, so all probe-side guarantees survive; if the probe stream
        is sorted on the join key, the output is also sorted on the
        *build* key (equal values), and correlation closure then extends
        that to monotone-related build columns — the mechanism behind
        Figure 5's 2.8x case (DESIGN.md substitution #5).
        """
        if self.output_order is JoinOutputOrder.PROBE_ORDER:
            sorted_on = set(probe_props.sorted_on)
            clustered_on = set(probe_props.clustered_on)
            if probe_key in probe_props.sorted_on:
                sorted_on.add(build_key)
            if probe_key in probe_props.clustered_on:
                clustered_on.add(build_key)
        else:
            sorted_on = {build_key, probe_key}
            clustered_on = set(sorted_on)
        # Density is a value-domain property: an inner join removes rows,
        # never values' positions in the domain — under the FK assumption
        # (every child row matches, every parent value referenced) the
        # domains stay dense. Documented as substitution #5c.
        dense = set(build_props.dense) | set(probe_props.dense)
        result = PropertyVector(
            sorted_on=frozenset(sorted_on),
            clustered_on=frozenset(clustered_on) | frozenset(sorted_on),
            dense=frozenset(dense),
        )
        result = correlations.close_sorted(result)
        return result if scope is PropertyScope.FULL else result.restrict_to_orders()


def _recipe_mode(recipe: Granule) -> tuple[bool, bool, str] | None:
    """(parallel, exchange, backend) of a recipe, normalised; None when
    the combination is not executable and should be skipped.

    Normalisation collapses the spurious molecule products: a serial,
    non-exchange recipe has no parallel work, so its ``backend`` binding
    is meaningless and pins to ``"thread"`` (keeping one DP entry per
    executable configuration); an exchange recipe's inner loop must stay
    serial (the partitions *are* the parallelism — nesting a parallel
    loop inside one would oversubscribe the pool).
    """
    parallel = recipe_loop(recipe) == "parallel"
    exchange = recipe_is_exchange(recipe)
    backend = recipe_backend(recipe)
    if exchange and parallel:
        return None
    if not parallel and not exchange:
        backend = "thread"
    return parallel, exchange, backend


def grouping_options(
    config: OptimizerConfig, workers: int = 1
) -> list[GroupingOption]:
    """The grouping implementation space of a configuration.

    Shallow configurations get the blackbox catalogue; deep ones get the
    recipes of the physiological lattice, deduplicated by (executable
    algorithm, loop mode, exchange, backend) — molecule variants with
    equal paper-model cost collapse to their default representative, kept
    distinct only in the recipe.

    :param workers: the executor's worker count. Parallel-loop and
        exchange recipes are enumerated only when ``workers > 1`` — with
        one worker they are strictly worse (merge/shuffle + dispatch
        overhead on top of the serial cost), so they are not worth DP
        entries — and process-backend recipes only when
        ``config.backend == "process"`` (no process pool, no process
        plans). Shallow configurations never see the ``loop`` or
        ``exchange`` granules at all: both are below SQO's reach.
    """
    if not config.is_deep:
        return [GroupingOption(algorithm) for algorithm in SQO_GROUPING_CATALOG]
    options: list[GroupingOption] = []
    seen: set[tuple[GroupingAlgorithm, bool, bool, str]] = set()
    for recipe in enumerate_recipes(logical_grouping(), config.max_granularity):
        algorithm = recipe_algorithm(recipe)
        mode = _recipe_mode(recipe)
        if mode is None:
            continue
        parallel, exchange, backend = mode
        if (parallel or exchange) and workers <= 1:
            continue
        if backend == "process" and config.backend != "process":
            continue
        if exchange and algorithm not in EXCHANGE_GROUPING_ALGORITHMS:
            continue
        key = (algorithm, parallel, exchange, backend)
        if key in seen:
            continue
        seen.add(key)
        options.append(
            GroupingOption(algorithm, recipe, parallel, exchange, backend)
        )
    return options


def join_options(config: OptimizerConfig, workers: int = 1) -> list[JoinOption]:
    """The join implementation space of a configuration (see
    :func:`grouping_options`). Parallel-loop recipes are kept only for
    the probe-streaming families whose sharded probe is bit-identical to
    the serial kernel (:data:`PARALLEL_PROBE_ALGORITHMS`); exchange
    recipes only for the families whose partition-local runs restore the
    serial output exactly (:data:`EXCHANGE_JOIN_ALGORITHMS`)."""
    if not config.is_deep:
        return [JoinOption(algorithm) for algorithm in SQO_JOIN_CATALOG]
    options: list[JoinOption] = []
    seen: set[tuple[JoinAlgorithm, bool, bool, str]] = set()
    for recipe in enumerate_recipes(logical_join(), config.max_granularity):
        algorithm = recipe_join_algorithm(recipe)
        mode = _recipe_mode(recipe)
        if mode is None:
            continue
        parallel, exchange, backend = mode
        if (parallel or exchange) and workers <= 1:
            continue
        if backend == "process" and config.backend != "process":
            continue
        if parallel and algorithm not in PARALLEL_PROBE_ALGORITHMS:
            continue
        if exchange and algorithm not in EXCHANGE_JOIN_ALGORITHMS:
            continue
        key = (algorithm, parallel, exchange, backend)
        if key in seen:
            continue
        seen.add(key)
        options.append(JoinOption(algorithm, recipe, parallel, exchange, backend))
    return options
