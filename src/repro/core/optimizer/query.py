"""Logical plan -> normalised query specification.

The DP operates on a flat shape — scans with pushed-down filters, a set of
equi-join edges, an optional group-by, and trailing project/order/limit —
rather than on the logical tree directly. This module extracts that shape
and rejects plans outside the supported class with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.aggregates import AggregateSpec
from repro.engine.expressions import BooleanOp, Expression
from repro.errors import PlanError
from repro.logical.algebra import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOrderBy,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
)


@dataclass
class ScanSpec:
    """One base-table access with its pushed-down filter conjuncts."""

    table_name: str
    alias: str
    filters: list[Expression] = field(default_factory=list)


@dataclass(frozen=True)
class JoinEdge:
    """One equi-join predicate between two scans (by scan index)."""

    left_scan: int
    right_scan: int
    left_column: str
    right_column: str


@dataclass
class QuerySpec:
    """The normalised query the DP optimises."""

    scans: list[ScanSpec]
    joins: list[JoinEdge]
    group_key: str | None = None
    aggregates: tuple[AggregateSpec, ...] = ()
    final_outputs: tuple[tuple[str, Expression], ...] | None = None
    order_by: tuple[str, ...] = ()
    limit: int | None = None

    def scan_of_column(self, qualified: str) -> int:
        """Index of the scan owning a qualified column name.

        :raises PlanError: if the prefix matches no scan alias.
        """
        prefix = qualified.split(".", 1)[0]
        for index, scan in enumerate(self.scans):
            if scan.alias == prefix:
                return index
        raise PlanError(
            f"column {qualified!r} matches no scan alias "
            f"({[s.alias for s in self.scans]})"
        )


def _split_conjuncts(expression: Expression) -> list[Expression]:
    if isinstance(expression, BooleanOp) and expression.op == "and":
        return _split_conjuncts(expression.left) + _split_conjuncts(
            expression.right
        )
    return [expression]


def extract_query(plan: LogicalPlan) -> QuerySpec:
    """Normalise ``plan`` into a :class:`QuerySpec`.

    :raises PlanError: for plan shapes the optimiser does not support
        (e.g. group-by below a join, or cross-table filter predicates).
    """
    spec = QuerySpec(scans=[], joins=[])
    node = plan

    # Peel the trailing decoration: limit, order-by, project.
    if isinstance(node, LogicalLimit):
        spec.limit = node.count
        node = node.child
    if isinstance(node, LogicalOrderBy):
        spec.order_by = node.keys
        node = node.child
    if isinstance(node, LogicalProject):
        spec.final_outputs = node.outputs
        node = node.child

    pending_filters: list[Expression] = []
    if isinstance(node, LogicalGroupBy):
        spec.group_key = node.key
        spec.aggregates = node.aggregates
        node = node.child
    while isinstance(node, LogicalFilter):
        pending_filters.extend(_split_conjuncts(node.predicate))
        node = node.child

    _collect_joins(node, spec)

    # Push every filter conjunct to the single scan it references.
    for conjunct in pending_filters:
        referenced = conjunct.referenced_columns()
        owners = {spec.scan_of_column(column) for column in referenced}
        if len(owners) != 1:
            raise PlanError(
                f"filter {conjunct!r} references {len(owners)} tables; only "
                "single-table predicates are supported"
            )
        spec.scans[owners.pop()].filters.append(conjunct)

    if spec.group_key is not None:
        spec.scan_of_column(spec.group_key)  # validates ownership
    return spec


def _collect_joins(node: LogicalPlan, spec: QuerySpec) -> None:
    """Flatten the join tree into scans + edges (left-deep or bushy)."""
    if isinstance(node, LogicalScan):
        spec.scans.append(ScanSpec(node.table_name, node.alias))
        return
    if isinstance(node, LogicalFilter):
        conjuncts = _split_conjuncts(node.predicate)
        _collect_joins(node.child, spec)
        for conjunct in conjuncts:
            owners = {
                spec.scan_of_column(column)
                for column in conjunct.referenced_columns()
            }
            if len(owners) != 1:
                raise PlanError(
                    f"filter {conjunct!r} references {len(owners)} tables; "
                    "only single-table predicates are supported"
                )
            spec.scans[owners.pop()].filters.append(conjunct)
        return
    if isinstance(node, LogicalJoin):
        _collect_joins(node.left, spec)
        _collect_joins(node.right, spec)
        left_scan = spec.scan_of_column(node.left_key)
        right_scan = spec.scan_of_column(node.right_key)
        if left_scan == right_scan:
            raise PlanError(
                f"self-join predicate {node.left_key} = {node.right_key} "
                "within one scan is not supported"
            )
        spec.joins.append(
            JoinEdge(left_scan, right_scan, node.left_key, node.right_key)
        )
        return
    raise PlanError(
        f"unsupported node below joins: {type(node).__name__} "
        "(group-by under a join is not supported)"
    )
