"""The unified SQO/DQO optimiser and its baselines."""

from repro.core.optimizer.base import (
    OptimizationResult,
    OptimizerConfig,
    PropertyScope,
    SearchStats,
    dqo_config,
    sqo_config,
)
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.core.optimizer.dqo import optimize_dqo
from repro.core.optimizer.exhaustive import (
    ExhaustivePlan,
    enumerate_exhaustive,
    exhaustive_minimum,
)
from repro.core.optimizer.greedy import GreedyOptimizer, optimize_greedy
from repro.core.optimizer.plancache import (
    PlanCache,
    disable_plan_cache,
    enable_plan_cache,
    get_plan_cache,
    set_plan_cache,
    spec_fingerprint,
)
from repro.core.optimizer.pruning import DPEntry, dominates, pareto_insert
from repro.core.optimizer.query import (
    JoinEdge,
    QuerySpec,
    ScanSpec,
    extract_query,
)
from repro.core.optimizer.rules import (
    GroupingOption,
    JoinOption,
    grouping_options,
    join_options,
)
from repro.core.optimizer.sqo import optimize_sqo

__all__ = [
    "DPEntry",
    "DynamicProgrammingOptimizer",
    "ExhaustivePlan",
    "GreedyOptimizer",
    "GroupingOption",
    "JoinEdge",
    "JoinOption",
    "OptimizationResult",
    "OptimizerConfig",
    "PlanCache",
    "PropertyScope",
    "QuerySpec",
    "ScanSpec",
    "SearchStats",
    "disable_plan_cache",
    "dominates",
    "dqo_config",
    "enable_plan_cache",
    "enumerate_exhaustive",
    "exhaustive_minimum",
    "extract_query",
    "get_plan_cache",
    "grouping_options",
    "join_options",
    "set_plan_cache",
    "spec_fingerprint",
    "optimize_dqo",
    "optimize_greedy",
    "optimize_sqo",
    "pareto_insert",
    "sqo_config",
]
