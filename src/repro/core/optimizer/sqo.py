"""Shallow query optimisation — the paper's baseline.

A thin convenience wrapper: the SQO configuration of the unified DP
(blackbox textbook operators, interesting orders only).
"""

from __future__ import annotations

from repro.core.cost.model import CostModel
from repro.core.optimizer.base import OptimizationResult, sqo_config
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.logical.algebra import LogicalPlan
from repro.storage.catalog import Catalog


def optimize_sqo(
    plan: LogicalPlan,
    catalog: Catalog,
    cost_model: CostModel | None = None,
    **config_overrides,
) -> OptimizationResult:
    """Optimise ``plan`` shallowly (§4.3's SQO side)."""
    optimizer = DynamicProgrammingOptimizer(
        catalog, cost_model, sqo_config(**config_overrides)
    )
    return optimizer.optimize(plan)
