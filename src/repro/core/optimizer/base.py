"""Optimiser configuration and result types.

The central design point (DESIGN.md §4): SQO and DQO are *one* optimiser
with different configurations. :func:`sqo_config` caps decision depth at
ORGANELLE (blackbox textbook operators) and projects the property vector
to classical interesting orders; :func:`dqo_config` descends to MOLECULE
and tracks the full §2.2 property vector. Everything in between is a
valid configuration too — the paper's "smooth transition from SQO to DQO"
(§6, Longterm Vision).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.granularity import Granularity
from repro.core.plan import PhysicalNode

if TYPE_CHECKING:
    from repro.avs.registry import AVRegistry


class PropertyScope(enum.Enum):
    """Which §2.2 properties the optimiser is allowed to *see*."""

    #: classical interesting orders only: sortedness / clusteredness (SQO).
    ORDERS = "orders"
    #: the full DQO vector, including density.
    FULL = "full"


@dataclass(frozen=True)
class OptimizerConfig:
    """All the dials of the unified optimiser."""

    #: deepest granule level the optimiser may decide (Table 1 reach).
    max_granularity: Granularity = Granularity.MOLECULE
    #: which plan properties the optimiser tracks.
    property_scope: PropertyScope = PropertyScope.FULL
    #: consider swapping join build/probe sides. The paper's Figure 5
    #: keeps the syntactic sides (DESIGN.md substitution #5); the
    #: commutation ablation turns this on.
    consider_commutation: bool = False
    #: insert explicit sort enforcers to manufacture orders.
    consider_enforcers: bool = True
    #: prune Pareto-dominated DP entries (ablation dial).
    prune_dominated: bool = True
    #: registered Algorithmic Views to exploit, if any.
    views: "AVRegistry | None" = None
    #: morsel workers the optimiser plans for. With > 1 worker a deep
    #: enumeration also costs the lattice's MOLECULE-level parallel-loop
    #: recipes against their serial siblings. ``None`` resolves the
    #: ambient executor configuration (``REPRO_WORKERS``) at optimise
    #: time. The default of 1 keeps the classic serial space, so the
    #: paper's Figure 5 cost ratios are invariant to the runtime
    #: executor setting.
    workers: int | None = 1
    #: execution backend the optimiser plans parallel recipes for:
    #: ``"thread"`` (the default morsel pool) or ``"process"``. With
    #: ``"process"`` the deep enumeration also costs process-backend
    #: parallel/exchange recipes against their thread siblings and picks
    #: per node by cost; the choice enters the plan fingerprint and the
    #: plan cache key.
    backend: str = "thread"

    @property
    def is_deep(self) -> bool:
        """True when the configuration reaches below ORGANELLE."""
        return self.max_granularity > Granularity.ORGANELLE


def sqo_config(**overrides) -> OptimizerConfig:
    """Shallow query optimisation: textbook operators + interesting orders.

    §4.3: *"SQO only considers data sortedness as in traditional dynamic
    programming"* — so density is invisible and SPH variants can never be
    proven applicable.
    """
    defaults = dict(
        max_granularity=Granularity.ORGANELLE,
        property_scope=PropertyScope.ORDERS,
    )
    defaults.update(overrides)
    return OptimizerConfig(**defaults)


def dqo_config(**overrides) -> OptimizerConfig:
    """Deep query optimisation: molecule-level reach, full property vector."""
    defaults = dict(
        max_granularity=Granularity.MOLECULE,
        property_scope=PropertyScope.FULL,
    )
    defaults.update(overrides)
    return OptimizerConfig(**defaults)


@dataclass
class SearchStats:
    """Enumeration-effort counters (the pruning/depth ablations report
    these, and benchmark artifacts serialise them via :meth:`as_dict`)."""

    #: candidate plans generated (before any pruning).
    generated: int = 0
    #: candidates rejected because a retained entry dominated them.
    pruned_dominated: int = 0
    #: retained entries displaced by a later, dominating candidate.
    displaced: int = 0
    #: candidates rejected by heuristic frontier truncation (the greedy
    #: baseline keeps only the cheapest entry) — *not* true dominance:
    #: the loser may have carried properties the winner lacks.
    truncated: int = 0
    #: entries alive at the end across all DP classes.
    retained: int = 0
    #: property-vector closure computations (correlation-implied orders).
    closures: int = 0
    #: DP-table frontier entries alive per subset size after that size's
    #: enumeration round (size 1 = base access paths).
    table_entries_by_size: dict[int, int] = field(default_factory=dict)

    @property
    def pruned_total(self) -> int:
        """Candidates that did not survive: dominated, displaced, or
        truncated."""
        return self.pruned_dominated + self.displaced + self.truncated

    def as_dict(self) -> dict:
        """A JSON-friendly representation."""
        return {
            "generated": self.generated,
            "pruned_dominated": self.pruned_dominated,
            "displaced": self.displaced,
            "truncated": self.truncated,
            "retained": self.retained,
            "closures": self.closures,
            "table_entries_by_size": {
                str(size): count
                for size, count in sorted(self.table_entries_by_size.items())
            },
        }

    def render(self) -> str:
        """A one-block human-readable dump."""
        sizes = ", ".join(
            f"|S|={size}: {count}"
            for size, count in sorted(self.table_entries_by_size.items())
        )
        return "\n".join(
            [
                "search stats:",
                f"  candidates generated   {self.generated}",
                f"  pruned (dominated)     {self.pruned_dominated}",
                f"  displaced              {self.displaced}",
                f"  truncated              {self.truncated}",
                f"  retained               {self.retained}",
                f"  property closures      {self.closures}",
                f"  DP entries per size    {sizes or '(none)'}",
            ]
        )


@dataclass
class OptimizationResult:
    """The optimiser's verdict for one query."""

    #: the chosen plan, fully annotated.
    plan: PhysicalNode
    #: estimated cost of :attr:`plan` under the configured cost model.
    cost: float
    #: the configuration that produced this result.
    config: OptimizerConfig
    #: estimated output cardinality of the whole query — the root of the
    #: estimate chain that instrumented execution grades with q-error.
    estimated_rows: float = 0.0
    #: enumeration-effort counters.
    stats: SearchStats = field(default_factory=SearchStats)
    #: runner-up complete plans, best-first (for reporting/debugging).
    alternatives: list[PhysicalNode] = field(default_factory=list)
    #: True when this result came from the optimiser plan cache without a
    #: fresh search (then :attr:`stats` is all-zero: no enumeration ran).
    cached: bool = False
    #: shape hash of :attr:`plan` (:func:`repro.core.plan.
    #: plan_fingerprint`) — stable across re-optimisations that choose
    #: the same plan, different whenever any decision changed. "" only
    #: for results built by hand.
    plan_fingerprint: str = ""
    #: normalised query fingerprint (:func:`repro.core.optimizer.
    #: plancache.spec_fingerprint`) — the "same query" key baselines and
    #: the plan-regression sentinel group by.
    spec_fingerprint: str = ""
    #: decision-trace stamp ``{"path", "summary"}`` when a
    #: :class:`repro.obs.search.SearchTrace` journalled this search;
    #: None by default and always None on plan-cache hits (a cached
    #: verdict ran no search).
    search_trace: dict | None = None

    def explain(self, deep: bool = False) -> str:
        """Render the chosen plan."""
        return self.plan.explain(deep=deep)
