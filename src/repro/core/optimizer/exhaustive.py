"""Exhaustive plan enumeration — a validation oracle for the DP.

Enumerates *every* plan in the DP's search space for two-relation
join+group-by queries (all join implementations x all grouping
implementations x all enforcer placements) and returns the cheapest.
Property-based tests assert the DP's cost equals this oracle's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost.model import CostModel
from repro.core.cost.paper import PaperCostModel
from repro.core.optimizer.base import OptimizerConfig, SearchStats, dqo_config
from repro.core.optimizer.dp import DynamicProgrammingOptimizer, base_access_cost
from repro.core.optimizer.query import QuerySpec, extract_query
from repro.core.optimizer.rules import grouping_options, join_options
from repro.core.properties import (
    Correlations,
    correlations_from_table,
    properties_from_table,
)
from repro.engine.parallel import get_executor_config
from repro.errors import OptimizationError
from repro.obs.search.trace import get_search_trace
from repro.logical.algebra import LogicalPlan
from repro.service.context import check_active_context
from repro.storage.catalog import Catalog


@dataclass(frozen=True)
class ExhaustivePlan:
    """One complete plan of the exhaustive space, with its total cost."""

    description: str
    cost: float
    #: estimated output cardinality (same estimation chain as the DP).
    rows: float = 0.0


def enumerate_exhaustive(
    plan: LogicalPlan,
    catalog: Catalog,
    cost_model: CostModel | None = None,
    config: OptimizerConfig | None = None,
    stats: SearchStats | None = None,
) -> list[ExhaustivePlan]:
    """All complete plans for a 1- or 2-relation query, any cost order.

    :param stats: when given, ``generated``/``retained`` record the size
        of the enumerated space (the oracle never prunes, so both equal
        the number of plans).
    :raises OptimizationError: for queries outside the supported shape.
    """
    spec = extract_query(plan)
    cost_model = cost_model or PaperCostModel()
    config = config or dqo_config()
    # Same worker resolution as the DP: the oracle must cost the same
    # implementation space, parallel-loop variants included.
    workers = max(
        config.workers
        if config.workers is not None
        else get_executor_config().workers,
        1,
    )
    if len(spec.scans) > 2:
        raise OptimizationError(
            "exhaustive oracle supports at most 2 relations, got "
            f"{len(spec.scans)}"
        )
    if spec.scans and spec.scans[0].filters or (
        len(spec.scans) > 1 and spec.scans[1].filters
    ):
        raise OptimizationError("exhaustive oracle does not support filters")

    correlations = Correlations()
    scan_states = []  # per scan: list of (description, cost, properties, rows, ndv map)
    scope = config.property_scope
    for scan in spec.scans:
        table = catalog.table(scan.table_name)
        correlations = correlations.merged(
            correlations_from_table(table, scan.alias)
        )
    for scan in spec.scans:
        table = catalog.table(scan.table_name)
        props = properties_from_table(table, scan.alias)
        if scope.value == "orders":
            props = props.restrict_to_orders()
        props = correlations.close_sorted(props)
        rows = float(table.num_rows)
        ndv = {
            f"{scan.alias}.{column.name}": float(column.statistics.distinct)
            for column in table.columns()
        }
        # Same base access costing as the DP (disk-aware for spilled
        # tables), so oracle agreement holds in every storage mode.
        access_cost, __ = base_access_cost(cost_model, table, (), scan.alias)
        variants = [(f"scan({scan.alias})", access_cost, props)]
        if config.consider_enforcers:
            interesting = set()
            for edge in spec.joins:
                interesting.add(edge.left_column)
                interesting.add(edge.right_column)
            if spec.group_key:
                interesting.add(spec.group_key)
            owned = {
                column
                for column in interesting
                if column.split(".", 1)[0] == scan.alias
            }
            for column in sorted(owned):
                if props.is_sorted_on(column):
                    continue
                sorted_props = correlations.close_sorted(
                    props.without_order().with_sorted(column)
                )
                if scope.value == "orders":
                    sorted_props = sorted_props.restrict_to_orders()
                variants.append(
                    (
                        f"sort({scan.alias}.{column.split('.', 1)[1]})",
                        access_cost + cost_model.sort_cost(rows),
                        sorted_props,
                    )
                )
        scan_states.append((variants, rows, ndv))

    plans: list[ExhaustivePlan] = []
    if len(spec.scans) == 1:
        variants, rows, ndv = scan_states[0]
        for description, cost, props in variants:
            plans.extend(
                _grouping_plans(
                    spec, description, cost, props, rows, ndv, cost_model,
                    config, correlations, workers,
                )
            )
        return _record(plans, stats)

    edge = spec.joins[0]
    orientations = [(0, 1, edge.left_column, edge.right_column)]
    if config.consider_commutation:
        orientations.append((1, 0, edge.right_column, edge.left_column))
    # Orientation maps scan index 0 = edge.left_scan side.
    for build_side, probe_side, build_key, probe_key in orientations:
        build_idx = edge.left_scan if build_side == 0 else edge.right_scan
        probe_idx = edge.right_scan if probe_side == 1 else edge.left_scan
        build_variants, build_rows, build_ndv = scan_states[build_idx]
        probe_variants, probe_rows, probe_ndv = scan_states[probe_idx]
        fk = catalog.foreign_key_between(
            spec.scans[build_idx].table_name,
            build_key.split(".", 1)[1],
            spec.scans[probe_idx].table_name,
            probe_key.split(".", 1)[1],
        )
        if fk is not None:
            fk_child_is_probe = fk.child_table == spec.scans[probe_idx].table_name
            join_rows = probe_rows if fk_child_is_probe else build_rows
        else:
            join_rows = (
                build_rows
                * probe_rows
                / max(build_ndv.get(build_key, build_rows), probe_ndv.get(probe_key, probe_rows))
            )
        group_hint = max(
            min(
                build_ndv.get(build_key, build_rows),
                probe_ndv.get(probe_key, probe_rows),
            ),
            1.0,
        )
        merged_ndv = {
            column: min(value, join_rows)
            for column, value in {**build_ndv, **probe_ndv}.items()
        }
        for b_desc, b_cost, b_props in build_variants:
            for p_desc, p_cost, p_props in probe_variants:
                check_active_context()
                for option in join_options(config, workers):
                    if not option.applicable(
                        b_props, p_props, build_key, probe_key, config.property_scope
                    ):
                        continue
                    if option.parallel:
                        j_cost = cost_model.parallel_join_cost(
                            option.algorithm,
                            build_rows,
                            probe_rows,
                            group_hint,
                            float(workers),
                        )
                    else:
                        j_cost = cost_model.join_cost(
                            option.algorithm, build_rows, probe_rows, group_hint
                        )
                    j_props = option.derive(
                        b_props,
                        p_props,
                        build_key,
                        probe_key,
                        correlations,
                        config.property_scope,
                    )
                    description = (
                        f"{option.algorithm.name}({b_desc}, {p_desc})"
                    )
                    total = b_cost + p_cost + j_cost
                    plans.extend(
                        _grouping_plans(
                            spec,
                            description,
                            total,
                            j_props,
                            join_rows,
                            merged_ndv,
                            cost_model,
                            config,
                            correlations,
                            workers,
                        )
                    )
    return _record(plans, stats)


def _record(
    plans: list[ExhaustivePlan], stats: SearchStats | None
) -> list[ExhaustivePlan]:
    if stats is not None:
        stats.generated += len(plans)
        stats.retained += len(plans)
    trace = get_search_trace()
    if trace is not None and trace.enabled:
        # The oracle never prunes: every plan of the space is one
        # journal event, so a trace diff against the DP's journal shows
        # exactly what the frontiers refused to carry.
        for plan in plans:
            trace.oracle(plan.description, plan.cost, plan.rows)
    return plans


def _grouping_plans(
    spec: QuerySpec,
    description: str,
    cost: float,
    props,
    rows: float,
    ndv: dict[str, float],
    cost_model: CostModel,
    config: OptimizerConfig,
    correlations: Correlations,
    workers: int = 1,
) -> list[ExhaustivePlan]:
    if spec.group_key is None:
        return [ExhaustivePlan(description, cost, rows)]
    key = spec.group_key
    groups = min(ndv.get(key, rows), rows)
    inputs = [(description, cost, props)]
    if config.consider_enforcers and not props.is_sorted_on(key):
        sorted_props = correlations.close_sorted(
            props.without_order().with_sorted(key)
        )
        if config.property_scope.value == "orders":
            sorted_props = sorted_props.restrict_to_orders()
        inputs.append(
            (
                f"sort_by_key({description})",
                cost + cost_model.sort_cost(rows),
                sorted_props,
            )
        )
    plans = []
    for in_description, in_cost, in_props in inputs:
        for option in grouping_options(config, workers):
            if not option.applicable(in_props, key, config.property_scope):
                continue
            if option.parallel:
                g_cost = cost_model.parallel_grouping_cost(
                    option.algorithm, rows, groups, float(workers)
                )
            else:
                g_cost = cost_model.grouping_cost(option.algorithm, rows, groups)
            plans.append(
                ExhaustivePlan(
                    f"{option.algorithm.name}({in_description})",
                    in_cost + g_cost,
                    groups,
                )
            )
    return plans


def exhaustive_minimum(
    plan: LogicalPlan,
    catalog: Catalog,
    cost_model: CostModel | None = None,
    config: OptimizerConfig | None = None,
    stats: SearchStats | None = None,
) -> ExhaustivePlan:
    """The cheapest plan in the exhaustive space.

    :raises OptimizationError: if the space is empty.
    """
    plans = enumerate_exhaustive(plan, catalog, cost_model, config, stats)
    if not plans:
        raise OptimizationError("exhaustive enumeration found no plan")
    return min(plans, key=lambda p: p.cost)
