"""A greedy baseline optimiser.

Greedy = the same search as the DP but every frontier is truncated to its
single cheapest entry — no Pareto lookahead, so the optimiser never pays
for a property now that pays off later. Benchmarks compare its plan
quality against the DP to quantify what §2.2's "we must not discard that
information" buys.
"""

from __future__ import annotations

from repro.core.cost.model import CostModel
from repro.core.optimizer.base import (
    OptimizationResult,
    OptimizerConfig,
    SearchStats,
    dqo_config,
)
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.core.optimizer.pruning import DPEntry
from repro.logical.algebra import LogicalPlan
from repro.storage.catalog import Catalog


class GreedyOptimizer(DynamicProgrammingOptimizer):
    """Cheapest-entry-only frontiers: local decisions, no lookahead."""

    def _insert(
        self, entries: list[DPEntry], candidate: DPEntry, stats: SearchStats
    ) -> list[DPEntry]:
        stats.generated += 1
        trace = self._trace
        if trace is not None:
            trace.generated(self._trace_cls, candidate)
        if not entries or candidate.cost < entries[0].cost:
            if entries:
                # Cheapest-only truncation, not dominance: the evicted
                # entry may hold properties the winner lacks.
                stats.truncated += 1
                if trace is not None:
                    trace.truncated(self._trace_cls, entries[0], candidate)
            if trace is not None:
                trace.kept(self._trace_cls, candidate)
            return [candidate]
        stats.truncated += 1
        if trace is not None:
            trace.truncated(self._trace_cls, candidate, entries[0])
        return entries


def optimize_greedy(
    plan: LogicalPlan,
    catalog: Catalog,
    cost_model: CostModel | None = None,
    config: OptimizerConfig | None = None,
) -> OptimizationResult:
    """Optimise with the greedy baseline."""
    optimizer = GreedyOptimizer(catalog, cost_model, config or dqo_config())
    return optimizer.optimize(plan)
