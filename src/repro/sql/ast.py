"""Abstract syntax tree of the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Expression


@dataclass(frozen=True)
class ColumnItem:
    """A plain column in the SELECT list: ``col [AS alias]``."""

    column: str
    alias: str | None = None


@dataclass(frozen=True)
class AggregateItem:
    """An aggregate in the SELECT list: ``FN(col | *) [AS alias]``."""

    function: str  # COUNT / SUM / MIN / MAX / AVG
    column: str | None  # None for COUNT(*)
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM/JOIN clause: ``name [AS alias]``."""

    name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        """The qualification prefix this table contributes."""
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left = right``."""

    table: TableRef
    left_key: str
    right_key: str


@dataclass(frozen=True)
class OrderItem:
    """``ORDER BY column [ASC|DESC]``."""

    column: str
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """The parsed shape of a SELECT query."""

    items: tuple[ColumnItem | AggregateItem, ...]
    from_table: TableRef
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[str, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
