"""Recursive-descent parser for the supported SQL subset.

Grammar (keywords case-insensitive)::

    query      := SELECT items FROM table_ref join* where? group? order? limit?
    items      := item (',' item)*
    item       := qcol (AS ident)?
                | FN '(' (qcol | '*') ')' (AS ident)?
    table_ref  := ident (AS? ident)?
    join       := JOIN table_ref ON qcol '=' qcol
    where      := WHERE disjunction
    group      := GROUP BY qcol (',' qcol)*
    order      := ORDER BY qcol (ASC|DESC)? (',' qcol (ASC|DESC)?)*
    limit      := LIMIT number
    disjunction:= conjunction (OR conjunction)*
    conjunction:= condition (AND condition)*
    condition  := NOT condition | '(' disjunction ')' | comparison
    comparison := operand ('='|'<>'|'<'|'<='|'>'|'>=') operand
    operand    := term (('+'|'-') term)*
    term       := factor (('*'|'/'|'%') factor)*
    factor     := qcol | number | '-' number | '(' operand ')'
    qcol       := ident ('.' ident)?
"""

from __future__ import annotations

from repro.engine.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    Literal,
    NotOp,
)
from repro.errors import ParseError
from repro.sql.ast import (
    AggregateItem,
    ColumnItem,
    JoinClause,
    OrderItem,
    SelectStatement,
    TableRef,
)
from repro.sql.tokenizer import Token, TokenType, tokenize

_AGGREGATE_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG")
_COMPARISON_SYMBOLS = ("=", "<>", "<=", ">=", "<", ">")


def parse(text: str) -> SelectStatement:
    """Parse one SELECT statement.

    :raises ParseError: with a source position on any syntax error.
    """
    return _Parser(tokenize(text)).parse_select()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise ParseError(
                f"expected {word}, got {self._current.value!r} at position "
                f"{self._current.position}",
                self._current.position,
            )
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        if not self._current.is_symbol(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {self._current.value!r} at position "
                f"{self._current.position}",
                self._current.position,
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        if self._current.type is not TokenType.IDENTIFIER:
            raise ParseError(
                f"expected identifier, got {self._current.value!r} at position "
                f"{self._current.position}",
                self._current.position,
            )
        return self._advance().value

    def _accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._current.is_symbol(symbol):
            self._advance()
            return True
        return False

    # -- grammar productions ----------------------------------------------

    def parse_select(self) -> SelectStatement:
        """The ``query`` production: one full SELECT statement."""
        self._expect_keyword("SELECT")
        items = [self._parse_item()]
        while self._accept_symbol(","):
            items.append(self._parse_item())
        self._expect_keyword("FROM")
        from_table = self._parse_table_ref()
        joins = []
        while self._accept_keyword("JOIN"):
            table = self._parse_table_ref()
            self._expect_keyword("ON")
            left_key = self._parse_qualified_column()
            self._expect_symbol("=")
            right_key = self._parse_qualified_column()
            joins.append(JoinClause(table, left_key, right_key))
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_disjunction()
        group_by: tuple[str, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            keys = [self._parse_qualified_column()]
            while self._accept_symbol(","):
                keys.append(self._parse_qualified_column())
            group_by = tuple(keys)
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_symbol(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            if self._current.type is not TokenType.NUMBER:
                raise ParseError(
                    f"expected a number after LIMIT at position "
                    f"{self._current.position}",
                    self._current.position,
                )
            limit = int(self._advance().value)
        if self._current.type is not TokenType.END:
            raise ParseError(
                f"unexpected trailing input {self._current.value!r} at "
                f"position {self._current.position}",
                self._current.position,
            )
        return SelectStatement(
            items=tuple(items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _parse_item(self) -> ColumnItem | AggregateItem:
        token = self._current
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATE_KEYWORDS:
            function = self._advance().value
            self._expect_symbol("(")
            if self._accept_symbol("*"):
                if function != "COUNT":
                    raise ParseError(
                        f"{function}(*) is not valid SQL; only COUNT(*)",
                        token.position,
                    )
                column = None
            else:
                column = self._parse_qualified_column()
            self._expect_symbol(")")
            alias = self._parse_optional_alias()
            return AggregateItem(function, column, alias)
        column = self._parse_qualified_column()
        alias = self._parse_optional_alias()
        return ColumnItem(column, alias)

    def _parse_optional_alias(self) -> str | None:
        if self._accept_keyword("AS"):
            return self._expect_identifier()
        return None

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier()
        if self._accept_keyword("AS"):
            return TableRef(name, self._expect_identifier())
        if self._current.type is TokenType.IDENTIFIER:
            return TableRef(name, self._advance().value)
        return TableRef(name)

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_qualified_column()
        if self._accept_keyword("DESC"):
            return OrderItem(column, ascending=False)
        self._accept_keyword("ASC")
        return OrderItem(column, ascending=True)

    def _parse_qualified_column(self) -> str:
        first = self._expect_identifier()
        if self._accept_symbol("."):
            return f"{first}.{self._expect_identifier()}"
        return first

    # -- expressions -----------------------------------------------------

    def _parse_disjunction(self) -> Expression:
        left = self._parse_conjunction()
        while self._accept_keyword("OR"):
            left = BooleanOp("or", left, self._parse_conjunction())
        return left

    def _parse_conjunction(self) -> Expression:
        left = self._parse_condition()
        while self._accept_keyword("AND"):
            left = BooleanOp("and", left, self._parse_condition())
        return left

    def _parse_condition(self) -> Expression:
        if self._accept_keyword("NOT"):
            return NotOp(self._parse_condition())
        # A parenthesis here could open a boolean group or an arithmetic
        # operand; try boolean first by lookahead-free backtracking.
        if self._current.is_symbol("("):
            saved = self._index
            try:
                self._advance()
                inner = self._parse_disjunction()
                self._expect_symbol(")")
                return inner
            except ParseError:
                self._index = saved
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_operand()
        token = self._current
        if token.type is TokenType.SYMBOL and token.value in _COMPARISON_SYMBOLS:
            op = self._advance().value
            right = self._parse_operand()
            return BinaryOp(op, left, right)
        raise ParseError(
            f"expected comparison operator at position {token.position}, "
            f"got {token.value!r}",
            token.position,
        )

    def _parse_operand(self) -> Expression:
        left = self._parse_term()
        while self._current.is_symbol("+") or self._current.is_symbol("-"):
            op = self._advance().value
            left = BinaryOp(op, left, self._parse_term())
        return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while (
            self._current.is_symbol("*")
            or self._current.is_symbol("/")
            or self._current.is_symbol("%")
        ):
            op = self._advance().value
            left = BinaryOp(op, left, self._parse_factor())
        return left

    def _parse_factor(self) -> Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(int(token.value))
        if token.is_symbol("-"):
            self._advance()
            inner = self._parse_factor()
            return BinaryOp("-", Literal(0), inner)
        if token.is_symbol("("):
            self._advance()
            inner = self._parse_operand()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return ColumnRef(self._parse_qualified_column())
        raise ParseError(
            f"expected a value at position {token.position}, got "
            f"{token.value!r}",
            token.position,
        )
