"""SQL tokenizer for the supported subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT",
    "FROM",
    "JOIN",
    "ON",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "AS",
    "AND",
    "OR",
    "NOT",
    "ASC",
    "DESC",
    "LIMIT",
    "COUNT",
    "SUM",
    "MIN",
    "MAX",
    "AVG",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-", "/", "%")


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()

    def is_symbol(self, symbol: str) -> bool:
        """True if this token is the given symbol."""
        return self.type is TokenType.SYMBOL and self.value == symbol


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens.

    :raises ParseError: on any character that starts no valid token.
    """
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (
                text[position].isalnum() or text[position] == "_"
            ):
                position += 1
            word = text[start:position]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        if char.isdigit():
            start = position
            while position < length and text[position].isdigit():
                position += 1
            tokens.append(Token(TokenType.NUMBER, text[start:position], start))
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, position):
                # Normalise != to the SQL-standard <>.
                value = "<>" if symbol == "!=" else symbol
                tokens.append(Token(TokenType.SYMBOL, value, position))
                position += len(symbol)
                break
        else:
            raise ParseError(
                f"unexpected character {char!r} at position {position}", position
            )
    tokens.append(Token(TokenType.END, "", length))
    return tokens
