"""A small SQL frontend: tokenizer, parser, and logical planner."""

from repro.sql.ast import (
    AggregateItem,
    ColumnItem,
    JoinClause,
    OrderItem,
    SelectStatement,
    TableRef,
)
from repro.sql.parser import parse
from repro.sql.planner import plan_query, plan_statement
from repro.sql.tokenizer import Token, TokenType, tokenize

__all__ = [
    "AggregateItem",
    "ColumnItem",
    "JoinClause",
    "OrderItem",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "parse",
    "plan_query",
    "plan_statement",
    "tokenize",
]
