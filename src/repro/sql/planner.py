"""AST -> logical plan translation, with name resolution.

Resolves unqualified column names against the catalog (a name must be
unambiguous across the query's tables) and assembles the canonical logical
tree: scans -> joins (in syntactic order) -> filter -> group-by ->
project -> order-by -> limit.
"""

from __future__ import annotations

from repro.engine.aggregates import AggregateFunction, AggregateSpec
from repro.engine.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    Literal,
    NotOp,
)
from repro.errors import PlanError
from repro.logical.algebra import (
    LogicalFilter,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOrderBy,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    validate_plan,
)
from repro.sql.ast import AggregateItem, ColumnItem, SelectStatement, TableRef
from repro.sql.parser import parse
from repro.storage.catalog import Catalog

_FUNCTIONS = {
    "COUNT": AggregateFunction.COUNT,
    "SUM": AggregateFunction.SUM,
    "MIN": AggregateFunction.MIN,
    "MAX": AggregateFunction.MAX,
    "AVG": AggregateFunction.AVG,
}


def plan_statement(statement: SelectStatement, catalog: Catalog) -> LogicalPlan:
    """Translate a parsed statement into a validated logical plan."""
    resolver = _NameResolver(statement, catalog)
    plan: LogicalPlan = LogicalScan(
        statement.from_table.name, statement.from_table.effective_alias
    )
    for clause in statement.joins:
        right: LogicalPlan = LogicalScan(
            clause.table.name, clause.table.effective_alias
        )
        plan = LogicalJoin(
            plan,
            right,
            resolver.resolve(clause.left_key),
            resolver.resolve(clause.right_key),
        )
    if statement.where is not None:
        plan = LogicalFilter(plan, resolver.resolve_expression(statement.where))
    has_aggregates = any(
        isinstance(item, AggregateItem) for item in statement.items
    )
    if statement.group_by or has_aggregates:
        plan = _plan_group_by(statement, plan, resolver)
    else:
        outputs = []
        for item in statement.items:
            assert isinstance(item, ColumnItem)
            resolved = resolver.resolve(item.column)
            outputs.append((item.alias or resolved, ColumnRef(resolved)))
        plan = LogicalProject(plan, tuple(outputs))
    if statement.order_by:
        for order in statement.order_by:
            if not order.ascending:
                raise PlanError("ORDER BY ... DESC is not supported yet")
        keys = tuple(
            _output_name(statement, resolver, order.column)
            for order in statement.order_by
        )
        plan = LogicalOrderBy(plan, keys)
    if statement.limit is not None:
        plan = LogicalLimit(plan, statement.limit)
    validate_plan(plan, catalog)
    return plan


def plan_query(sql: str, catalog: Catalog) -> LogicalPlan:
    """Parse + plan in one step."""
    return plan_statement(parse(sql), catalog)


def _plan_group_by(
    statement: SelectStatement, child: LogicalPlan, resolver: "_NameResolver"
) -> LogicalPlan:
    if len(statement.group_by) != 1:
        raise PlanError(
            "exactly one GROUP BY column is supported "
            f"(got {len(statement.group_by)})"
        )
    key = resolver.resolve(statement.group_by[0])
    aggregates = []
    key_alias = None
    for item in statement.items:
        if isinstance(item, AggregateItem):
            column = (
                resolver.resolve(item.column) if item.column is not None else None
            )
            alias = item.alias or _default_agg_alias(item)
            aggregates.append(
                AggregateSpec(_FUNCTIONS[item.function], column, alias)
            )
        else:
            resolved = resolver.resolve(item.column)
            if resolved != key:
                raise PlanError(
                    f"non-aggregated column {item.column!r} must be the "
                    "GROUP BY key"
                )
            key_alias = item.alias
    plan: LogicalPlan = LogicalGroupBy(child, key, tuple(aggregates))
    if key_alias and key_alias != key:
        outputs = [(key_alias, ColumnRef(key))]
        outputs.extend(
            (spec.alias, ColumnRef(spec.alias)) for spec in aggregates
        )
        plan = LogicalProject(plan, tuple(outputs))
    return plan


def _default_agg_alias(item: AggregateItem) -> str:
    if item.column is None:
        return item.function.lower()
    return f"{item.function.lower()}_{item.column.replace('.', '_')}"


def _output_name(
    statement: SelectStatement, resolver: "_NameResolver", column: str
) -> str:
    """Map an ORDER BY column to the final output name it has after
    projection/grouping (alias if one was declared)."""
    for item in statement.items:
        if isinstance(item, ColumnItem) and (
            item.column == column or item.alias == column
        ):
            return item.alias or resolver.resolve(item.column)
        if isinstance(item, AggregateItem) and item.alias == column:
            return column
    return resolver.resolve(column)


class _NameResolver:
    """Resolve possibly-unqualified column names to ``alias.column``."""

    def __init__(self, statement: SelectStatement, catalog: Catalog) -> None:
        self._columns: dict[str, list[str]] = {}
        tables: list[TableRef] = [statement.from_table]
        tables.extend(clause.table for clause in statement.joins)
        seen_aliases: set[str] = set()
        for ref in tables:
            alias = ref.effective_alias
            if alias in seen_aliases:
                raise PlanError(f"duplicate table alias {alias!r}")
            seen_aliases.add(alias)
            schema = catalog.table(ref.name).schema
            for name in schema.names:
                qualified = f"{alias}.{name}"
                self._columns.setdefault(name, []).append(qualified)
                self._columns.setdefault(qualified, []).append(qualified)

    def resolve(self, name: str) -> str:
        """The unique qualified name for ``name``.

        :raises PlanError: on unknown or ambiguous names.
        """
        candidates = self._columns.get(name)
        if not candidates:
            raise PlanError(f"unknown column {name!r}")
        distinct = sorted(set(candidates))
        if len(distinct) > 1:
            raise PlanError(
                f"ambiguous column {name!r}: could be any of {distinct}"
            )
        return distinct[0]

    def resolve_expression(self, expression: Expression) -> Expression:
        """Rewrite every :class:`ColumnRef` to its qualified name."""
        if isinstance(expression, ColumnRef):
            return ColumnRef(self.resolve(expression.name))
        if isinstance(expression, Literal):
            return expression
        if isinstance(expression, BinaryOp):
            return BinaryOp(
                expression.op,
                self.resolve_expression(expression.left),
                self.resolve_expression(expression.right),
            )
        if isinstance(expression, BooleanOp):
            return BooleanOp(
                expression.op,
                self.resolve_expression(expression.left),
                self.resolve_expression(expression.right),
            )
        if isinstance(expression, NotOp):
            return NotOp(self.resolve_expression(expression.operand))
        raise PlanError(
            f"cannot resolve names in {type(expression).__name__}"
        )
