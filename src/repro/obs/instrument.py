"""Operator-level actuals: rows, chunks, and wall time per plan node.

:func:`instrumented` hooks every operator in a physical plan tree by
shadowing its bound ``chunks`` method with a counting/timing wrapper
(an instance attribute, so ``self.children[i].chunks()`` and the base
``to_table`` both hit it). Because a parent's generator only advances
while the driver is inside *its* ``next()``, the time a child spends
producing chunks nests inside the parent's measurement — cumulative
time is inclusive, and ``self_seconds`` subtracts the children out.

The hooks are removed when the context exits, so instrumentation is
strictly opt-in and the un-instrumented engine stays untouched.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.operators.base import PhysicalOperator


def format_bytes(nbytes: int | float) -> str:
    """Human-readable bytes: ``0B``, ``512B``, ``4.0KiB``, ``1.5MiB``..."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


@dataclass
class OperatorStats:
    """Measured actuals of one operator node after execution.

    When the plan was lowered from an optimised plan tree, the
    ``estimated_*`` fields carry the optimiser's predictions for the
    node, and :attr:`qerror` grades them against the measured actuals.
    """

    name: str
    description: str
    rows_out: int = 0
    chunks_out: int = 0
    #: wall seconds spent inside this operator's iterator, children
    #: included (inclusive time).
    cumulative_seconds: float = 0.0
    #: the optimiser's predicted output cardinality (None = no estimate).
    estimated_rows: float | None = None
    #: the optimiser's predicted cumulative cost, in cost-model units.
    estimated_cost: float | None = None
    #: the optimiser's predicted distinct-group count (join/group-by).
    estimated_groups: float | None = None
    #: the plan-node kind ('scan', 'join', ...) behind this operator.
    plan_op: str = ""
    #: the algorithm family the optimiser chose (e.g. 'HG', 'SPHJ').
    plan_algorithm: str = ""
    #: peak working-set bytes the operator reported while executing
    #: (sampled from ``PhysicalOperator.memory_bytes()``).
    peak_memory_bytes: int = 0
    #: workers this operator's morsel batches were scheduled across
    #: (0 = no morsel batch ran; 1 = batches ran inline, serial).
    parallel_degree: int = 0
    #: summed worker wall seconds of the operator's morsel batches.
    worker_busy_seconds: float = 0.0
    #: disk segments read by this operator (out-of-core scans only).
    segments_read: int = 0
    #: disk segments skipped via zone maps without any I/O.
    segments_skipped: int = 0
    #: cold payload bytes read from disk (buffer-pool misses).
    bytes_read: int = 0
    children: list["OperatorStats"] = field(default_factory=list)

    @property
    def rows_in(self) -> int:
        """Rows that flowed into this operator (sum of children's output)."""
        return sum(child.rows_out for child in self.children)

    @property
    def qerror(self) -> float | None:
        """Cardinality q-error ``max(est/act, act/est)``; None when the
        operator carries no estimate (hand-built plans)."""
        if self.estimated_rows is None:
            return None
        from repro.core.cost.cardinality import qerror as _qerror

        return _qerror(self.estimated_rows, self.rows_out)

    @property
    def operator_kind(self) -> str:
        """Stable feedback key: plan op plus algorithm, e.g.
        ``'group_by[HG]'``; falls back to the operator class name."""
        base = self.plan_op or self.name
        return f"{base}[{self.plan_algorithm}]" if self.plan_algorithm else base

    @property
    def parallel_speedup(self) -> float | None:
        """Effective intra-operator speedup: summed worker busy time over
        the operator's exclusive wall time. ``None`` when the operator
        ran no parallel morsel batch (degree < 2) or no time was
        measured."""
        if self.parallel_degree < 2 or self.self_seconds <= 0.0:
            return None
        return self.worker_busy_seconds / self.self_seconds

    @property
    def self_seconds(self) -> float:
        """Exclusive time: cumulative minus the children's cumulative."""
        return max(
            0.0,
            self.cumulative_seconds
            - sum(child.cumulative_seconds for child in self.children),
        )

    def walk(self) -> Iterator["OperatorStats"]:
        """Pre-order traversal of the stats tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        """The stats tree as indented text, mirroring ``explain()``."""
        line = (
            f"{'  ' * indent}{self.description}  "
            f"[actual rows={self.rows_out:,} chunks={self.chunks_out} "
            f"self={self.self_seconds * 1e3:.3f}ms "
            f"cum={self.cumulative_seconds * 1e3:.3f}ms "
            f"peak {format_bytes(self.peak_memory_bytes)}]"
        )
        if self.parallel_degree > 1:
            line += (
                f"  [parallel workers={self.parallel_degree} "
                f"busy={self.worker_busy_seconds * 1e3:.3f}ms"
            )
            speedup = self.parallel_speedup
            if speedup is not None:
                line += f" speedup={speedup:.2f}x"
            line += "]"
        if self.segments_read or self.segments_skipped:
            line += (
                f"  [io segments={self.segments_read} "
                f"skipped={self.segments_skipped} "
                f"cold={format_bytes(self.bytes_read)}]"
            )
        if self.estimated_rows is not None:
            line += (
                f"  [est {self.estimated_rows:,.0f} rows · "
                f"act {self.rows_out:,} · q={self.qerror:.2f}]"
            )
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-friendly representation of the subtree."""
        record = {
            "name": self.name,
            "description": self.description,
            "operator_kind": self.operator_kind,
            "plan_op": self.plan_op,
            "plan_algorithm": self.plan_algorithm,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "chunks_out": self.chunks_out,
            "self_seconds": self.self_seconds,
            "cumulative_seconds": self.cumulative_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "children": [child.to_dict() for child in self.children],
        }
        if self.parallel_degree > 0:
            record["parallel_degree"] = self.parallel_degree
            record["worker_busy_seconds"] = self.worker_busy_seconds
        # I/O keys only when the operator touched disk, so records from
        # in-memory runs are byte-identical to the pre-disk era.
        if self.segments_read or self.segments_skipped or self.bytes_read:
            record["segments_read"] = self.segments_read
            record["segments_skipped"] = self.segments_skipped
            record["bytes_read"] = self.bytes_read
        if self.estimated_rows is not None:
            record["estimated_rows"] = self.estimated_rows
            record["estimated_cost"] = self.estimated_cost
            if self.estimated_groups is not None:
                record["estimated_groups"] = self.estimated_groups
            record["qerror"] = self.qerror
        return record


def _sample_parallelism(
    operator: PhysicalOperator, stats: OperatorStats
) -> None:
    """Copy the operator's morsel-scheduling facts into its stats node
    (monotone within one run; the accounting accumulates per run)."""
    degree = operator.parallel_degree()
    if degree > stats.parallel_degree:
        stats.parallel_degree = degree
    busy = operator.worker_busy_seconds()
    if busy > stats.worker_busy_seconds:
        stats.worker_busy_seconds = busy
    read, skipped, cold = operator.io_counters()
    if read > stats.segments_read:
        stats.segments_read = read
    if skipped > stats.segments_skipped:
        stats.segments_skipped = skipped
    if cold > stats.bytes_read:
        stats.bytes_read = cold


def _hook(
    operator: PhysicalOperator,
    stats: OperatorStats,
    state: dict,
    is_root: bool,
) -> None:
    original = operator.chunks  # the bound, un-instrumented method

    def instrumented_chunks():
        if is_root:
            # A fresh pull on the root is a fresh execution: every
            # operator resets on its first call of this generation, so
            # re-running the same tree never double-counts rows, time,
            # or memory peaks.
            state["generation"] += 1
        if state["seen"].get(id(stats)) != state["generation"]:
            state["seen"][id(stats)] = state["generation"]
            stats.rows_out = 0
            stats.chunks_out = 0
            stats.cumulative_seconds = 0.0
            stats.peak_memory_bytes = 0
            stats.parallel_degree = 0
            stats.worker_busy_seconds = 0.0
            stats.segments_read = 0
            stats.segments_skipped = 0
            stats.bytes_read = 0
            operator.reset_memory_accounting()
        iterator = original()
        while True:
            started = time.perf_counter()
            try:
                chunk = next(iterator)
            except StopIteration:
                stats.cumulative_seconds += time.perf_counter() - started
                peak = operator.memory_bytes()
                if peak > stats.peak_memory_bytes:
                    stats.peak_memory_bytes = peak
                _sample_parallelism(operator, stats)
                return
            stats.cumulative_seconds += time.perf_counter() - started
            stats.rows_out += chunk.num_rows
            stats.chunks_out += 1
            # Sample after every chunk too, so early-terminated pulls
            # (e.g. below a Limit) still record their peak.
            peak = operator.memory_bytes()
            if peak > stats.peak_memory_bytes:
                stats.peak_memory_bytes = peak
            _sample_parallelism(operator, stats)
            yield chunk

    operator.chunks = instrumented_chunks  # type: ignore[method-assign]


@contextmanager
def instrumented(root: PhysicalOperator) -> Iterator[OperatorStats]:
    """Hook ``root``'s whole tree; yields the mirror stats tree.

    Each pull on the *root* inside the ``with`` block starts a fresh
    execution: per-operator counters (rows, chunks, time, memory peaks)
    reset rather than accumulate, so the stats always describe the most
    recent run. On exit every hook is removed, restoring the plan to
    its zero-overhead state. Shared sub-operators (diamond plans) are
    hooked once and their stats object appears under every parent.
    """
    hooked: list[PhysicalOperator] = []
    memo: dict[int, OperatorStats] = {}
    state: dict = {"generation": 0, "seen": {}}

    def build(operator: PhysicalOperator) -> OperatorStats:
        if id(operator) in memo:
            return memo[id(operator)]
        stats = OperatorStats(
            name=operator.name,
            description=operator.describe(),
            estimated_rows=operator.estimated_rows,
            estimated_cost=operator.estimated_cost,
            estimated_groups=operator.estimated_groups,
            plan_op=operator.plan_op,
            plan_algorithm=operator.plan_algorithm,
        )
        memo[id(operator)] = stats
        for child in operator.children:
            stats.children.append(build(child))
        _hook(operator, stats, state, is_root=operator is root)
        hooked.append(operator)
        operator.reset_memory_accounting()
        return stats

    stats_root = build(root)
    try:
        yield stats_root
    finally:
        for operator in hooked:
            operator.__dict__.pop("chunks", None)
