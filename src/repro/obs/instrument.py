"""Operator-level actuals: rows, chunks, and wall time per plan node.

:func:`instrumented` hooks every operator in a physical plan tree by
shadowing its bound ``chunks`` method with a counting/timing wrapper
(an instance attribute, so ``self.children[i].chunks()`` and the base
``to_table`` both hit it). Because a parent's generator only advances
while the driver is inside *its* ``next()``, the time a child spends
producing chunks nests inside the parent's measurement — cumulative
time is inclusive, and ``self_seconds`` subtracts the children out.

The hooks are removed when the context exits, so instrumentation is
strictly opt-in and the un-instrumented engine stays untouched.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.operators.base import PhysicalOperator


@dataclass
class OperatorStats:
    """Measured actuals of one operator node after execution."""

    name: str
    description: str
    rows_out: int = 0
    chunks_out: int = 0
    #: wall seconds spent inside this operator's iterator, children
    #: included (inclusive time).
    cumulative_seconds: float = 0.0
    children: list["OperatorStats"] = field(default_factory=list)

    @property
    def rows_in(self) -> int:
        """Rows that flowed into this operator (sum of children's output)."""
        return sum(child.rows_out for child in self.children)

    @property
    def self_seconds(self) -> float:
        """Exclusive time: cumulative minus the children's cumulative."""
        return max(
            0.0,
            self.cumulative_seconds
            - sum(child.cumulative_seconds for child in self.children),
        )

    def walk(self) -> Iterator["OperatorStats"]:
        """Pre-order traversal of the stats tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        """The stats tree as indented text, mirroring ``explain()``."""
        lines = [
            f"{'  ' * indent}{self.description}  "
            f"[actual rows={self.rows_out:,} chunks={self.chunks_out} "
            f"self={self.self_seconds * 1e3:.3f}ms "
            f"cum={self.cumulative_seconds * 1e3:.3f}ms]"
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-friendly representation of the subtree."""
        return {
            "name": self.name,
            "description": self.description,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "chunks_out": self.chunks_out,
            "self_seconds": self.self_seconds,
            "cumulative_seconds": self.cumulative_seconds,
            "children": [child.to_dict() for child in self.children],
        }


def _hook(operator: PhysicalOperator, stats: OperatorStats) -> None:
    original = operator.chunks  # the bound, un-instrumented method

    def instrumented_chunks():
        iterator = original()
        while True:
            started = time.perf_counter()
            try:
                chunk = next(iterator)
            except StopIteration:
                stats.cumulative_seconds += time.perf_counter() - started
                return
            stats.cumulative_seconds += time.perf_counter() - started
            stats.rows_out += chunk.num_rows
            stats.chunks_out += 1
            yield chunk

    operator.chunks = instrumented_chunks  # type: ignore[method-assign]


@contextmanager
def instrumented(root: PhysicalOperator) -> Iterator[OperatorStats]:
    """Hook ``root``'s whole tree; yields the mirror stats tree.

    Executions inside the ``with`` block accumulate into the stats;
    on exit every hook is removed, restoring the plan to its
    zero-overhead state. Shared sub-operators (diamond plans) are
    hooked once and their stats object appears under every parent.
    """
    hooked: list[PhysicalOperator] = []
    memo: dict[int, OperatorStats] = {}

    def build(operator: PhysicalOperator) -> OperatorStats:
        if id(operator) in memo:
            return memo[id(operator)]
        stats = OperatorStats(
            name=operator.name, description=operator.describe()
        )
        memo[id(operator)] = stats
        for child in operator.children:
            stats.children.append(build(child))
        _hook(operator, stats)
        hooked.append(operator)
        return stats

    stats_root = build(root)
    try:
        yield stats_root
    finally:
        for operator in hooked:
            operator.__dict__.pop("chunks", None)
