"""Thread-safe metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns a flat namespace of named instruments.
The design follows the usual production pattern (Prometheus-style
client): instruments are registered once, cheap to update from hot
paths, and read out as an atomic :meth:`~MetricsRegistry.snapshot`.

Observability is zero-cost by default: a registry constructed with
``enabled=False`` hands out shared no-op instruments whose update
methods do nothing, so instrumented code never needs an ``if`` around
its metric calls.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Iterable, Mapping

from repro.errors import ObservabilityError

#: default histogram bucket upper bounds, in seconds — tuned for the
#: engine's execution times (sub-millisecond kernels up to multi-second
#: benchmark queries). The implicit +Inf bucket is always appended.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (e.g. frontier size, queue depth)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit +Inf bucket catches everything above the last bound.

    Observations may carry a ``trace_id``; the histogram keeps the most
    recent one as its *exemplar* (the Prometheus pattern): a pointer
    from the aggregate back to one concrete request, so a latency spike
    in a dashboard resolves to a traceable query. Last-write-wins — an
    exemplar is a sample, not a log.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "help",
        "buckets",
        "_lock",
        "_counts",
        "_sum",
        "_count",
        "_exemplar",
    )

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bucket")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing: "
                f"{bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._exemplar: tuple[str, float] | None = None

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation; ``trace_id`` updates the exemplar."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if trace_id:
                self._exemplar = (str(trace_id), value)

    @property
    def exemplar(self) -> tuple[str, float] | None:
        """The most recent ``(trace_id, value)`` observation, or None."""
        return self._exemplar

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the +Inf bucket)."""
        return list(self._counts)

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation within the covering bucket.

        The fixed buckets only bound each observation, so the estimate
        interpolates the rank inside the bucket's [lower, upper] range
        (the first bucket's lower edge is 0, matching the registry's
        non-negative durations). Ranks landing in the +Inf bucket clamp
        to the last finite bound — the histogram cannot know more. An
        empty histogram reports 0.0.

        :raises ObservabilityError: when ``q`` is outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q!r}"
            )
        with self._lock:
            counts = list(self._counts)
            total = self._count
        return self._quantile_from(counts, total, q)

    def _quantile_from(self, counts: list[int], total: int, q: float) -> float:
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                if index >= len(self.buckets):
                    return self.buckets[-1]  # +Inf bucket: clamp
                lower = self.buckets[index - 1] if index > 0 else 0.0
                upper = self.buckets[index]
                fraction = (rank - previous) / count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    @property
    def p50(self) -> float:
        """Approximate median (see :meth:`quantile`)."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """Approximate 90th percentile (see :meth:`quantile`)."""
        return self.quantile(0.90)

    @property
    def p95(self) -> float:
        """Approximate 95th percentile (see :meth:`quantile`)."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """Approximate 99th percentile (see :meth:`quantile`)."""
        return self.quantile(0.99)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0
            self._exemplar = None

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
            exemplar = self._exemplar
        record = {
            "count": total,
            "sum": total_sum,
            "p50": self._quantile_from(counts, total, 0.50),
            "p90": self._quantile_from(counts, total, 0.90),
            "p95": self._quantile_from(counts, total, 0.95),
            "p99": self._quantile_from(counts, total, 0.99),
            "buckets": {
                **{
                    repr(bound): count
                    for bound, count in zip(self.buckets, counts)
                },
                "+Inf": counts[-1],
            },
        }
        if exemplar is not None:
            record["exemplar"] = {
                "trace_id": exemplar[0],
                "value": exemplar[1],
            }
        return record


class _NullInstrument:
    """Shared no-op instrument handed out by a disabled registry."""

    kind = "null"
    name = ""
    help = ""
    value = 0
    count = 0
    sum = 0.0
    buckets = ()
    bucket_counts: list[int] = []
    p50 = p90 = p95 = p99 = 0.0
    exemplar = None

    def quantile(self, q: float) -> float:
        return 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float, trace_id: str | None = None) -> None:
        pass

    def reset(self) -> None:
        pass

    def snapshot(self):
        return None


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A named collection of instruments with atomic read-out.

    :param enabled: when False, every factory returns a shared no-op
        instrument and the registry stays empty — instrumented code
        pays only an attribute lookup.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # -- registration -------------------------------------------------------

    def _register(self, instrument, exist_ok: bool):
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if exist_ok and existing.kind == instrument.kind:
                    return existing
                raise ObservabilityError(
                    f"metric {instrument.name!r} already registered as a "
                    f"{existing.kind}"
                )
            self._instruments[instrument.name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", exist_ok: bool = False) -> Counter:
        """Register (or with ``exist_ok`` fetch) a counter."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._register(Counter(name, help), exist_ok)

    def gauge(self, name: str, help: str = "", exist_ok: bool = False) -> Gauge:
        """Register (or with ``exist_ok`` fetch) a gauge."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._register(Gauge(name, help), exist_ok)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        help: str = "",
        exist_ok: bool = False,
    ) -> Histogram:
        """Register (or with ``exist_ok`` fetch) a histogram."""
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        return self._register(Histogram(name, buckets, help), exist_ok)

    # -- read-out -----------------------------------------------------------

    def get(self, name: str):
        """The instrument registered under ``name``.

        :raises ObservabilityError: when no such metric exists.
        """
        instrument = self._instruments.get(name)
        if instrument is None:
            raise ObservabilityError(
                f"no metric named {name!r}; have {sorted(self._instruments)}"
            )
        return instrument

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._instruments)

    def kinds(self) -> dict[str, str]:
        """``{name: kind}`` for every registered instrument — the shape
        the Prometheus exposition renderer needs to type a snapshot that
        crossed a process boundary (:mod:`repro.obs.exposition`)."""
        with self._lock:
            return {
                name: instrument.kind
                for name, instrument in self._instruments.items()
            }

    def snapshot(self) -> dict:
        """An atomic ``{name: value}`` view of every instrument.

        Counters and gauges map to their scalar value; histograms map to
        a ``{count, sum, buckets}`` dict.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        return {
            instrument.name: instrument.snapshot() for instrument in instruments
        }

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    # -- rendering ----------------------------------------------------------

    def render_text(self, title: str = "metrics") -> str:
        """A fixed-width human-readable dump, one line per instrument."""
        lines = [title]
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.kind == "histogram":
                mean = instrument.sum / instrument.count if instrument.count else 0.0
                lines.append(
                    f"  {name} = count={instrument.count} "
                    f"sum={instrument.sum:.6g} mean={mean:.6g}"
                )
            else:
                lines.append(f"  {name} = {instrument.snapshot()}")
        if len(lines) == 1:
            lines.append("  (no metrics registered)")
        return "\n".join(lines)

    def render_json(self, **extra: object) -> str:
        """The snapshot as a JSON document (``extra`` merges in as-is)."""
        record: dict = {"metrics": self.snapshot()}
        record.update(extra)
        return json.dumps(record, indent=2, sort_keys=True, default=str)


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Sum counter/gauge values across snapshots (histograms are kept
    from the last snapshot that has them) — used when per-thread
    registries are aggregated for reporting."""
    merged: dict = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if isinstance(value, (int, float)) and isinstance(
                merged.get(name), (int, float)
            ):
                merged[name] += value
            else:
                merged[name] = value
    return merged
