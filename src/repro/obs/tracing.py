"""Nested span tracing with JSON and Chrome trace export.

A :class:`Tracer` hands out :class:`Span` context managers; spans nest
per-thread (the innermost open span is the parent of the next one), so
wrapping the optimiser's phases and the engine's operators yields a
tree of timed regions. Finished spans export either as plain JSON or
as the Chrome ``chrome://tracing`` / Perfetto event format (open the
file in a Chromium browser's tracing UI to see the flame chart).

Like metrics, tracing is zero-cost by default: a disabled tracer hands
out one shared no-op span.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Mapping

from repro.errors import ObservabilityError


class Span:
    """One timed region: name, tags, start offset, duration, parent.

    Spans are created by :meth:`Tracer.span` (already started); calling
    :meth:`end` on a span that was never started, or twice, raises
    :class:`~repro.errors.ObservabilityError`.
    """

    __slots__ = (
        "name",
        "tags",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "thread_id",
        "_tracer",
    )

    def __init__(self, name: str, tags: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.tags: dict[str, Any] = dict(tags or {})
        self.span_id = 0
        self.parent_id: int | None = None
        #: seconds since the owning tracer's epoch; None until started.
        self.start: float | None = None
        #: seconds; None while the span is open.
        self.duration: float | None = None
        self.thread_id = 0
        self._tracer: "Tracer | None" = None

    def set_tag(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one tag."""
        self.tags[key] = value

    def end(self) -> None:
        """Close the span and record it with its tracer."""
        if self.start is None or self._tracer is None:
            raise ObservabilityError(
                f"span {self.name!r} was never started; use Tracer.span()"
            )
        if self.duration is not None:
            raise ObservabilityError(f"span {self.name!r} already ended")
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        if self.duration is None:
            self.end()

    def to_dict(self) -> dict:
        """A plain-JSON representation of the finished span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start,
            "duration_s": self.duration,
            "thread_id": self.thread_id,
            "tags": dict(self.tags),
        }


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()
    name = ""
    tags: dict[str, Any] = {}

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested spans and exports the finished trace.

    :param enabled: when False, :meth:`span` returns a shared no-op
        span and nothing is recorded.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._next_id = 1
        self._finished: list[Span] = []

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags: Any) -> Span | _NullSpan:
        """Open a span nested under the current thread's innermost open
        span. Use as a context manager, or call :meth:`Span.end`."""
        if not self.enabled:
            return _NULL_SPAN
        span = Span(name, tags)
        span._tracer = self
        span.start = time.perf_counter() - self._epoch
        span.thread_id = threading.get_ident()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration = (time.perf_counter() - self._epoch) - span.start
        stack = self._stack()
        if span in stack:
            # Close any dangling descendants too (misnested exits).
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        with self._lock:
            self._finished.append(span)

    # -- read-out -----------------------------------------------------------

    @property
    def finished_spans(self) -> list[Span]:
        """Finished spans, in end order."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop all finished spans and restart the epoch."""
        with self._lock:
            self._finished.clear()
            self._epoch = time.perf_counter()
            self._next_id = 1

    def to_dicts(self) -> list[dict]:
        """All finished spans as plain dicts, in end order."""
        return [span.to_dict() for span in self.finished_spans]

    def export_json(self) -> str:
        """The finished trace as a JSON document."""
        return json.dumps({"spans": self.to_dicts()}, indent=2, default=str)

    def export_chrome_trace(self) -> str:
        """The trace in Chrome's trace-event format.

        Save to a file and load it in ``chrome://tracing`` (or
        https://ui.perfetto.dev) to browse the flame chart. Durations
        use complete events (``"ph": "X"``) with microsecond units.
        """
        events = [
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round((span.duration or 0.0) * 1e6, 3),
                "pid": 0,
                "tid": span.thread_id,
                "args": dict(span.tags),
            }
            for span in self.finished_spans
        ]
        return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
