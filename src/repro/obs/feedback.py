"""Estimate-vs-actual feedback: the optimiser grading its own homework.

Every instrumented execution of an optimised plan yields, per operator,
the pair (estimated rows, actual rows) plus the measured wall time. This
module accumulates those pairs into a :class:`FeedbackStore`:

- **q-error reporting** — per operator kind (``'join[SPHJ]'``,
  ``'group_by[HG]'``...), the multiplicative estimation error
  ``max(est/act, act/est)`` is summarised (count / mean / p50 / max), the
  signal "Query Optimization in the Wild" identifies as the dominant
  real-world optimiser failure mode.
- **cost-model refitting** — group-by measurements convert into
  :class:`repro.core.cost.calibrated.Sample` records
  ``(rows_in, groups, seconds)``, exactly what
  :func:`~repro.core.cost.calibrated.fit_coefficients` consumes, so a
  :class:`~repro.core.cost.calibrated.CalibratedCostModel` can be refit
  from *production* executions instead of offline microbenchmarks — a
  measured adaptive-reoptimisation loop.

Imports of the cost-model layer are deferred to call time: ``repro.core``
reports into ``repro.obs`` at module import, so the reverse edge must not
exist at import time.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cost.calibrated import CalibratedCostModel, Sample
    from repro.obs.instrument import OperatorStats


@dataclass(frozen=True)
class FeedbackSample:
    """One graded operator execution: what the optimiser predicted vs.
    what the engine measured."""

    #: stable operator identity, e.g. ``'group_by[HG]'``.
    operator_kind: str
    #: the plan-node kind ('scan', 'join', 'group_by', ...).
    plan_op: str
    #: the chosen algorithm family name ('' for non-algorithmic nodes).
    algorithm: str
    #: the optimiser's predicted output cardinality.
    estimated_rows: float
    #: the measured output cardinality.
    actual_rows: int
    #: measured input cardinality (sum of the children's output).
    rows_in: int
    #: the optimiser's predicted distinct-group count (0.0 when n/a).
    estimated_groups: float
    #: measured exclusive wall seconds spent in the operator.
    seconds: float

    @property
    def qerror(self) -> float:
        """Cardinality q-error of this sample."""
        from repro.core.cost.cardinality import qerror

        return qerror(self.estimated_rows, self.actual_rows)


class FeedbackStore:
    """Thread-safe accumulator of :class:`FeedbackSample` records.

    Feed it from :func:`repro.engine.executor.explain_analyze` (pass the
    store as ``feedback=``) or directly via :meth:`record_plan`; read it
    back as a q-error summary or as calibration samples.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples: list[FeedbackSample] = []

    # -- recording ----------------------------------------------------------

    def record(self, sample: FeedbackSample) -> None:
        """Append one sample."""
        with self._lock:
            self._samples.append(sample)

    def record_plan(self, root: "OperatorStats") -> int:
        """Record every estimate-carrying node of a measured stats tree.

        Nodes without estimates (hand-built plans, enforcer internals)
        are skipped. Returns the number of samples recorded.
        """
        recorded = 0
        for node in root.walk():
            if node.estimated_rows is None:
                continue
            self.record(
                FeedbackSample(
                    operator_kind=node.operator_kind,
                    plan_op=node.plan_op,
                    algorithm=node.plan_algorithm,
                    estimated_rows=node.estimated_rows,
                    actual_rows=node.rows_out,
                    rows_in=node.rows_in,
                    estimated_groups=node.estimated_groups or 0.0,
                    seconds=node.self_seconds,
                )
            )
            recorded += 1
        return recorded

    # -- read-out -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[FeedbackSample]:
        return iter(self.samples())

    def samples(self) -> list[FeedbackSample]:
        """A snapshot copy of all recorded samples."""
        with self._lock:
            return list(self._samples)

    def clear(self) -> None:
        """Drop all samples."""
        with self._lock:
            self._samples.clear()

    def qerror_summary(self) -> dict[str, dict]:
        """Per operator kind: ``{count, mean, p50, max}`` of the q-errors.

        Unbounded misses (one side of the estimate is zero) participate
        in ``max`` but are excluded from ``mean``/``p50`` so a single
        empty intermediate does not wash out the distribution.
        """
        by_kind: dict[str, list[float]] = {}
        for sample in self.samples():
            by_kind.setdefault(sample.operator_kind, []).append(sample.qerror)
        summary: dict[str, dict] = {}
        for kind, errors in sorted(by_kind.items()):
            finite = sorted(e for e in errors if math.isfinite(e))
            summary[kind] = {
                "count": len(errors),
                "mean": sum(finite) / len(finite) if finite else math.inf,
                "p50": finite[(len(finite) - 1) // 2] if finite else math.inf,
                "max": max(errors),
            }
        return summary

    def grouping_samples(self) -> dict:
        """Group-by measurements as calibration samples, keyed by
        :class:`~repro.engine.kernels.grouping.GroupingAlgorithm`.

        Each sample is ``(rows_in, actual groups, self seconds)`` — the
        *measured* group count, not the estimate, so the fit learns from
        ground truth. Joins are recorded for q-error reporting but not
        converted: one join measurement covers build and probe together
        and cannot be attributed to either side.
        """
        from repro.core.cost.calibrated import Sample
        from repro.engine.kernels.grouping import GroupingAlgorithm

        by_algorithm: dict = {}
        for sample in self.samples():
            if sample.plan_op != "group_by" or not sample.algorithm:
                continue
            try:
                algorithm = GroupingAlgorithm[sample.algorithm]
            except KeyError:
                continue
            by_algorithm.setdefault(algorithm, []).append(
                Sample(
                    rows=sample.rows_in,
                    groups=max(sample.actual_rows, 1),
                    seconds=sample.seconds,
                )
            )
        return by_algorithm

    def refit(self, minimum_samples: int = 4) -> "CalibratedCostModel":
        """Fit a :class:`~repro.core.cost.calibrated.CalibratedCostModel`
        from the accumulated group-by measurements.

        Only algorithms with at least ``minimum_samples`` samples are
        fitted (:func:`~repro.core.cost.calibrated.fit_coefficients`
        needs 4 for its 4-term basis).

        :raises CostModelError: when no algorithm has enough samples.
        """
        from repro.core.cost.calibrated import calibrate_grouping
        from repro.errors import CostModelError

        eligible = {
            algorithm: samples
            for algorithm, samples in self.grouping_samples().items()
            if len(samples) >= max(minimum_samples, 4)
        }
        if not eligible:
            raise CostModelError(
                "feedback store has no algorithm with >= "
                f"{max(minimum_samples, 4)} group-by samples "
                f"({len(self)} sample(s) total)"
            )
        return calibrate_grouping(eligible)

    def render(self) -> str:
        """A human-readable q-error table, one line per operator kind."""
        summary = self.qerror_summary()
        lines = [f"feedback: {len(self)} sample(s)"]
        if not summary:
            lines.append("  (no estimate-carrying operators recorded)")
        for kind, stats in summary.items():
            lines.append(
                f"  {kind:<24} count={stats['count']:<5} "
                f"mean q={stats['mean']:.2f} p50 q={stats['p50']:.2f} "
                f"max q={stats['max']:.2f}"
            )
        return "\n".join(lines)
