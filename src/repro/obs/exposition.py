"""Prometheus text-format exposition for metrics snapshots, plus a CLI.

:func:`render_prometheus` turns a :meth:`~repro.obs.metrics.
MetricsRegistry.snapshot` into the Prometheus text exposition format
(version 0.0.4): ``# HELP`` / ``# TYPE`` comment pairs, counters
suffixed ``_total``, histograms expanded into cumulative ``_bucket``
series with ``le`` labels plus ``_sum`` / ``_count``, and — when a
histogram snapshot carries an exemplar — an OpenMetrics-style exemplar
(``# {trace_id="..."} value``) on the first bucket that covers it, so a
scrape links straight back to one traceable request.

Snapshots are ``{name: scalar | dict}`` and do not carry instrument
kinds; pass the registry's :meth:`~repro.obs.metrics.MetricsRegistry.
kinds` mapping (the server's ``metrics`` op ships both) to type scalars
correctly. Without it, scalars render as gauges — valid, just less
precise.

:func:`parse_prometheus` is the matching validating parser (used by
tests and the CI smoke to assert the output is well-formed), and

``python -m repro.obs.exposition`` renders either a live server's
metrics (``--host/--port``, speaking the JSON-lines protocol's
``metrics`` op) or a snapshot JSON file (``--snapshot``)::

    python -m repro.obs.exposition --host 127.0.0.1 --port 7432
    python -m repro.obs.exposition --snapshot artifacts/metrics.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Mapping

from repro.errors import ObservabilityError

#: metric and label name grammar (Prometheus data model).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: one sample line: name, optional {labels}, value, optional exemplar.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^ #]+)"
    r"(?:\s+#\s+\{(?P<ex_labels>[^}]*)\}\s+(?P<ex_value>\S+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted registry name onto the Prometheus grammar.

    Dots and dashes become underscores (``service.queue_depth`` →
    ``repro_service_queue_depth``); any remaining illegal character is
    dropped.
    """
    flat = re.sub(r"[.\-]", "_", name)
    flat = re.sub(r"[^a-zA-Z0-9_:]", "", flat)
    candidate = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_RE.match(candidate):
        candidate = f"_{candidate}"
    return candidate


def _format_value(value: float) -> str:
    """A float the text format accepts (``+Inf`` spelling included)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _histogram_lines(name: str, record: Mapping) -> list[str]:
    """Expand one histogram snapshot into cumulative bucket series."""
    lines = [f"# TYPE {name} histogram"]
    exemplar = record.get("exemplar")
    buckets = record.get("buckets", {})

    def bound_of(key: str) -> float:
        return float("inf") if key == "+Inf" else float(key)

    cumulative = 0
    exemplar_used = False
    for key in sorted(buckets, key=bound_of):
        bound = bound_of(key)
        cumulative += int(buckets[key])
        line = f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
        if (
            exemplar is not None
            and not exemplar_used
            and float(exemplar.get("value", 0.0)) <= bound
        ):
            line += (
                f' # {{trace_id="{exemplar.get("trace_id", "")}"}} '
                f'{_format_value(float(exemplar.get("value", 0.0)))}'
            )
            exemplar_used = True
        lines.append(line)
    lines.append(f"{name}_sum {_format_value(float(record.get('sum', 0.0)))}")
    lines.append(f"{name}_count {int(record.get('count', 0))}")
    return lines


def render_prometheus(
    snapshot: Mapping,
    kinds: Mapping[str, str] | None = None,
    prefix: str = "repro",
    help_text: Mapping[str, str] | None = None,
) -> str:
    """The snapshot in Prometheus text exposition format.

    :param snapshot: a :meth:`MetricsRegistry.snapshot` mapping.
    :param kinds: ``{name: kind}`` from :meth:`MetricsRegistry.kinds`;
        scalars without a kind render as gauges.
    :param prefix: namespace prepended to every metric name.
    :param help_text: optional ``{name: help}`` for ``# HELP`` lines.
    """
    kinds = kinds or {}
    help_text = help_text or {}
    lines: list[str] = []
    for raw_name in sorted(snapshot):
        value = snapshot[raw_name]
        name = sanitize_metric_name(raw_name, prefix)
        help_line = help_text.get(raw_name, "")
        if help_line:
            lines.append(f"# HELP {name} {help_line}")
        if isinstance(value, Mapping):
            lines.extend(_histogram_lines(name, value))
        elif isinstance(value, (int, float)):
            kind = kinds.get(raw_name, "gauge")
            if kind == "counter":
                lines.append(f"# TYPE {name}_total counter")
                lines.append(f"{name}_total {_format_value(float(value))}")
            else:
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(float(value))}")
        # None (a disabled registry's snapshot) renders nothing.
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict:
    """Parse (and validate) Prometheus text exposition back into
    ``{name: {labels_tuple: value}}``.

    This is the round-trip check the tests and the CI smoke rely on: a
    malformed line — bad metric name, unquoted label, non-numeric value,
    non-monotonic histogram buckets — raises
    :class:`~repro.errors.ObservabilityError` with the offending line.
    """
    series: dict[str, dict[tuple, float]] = {}
    typed: dict[str, str] = {}
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                if not _NAME_RE.match(parts[2]):
                    raise ObservabilityError(
                        f"bad metric name in comment: {line!r}"
                    )
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in (
                        "counter",
                        "gauge",
                        "histogram",
                        "summary",
                        "untyped",
                    ):
                        raise ObservabilityError(
                            f"bad TYPE comment: {line!r}"
                        )
                    typed[parts[2]] = parts[3]
                continue
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ObservabilityError(f"malformed exposition line: {line!r}")
        labels: list[tuple[str, str]] = []
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                labels.append((pair.group(1), pair.group(2)))
                consumed = pair.end()
            remainder = label_text[consumed:].strip().strip(",")
            if remainder:
                raise ObservabilityError(
                    f"malformed labels in line: {line!r}"
                )
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ObservabilityError(
                f"non-numeric sample value in line: {line!r}"
            ) from error
        if match.group("ex_value") is not None:
            try:
                float(match.group("ex_value"))
            except ValueError as error:
                raise ObservabilityError(
                    f"non-numeric exemplar value in line: {line!r}"
                ) from error
        series.setdefault(match.group("name"), {})[tuple(labels)] = value

    # Histogram coherence: buckets cumulative and capped by _count.
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = series.get(f"{name}_bucket", {})
        ordered = sorted(
            (
                (
                    float("inf")
                    if dict(labels).get("le") == "+Inf"
                    else float(dict(labels).get("le", "inf"))
                ),
                value,
            )
            for labels, value in buckets.items()
        )
        previous = 0.0
        for bound, value in ordered:
            if value < previous:
                raise ObservabilityError(
                    f"histogram {name!r} buckets are not cumulative"
                )
            previous = value
        count = series.get(f"{name}_count", {}).get((), None)
        if ordered and count is not None and ordered[-1][1] != count:
            raise ObservabilityError(
                f"histogram {name!r} +Inf bucket != _count"
            )
    return series


def scrape_server(host: str, port: int, timeout: float = 10.0) -> dict:
    """One ``metrics`` request against a live :class:`~repro.service.
    server.QueryServer`; returns the response object."""
    from repro.service.server import ServiceClient

    with ServiceClient(host, port, timeout=timeout) as client:
        return client.metrics()


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.exposition`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.exposition",
        description="Render repro metrics as Prometheus text format.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--snapshot",
        default="",
        help="metrics snapshot JSON file (MetricsRegistry.render_json "
        "output or a bare snapshot mapping)",
    )
    source.add_argument(
        "--port", type=int, default=0, help="scrape a live QueryServer"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--prefix", default="repro", help="metric name namespace"
    )
    args = parser.parse_args(argv)
    try:
        if args.snapshot:
            record = json.loads(
                open(args.snapshot, encoding="utf-8").read()
            )
            snapshot = record.get("metrics", record)
            kinds = record.get("kinds", {})
        else:
            response = scrape_server(args.host, args.port)
            snapshot = response.get("metrics", {})
            kinds = response.get("kinds", {})
        text = render_prometheus(snapshot, kinds=kinds, prefix=args.prefix)
        parse_prometheus(text)  # never emit something we cannot read back
        sys.stdout.write(text)
    except (OSError, ValueError, ObservabilityError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
