"""Service-level objectives: sliding-window latency tracking per class.

An :class:`SLOTracker` watches completed (and failed) requests over a
sliding time window and answers the three questions an operator of a
live query service asks:

* **Are we fast enough?** Windowed p50/p95/p99 latency per priority
  class, computed *exactly* over the retained samples (nearest-rank, the
  same convention as the querylog CLI) rather than from fixed histogram
  buckets — the window is bounded, so exactness is affordable.
* **Are we meeting the objective?** Each :class:`SLObjective` states a
  latency bound and the fraction of requests that must meet it (e.g.
  "95% of NORMAL queries under 1s"). A request *violates* when it is
  slower than the bound — or when it failed: errors burn budget too.
* **How fast are we burning error budget?** ``burn_rate`` is the
  window's violation fraction divided by the allowed fraction
  ``(1 - target)`` — the standard SRE formulation: 1.0 means burning
  exactly at the sustainable rate, above 1.0 the budget runs out before
  the period does, 0.0 means a clean window.

The tracker is thread-safe and clock-injectable (tests drive a fake
clock). It deliberately stores raw samples — ``(time, latency, ok)``
per class — in bounded deques: with the default 5-minute window and
``max_samples`` cap, memory stays bounded under any load.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ObservabilityError
from repro.service.admission import Priority

#: retained samples per priority class — the window is also bounded by
#: count so a traffic flood cannot grow the tracker without limit.
DEFAULT_MAX_SAMPLES = 4096

#: sliding-window length in seconds.
DEFAULT_WINDOW_SECONDS = 300.0


@dataclass(frozen=True)
class SLObjective:
    """One class's objective: ``target`` of requests within ``latency``.

    ``SLObjective(1.0, 0.95)`` reads "95% of requests complete within
    one second"; its error budget is the other 5%.
    """

    #: the latency bound, in seconds.
    latency_seconds: float
    #: fraction of requests that must meet the bound (0 < target < 1).
    target: float

    def __post_init__(self) -> None:
        if self.latency_seconds <= 0:
            raise ObservabilityError(
                f"SLO latency must be > 0, got {self.latency_seconds}"
            )
        if not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"SLO target must be in (0, 1), got {self.target}"
            )

    @property
    def budget(self) -> float:
        """Allowed violation fraction (``1 - target``)."""
        return 1.0 - self.target


#: per-priority defaults: interactive traffic gets a tight bound at a
#: high target, batch work a loose bound at a lower one.
DEFAULT_OBJECTIVES: dict[Priority, SLObjective] = {
    Priority.HIGH: SLObjective(latency_seconds=0.25, target=0.99),
    Priority.NORMAL: SLObjective(latency_seconds=1.0, target=0.95),
    Priority.LOW: SLObjective(latency_seconds=5.0, target=0.90),
}


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``0 <= q <= 1``) of a non-empty list.

    The module's single percentile definition — the tracker, its tests'
    brute-force recomputation, and the querylog CLI all share it.
    """
    if not values:
        raise ObservabilityError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be in [0, 1], got {q!r}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class SLOTracker:
    """Sliding-window SLO accounting over one service's request stream."""

    def __init__(
        self,
        objectives: Mapping[Priority, SLObjective] | None = None,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ObservabilityError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self._objectives = dict(
            DEFAULT_OBJECTIVES if objectives is None else objectives
        )
        self._window = float(window_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        # (timestamp, latency_seconds, ok) per class, oldest first.
        self._samples: dict[Priority, deque] = {
            priority: deque(maxlen=max_samples) for priority in Priority
        }

    @property
    def window_seconds(self) -> float:
        return self._window

    def objective(self, priority: Priority) -> SLObjective | None:
        """The objective configured for ``priority``, or None."""
        return self._objectives.get(priority)

    def record(
        self,
        priority: Priority,
        latency_seconds: float,
        ok: bool = True,
    ) -> None:
        """Record one finished request (failures count as violations)."""
        priority = Priority(priority)
        with self._lock:
            self._samples[priority].append(
                (self._clock(), float(latency_seconds), bool(ok))
            )

    def _windowed(self, priority: Priority) -> list[tuple[float, float, bool]]:
        """In-window samples for one class (prunes expired ones)."""
        horizon = self._clock() - self._window
        samples = self._samples[priority]
        while samples and samples[0][0] < horizon:
            samples.popleft()
        return list(samples)

    def _class_snapshot(self, priority: Priority) -> dict:
        samples = self._windowed(priority)
        objective = self._objectives.get(priority)
        record: dict = {
            "count": len(samples),
            "errors": sum(1 for __, __, ok in samples if not ok),
        }
        if samples:
            latencies = [latency for __, latency, __ in samples]
            record.update(
                p50=percentile(latencies, 0.50),
                p95=percentile(latencies, 0.95),
                p99=percentile(latencies, 0.99),
            )
        if objective is not None:
            violations = sum(
                1
                for __, latency, ok in samples
                if not ok or latency > objective.latency_seconds
            )
            compliance = (
                1.0 - violations / len(samples) if samples else 1.0
            )
            record.update(
                objective_seconds=objective.latency_seconds,
                target=objective.target,
                violations=violations,
                compliance=compliance,
                burn_rate=(
                    (violations / len(samples)) / objective.budget
                    if samples
                    else 0.0
                ),
            )
        return record

    def burn_rate(self, priority: Priority) -> float:
        """The class's windowed error-budget burn rate (0.0 = clean,
        1.0 = burning exactly the sustainable rate, >1.0 = over).

        :raises ObservabilityError: when the class has no objective.
        """
        priority = Priority(priority)
        if priority not in self._objectives:
            raise ObservabilityError(
                f"no SLO objective configured for {priority.name}"
            )
        with self._lock:
            return self._class_snapshot(priority)["burn_rate"]

    def percentiles(self, priority: Priority | None = None) -> dict:
        """Windowed ``{p50, p95, p99}`` for one class (or all classes
        pooled when ``priority`` is None); empty window reports zeros."""
        with self._lock:
            if priority is not None:
                samples = self._windowed(Priority(priority))
            else:
                samples = [
                    sample
                    for p in Priority
                    for sample in self._windowed(p)
                ]
        latencies = [latency for __, latency, __ in samples]
        if not latencies:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        }

    def snapshot(self) -> dict:
        """Per-class SLO state plus a pooled total — the shape the
        ``health`` protocol op and ``obs.top`` dashboard consume."""
        with self._lock:
            classes = {
                priority.name: self._class_snapshot(priority)
                for priority in Priority
            }
        total_count = sum(c["count"] for c in classes.values())
        worst_burn = max(
            (
                c["burn_rate"]
                for c in classes.values()
                if "burn_rate" in c
            ),
            default=0.0,
        )
        return {
            "window_seconds": self._window,
            "classes": classes,
            "total_count": total_count,
            "worst_burn_rate": worst_burn,
        }
