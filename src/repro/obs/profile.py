"""Query profiles: one schema-versioned artifact per analysed query.

A :class:`QueryProfile` bundles everything the observability stack
measured about one execution — the operator tree with estimates,
actuals, q-errors and per-node peak memory, the span trace, and a
metrics snapshot — into a single JSON-serialisable record. Profiles are
what the persistent query log stores (``kind='profile'``) and what the
``querylog show`` CLI renders back.

Two export shapes make profiles visual without any plotting stack:

- :meth:`QueryProfile.to_folded_stacks` — the classic semicolon-joined
  folded-stacks format (``engine.execute;join 1234``), directly
  consumable by ``flamegraph.pl`` / speedscope / inferno.
- :meth:`QueryProfile.to_html` — a fully self-contained single-file
  HTML report (inline CSS, no external assets): span timeline, operator
  table, metrics, and the raw profile JSON embedded for re-parsing.
"""

from __future__ import annotations

import html as _html
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ObservabilityError
from repro.obs.instrument import format_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import AnalyzedPlan
    from repro.engine.operators.base import PhysicalOperator
    from repro.obs.feedback import FeedbackStore

#: bumped whenever the profile record shape changes incompatibly.
PROFILE_SCHEMA_VERSION = 1


@dataclass
class QueryProfile:
    """Everything measured about one query execution, in one record."""

    #: the query text (or plan description) this profile belongs to.
    query: str = ""
    #: correlation id of the request this profile measures ("" when the
    #: run was not traced — e.g. a bare ``explain_analyze`` call).
    trace_id: str = ""
    #: shape hash of the optimised plan this run executed
    #: (:func:`repro.core.plan.plan_fingerprint`; "" for hand-built
    #: operator trees) — lets the plan-regression sentinel attribute a
    #: profile's latency/q-errors to one specific plan choice.
    plan_hash: str = ""
    #: the operator stats tree, as :meth:`OperatorStats.to_dict` emits it.
    operators: dict = field(default_factory=dict)
    #: end-to-end wall seconds of the instrumented run.
    wall_seconds: float = 0.0
    #: rows in the final result.
    rows_out: int = 0
    #: worst per-operator cardinality q-error (None = no estimates).
    max_qerror: float | None = None
    #: sum of per-operator peak working-set bytes.
    peak_memory_bytes: int = 0
    #: finished spans (:meth:`Span.to_dict` records), root first.
    spans: list = field(default_factory=list)
    #: a :meth:`MetricsRegistry.snapshot` taken after the run.
    metrics: dict = field(default_factory=dict)
    #: the optimiser's search-trace stamp for this query — ``{"path",
    #: "summary"}`` as :meth:`SearchTrace.finish` returns it; empty when
    #: the optimisation ran untraced (or the plan came from the cache).
    search: dict = field(default_factory=dict)
    #: record shape version (see :data:`PROFILE_SCHEMA_VERSION`).
    schema_version: int = PROFILE_SCHEMA_VERSION

    # -- construction -------------------------------------------------------

    @classmethod
    def from_analyzed(
        cls,
        analyzed: "AnalyzedPlan",
        query: str = "",
        spans: list | None = None,
        metrics: dict | None = None,
        trace_id: str = "",
        plan_hash: str = "",
    ) -> "QueryProfile":
        """Build a profile from an :func:`explain_analyze` result."""
        return cls(
            query=query or analyzed.root.description,
            trace_id=trace_id,
            plan_hash=plan_hash,
            operators=analyzed.root.to_dict(),
            wall_seconds=analyzed.wall_seconds,
            rows_out=analyzed.table.num_rows,
            max_qerror=analyzed.max_qerror,
            peak_memory_bytes=analyzed.peak_memory_bytes,
            spans=list(spans or []),
            metrics=dict(metrics or {}),
        )

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        """The profile as a JSON-friendly dict (``kind='profile'``)."""
        return {
            "kind": "profile",
            "schema_version": self.schema_version,
            "query": self.query,
            "trace_id": self.trace_id,
            "plan_hash": self.plan_hash,
            "wall_seconds": self.wall_seconds,
            "rows_out": self.rows_out,
            "max_qerror": self.max_qerror,
            "peak_memory_bytes": self.peak_memory_bytes,
            "operators": self.operators,
            "spans": self.spans,
            "metrics": self.metrics,
            "search": self.search,
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The profile as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, record: dict) -> "QueryProfile":
        """Rebuild a profile from :meth:`to_dict` output.

        :raises ObservabilityError: on a schema-version mismatch.
        """
        version = record.get("schema_version")
        if version != PROFILE_SCHEMA_VERSION:
            raise ObservabilityError(
                f"profile schema version {version!r} is not supported "
                f"(this build reads version {PROFILE_SCHEMA_VERSION})"
            )
        return cls(
            query=record.get("query", ""),
            trace_id=record.get("trace_id", "") or "",
            plan_hash=record.get("plan_hash", "") or "",
            operators=record.get("operators", {}) or {},
            wall_seconds=float(record.get("wall_seconds", 0.0)),
            rows_out=int(record.get("rows_out", 0)),
            max_qerror=record.get("max_qerror"),
            peak_memory_bytes=int(record.get("peak_memory_bytes", 0)),
            spans=list(record.get("spans", []) or []),
            metrics=dict(record.get("metrics", {}) or {}),
            search=dict(record.get("search", {}) or {}),
            schema_version=version,
        )

    # -- rendering ----------------------------------------------------------

    def _operator_rows(self) -> list[dict]:
        """The operator tree flattened pre-order, with a ``depth`` key."""
        rows: list[dict] = []

        def visit(node: dict, depth: int) -> None:
            rows.append({**node, "depth": depth})
            for child in node.get("children", []) or []:
                visit(child, depth + 1)

        if self.operators:
            visit(self.operators, 0)
        return rows

    def render(self) -> str:
        """The profile as indented terminal text (``querylog show``)."""
        lines = [f"profile: {self.query}"]
        for row in self._operator_rows():
            line = (
                f"{'  ' * (row['depth'] + 1)}{row.get('description', '?')}  "
                f"[rows={row.get('rows_out', 0):,} "
                f"self={row.get('self_seconds', 0.0) * 1e3:.3f}ms "
                f"peak {format_bytes(row.get('peak_memory_bytes', 0))}]"
            )
            if row.get("estimated_rows") is not None:
                qerror = row.get("qerror")
                line += (
                    f"  [est {row['estimated_rows']:,.0f} · "
                    f"q={qerror:.2f}]" if qerror is not None else ""
                )
            lines.append(line)
        lines.append(
            f"wall {self.wall_seconds * 1e3:.3f}ms · "
            f"{self.rows_out:,} row(s) · "
            f"peak memory {format_bytes(self.peak_memory_bytes)}"
            + (
                f" · worst q-error {self.max_qerror:.2f}"
                if self.max_qerror is not None
                else ""
            )
        )
        if self.spans:
            lines.append(f"{len(self.spans)} span(s) recorded")
        summary = self.search.get("summary") if self.search else None
        if summary:
            line = (
                f"search: {summary.get('generated', 0)} candidates, "
                f"{summary.get('dominated', 0)} dominated, "
                f"{summary.get('displaced', 0)} displaced, "
                f"{summary.get('truncated', 0)} truncated"
            )
            if self.search.get("path"):
                line += f" (trace: {self.search['path']})"
            lines.append(line)
        return "\n".join(lines)

    def to_folded_stacks(self) -> str:
        """Spans as folded stacks (``a;b;c <self-µs>``), one per line.

        Feed the output to any flamegraph renderer (``flamegraph.pl``,
        speedscope's "folded" importer, inferno). The operator tree is
        folded too — self time per plan node — nested under the longest
        root span when spans exist, at the top level otherwise, so every
        profile becomes a flamegraph that shows where execution went.
        """
        weights: dict[str, int] = {}

        def fold_operators(prefix: tuple[str, ...]) -> int:
            """Fold the operator tree under ``prefix``; returns µs added."""
            total = 0
            stack = list(prefix)

            def visit(node: dict) -> None:
                nonlocal total
                stack.append(str(node.get("name", "?")))
                key = ";".join(stack)
                self_us = max(
                    1, round(float(node.get("self_seconds", 0.0)) * 1e6)
                )
                weights[key] = weights.get(key, 0) + self_us
                total += self_us
                for child in node.get("children", []) or []:
                    visit(child)
                stack.pop()

            if self.operators:
                visit(self.operators)
            return total

        if self.spans:
            by_id = {s.get("span_id"): s for s in self.spans}
            child_seconds: dict[object, float] = {}
            for span in self.spans:
                parent = span.get("parent_id")
                if parent in by_id:
                    child_seconds[parent] = child_seconds.get(
                        parent, 0.0
                    ) + float(span.get("duration_s") or 0.0)
            for span in self.spans:
                path = [str(span.get("name", "?"))]
                cursor = span
                hops = 0
                while (
                    cursor.get("parent_id") in by_id
                    and hops < len(self.spans)
                ):
                    cursor = by_id[cursor["parent_id"]]
                    path.append(str(cursor.get("name", "?")))
                    hops += 1
                path.reverse()
                self_seconds = float(
                    span.get("duration_s") or 0.0
                ) - child_seconds.get(span.get("span_id"), 0.0)
                key = ";".join(path)
                weights[key] = weights.get(key, 0) + max(
                    1, round(self_seconds * 1e6)
                )
            roots = [
                s for s in self.spans if s.get("parent_id") not in by_id
            ]
            if roots and self.operators:
                anchor = max(
                    roots, key=lambda s: float(s.get("duration_s") or 0.0)
                )
                anchor_key = str(anchor.get("name", "?"))
                spent = fold_operators((anchor_key,))
                weights[anchor_key] = max(
                    1, weights.get(anchor_key, 1) - spent
                )
        else:
            fold_operators(())
        return "\n".join(f"{key} {count}" for key, count in weights.items())

    def to_html(self) -> str:
        """A self-contained single-file HTML report (no external assets)."""
        rows_html = []
        for row in self._operator_rows():
            qerror = row.get("qerror")
            rows_html.append(
                "<tr>"
                f"<td style='padding-left:{row['depth'] * 18 + 4}px'>"
                f"{_html.escape(str(row.get('description', '?')))}</td>"
                f"<td class='num'>{row.get('rows_out', 0):,}</td>"
                f"<td class='num'>{row.get('self_seconds', 0.0) * 1e3:.3f}ms</td>"
                f"<td class='num'>{row.get('cumulative_seconds', 0.0) * 1e3:.3f}ms</td>"
                f"<td class='num'>{_html.escape(format_bytes(row.get('peak_memory_bytes', 0)))}</td>"
                f"<td class='num'>{'' if qerror is None else f'{qerror:.2f}'}</td>"
                "</tr>"
            )

        timeline_html = []
        if self.spans:
            starts = [float(s.get("start_s", 0.0)) for s in self.spans]
            origin = min(starts)
            total = max(
                1e-9,
                max(
                    float(s.get("start_s", 0.0))
                    + float(s.get("duration_s") or 0.0)
                    for s in self.spans
                )
                - origin,
            )
            depth_of: dict[object, int] = {}
            for span in self.spans:
                parent = span.get("parent_id")
                depth_of[span.get("span_id")] = (
                    depth_of.get(parent, -1) + 1
                    if parent in depth_of
                    else 0
                )
            for span in self.spans:
                left = (float(span.get("start_s", 0.0)) - origin) / total
                width = float(span.get("duration_s") or 0.0) / total
                depth = depth_of.get(span.get("span_id"), 0)
                label = (
                    f"{span.get('name', '?')} "
                    f"({float(span.get('duration_s') or 0.0) * 1e3:.3f}ms)"
                )
                timeline_html.append(
                    "<div class='span' style='"
                    f"left:{left * 100:.3f}%;"
                    f"width:{max(width * 100, 0.4):.3f}%;"
                    f"top:{depth * 22}px' "
                    f"title='{_html.escape(label)}'>"
                    f"{_html.escape(str(span.get('name', '?')))}</div>"
                )
            timeline_height = (max(depth_of.values(), default=0) + 1) * 22
        else:
            timeline_height = 0

        metrics_html = []
        for name in sorted(self.metrics):
            value = self.metrics[name]
            if isinstance(value, dict):
                rendered = (
                    f"count={value.get('count', 0)} "
                    f"sum={value.get('sum', 0.0):.6g} "
                    f"p50={value.get('p50', 0.0):.6g} "
                    f"p99={value.get('p99', 0.0):.6g}"
                )
            else:
                rendered = f"{value}"
            metrics_html.append(
                f"<tr><td>{_html.escape(name)}</td>"
                f"<td class='num'>{_html.escape(rendered)}</td></tr>"
            )

        summary = (
            f"wall {self.wall_seconds * 1e3:.3f}ms · "
            f"{self.rows_out:,} row(s) · "
            f"peak memory {format_bytes(self.peak_memory_bytes)}"
        )
        if self.max_qerror is not None:
            summary += f" · worst q-error {self.max_qerror:.2f}"
        # '</' must not appear inside the inline <script> payload.
        embedded_json = self.to_json().replace("</", "<\\/")

        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>query profile: {_html.escape(self.query)}</title>
<style>
body {{ font-family: -apple-system, 'Segoe UI', sans-serif; margin: 24px;
       color: #1b1b1b; }}
h1 {{ font-size: 18px; }} h2 {{ font-size: 14px; margin-top: 28px; }}
code {{ background: #f4f4f4; padding: 1px 4px; }}
table {{ border-collapse: collapse; font-size: 13px; }}
th, td {{ border: 1px solid #ddd; padding: 4px 8px; text-align: left; }}
th {{ background: #f0f0f0; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
.timeline {{ position: relative; height: {timeline_height}px;
             background: #fafafa; border: 1px solid #ddd; }}
.span {{ position: absolute; height: 20px; overflow: hidden;
         background: #7aa7d6; border: 1px solid #4a77a6; color: #fff;
         font-size: 11px; line-height: 20px; padding: 0 3px;
         white-space: nowrap; box-sizing: border-box; }}
.summary {{ color: #444; }}
</style>
</head>
<body>
<h1>query profile</h1>
<p><code>{_html.escape(self.query)}</code></p>
<p class="summary">{_html.escape(summary)}</p>
<h2>span timeline</h2>
{"<div class='timeline'>" + "".join(timeline_html) + "</div>" if timeline_html else "<p>(no spans recorded)</p>"}
<h2>operators</h2>
<table>
<tr><th>operator</th><th>rows out</th><th>self</th><th>cumulative</th>
<th>peak memory</th><th>q-error</th></tr>
{"".join(rows_html)}
</table>
<h2>metrics</h2>
{"<table><tr><th>metric</th><th>value</th></tr>" + "".join(metrics_html) + "</table>" if metrics_html else "<p>(no metrics captured)</p>"}
<script type="application/json" id="profile-json">
{embedded_json}
</script>
</body>
</html>
"""


def capture_profile(
    root: "PhysicalOperator",
    query: str = "",
    feedback: "FeedbackStore | None" = None,
) -> QueryProfile:
    """Run ``root`` under full observability and return its profile.

    A fresh metrics registry and tracer are installed for the duration
    (via :func:`~repro.obs.runtime.capture_observability`), the plan is
    executed through :func:`~repro.engine.executor.explain_analyze`, and
    the resulting estimates, actuals, spans, memory peaks, and metrics
    are bundled into one :class:`QueryProfile`. The previous
    observability handles are restored on exit, so capturing a profile
    never perturbs ambient instrumentation.
    """
    from repro.engine.executor import explain_analyze
    from repro.obs.runtime import capture_observability

    with capture_observability() as (metrics, tracer):
        with tracer.span("profile.capture", root=root.name):
            analyzed = explain_analyze(root, feedback=feedback)
        spans = tracer.to_dicts()
        snapshot = metrics.snapshot()
    return QueryProfile.from_analyzed(
        analyzed, query=query, spans=spans, metrics=snapshot
    )
