"""The decision-trace recorder: a journal of the optimiser's search.

The DP search (:mod:`repro.core.optimizer.dp`) makes thousands of micro
decisions per query — candidates generated, kept on a Pareto frontier,
dominated by a stronger entry, displaced by a later one, truncated by
the greedy baseline. A :class:`SearchTrace` journals every one of those
frontier events, per DP class (scan, join subset, group-by, finalists),
so the search itself becomes observable:

* ``EXPLAIN WHY`` (:mod:`repro.obs.search.explain`) reads the journal to
  name each runner-up's cause of death;
* :func:`replay` reconstructs the frontiers from the journal alone and
  cross-checks them against the optimiser's verdict;
* exported JSON traces are the per-decision substrate a learned plan
  chooser trains on (ROADMAP item 2).

Design constraints mirror the rest of :mod:`repro.obs`:

* **opt-in and zero-cost when absent** — the optimiser holds a single
  ``trace`` reference that is ``None`` by default; every hook is one
  ``is not None`` check. Install a process-wide trace with
  :func:`set_search_trace` or scope one with :func:`trace_search`.
* **bounded memory** — events ring-buffer per DP class
  (``capacity_per_class``); overflow increments a per-class ``dropped``
  counter instead of growing without bound, and the class table itself
  is capped.
* **schema-versioned JSON** — :meth:`SearchTrace.to_dict` /
  :meth:`SearchTrace.save` round-trip through
  :meth:`SearchTrace.from_dict` / :func:`load_trace`, guarded by
  :data:`TRACE_SCHEMA_VERSION`.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import Counter, deque
from contextlib import contextmanager
from operator import itemgetter
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObservabilityError

#: schema version stamped into (and required of) exported traces.
TRACE_SCHEMA_VERSION = 1

#: event kinds a journal may contain, in lifecycle order.
EVENT_KINDS = (
    "generated",
    "kept",
    "dominated",
    "displaced",
    "truncated",
    "finalist",
    "oracle",
)

#: default ring-buffer capacity per DP class.
DEFAULT_CAPACITY = 512

#: cap on distinct DP classes tracked (a 2^n join DP cannot blow up the
#: journal's class table); overflow events count as dropped here.
MAX_CLASSES = 4096

_OVERFLOW_CLASS = "__overflow__"

#: hot-path buffer length that triggers routing into the per-class
#: rings; bounds the unrouted-event memory between flushes.
_FLUSH_AT = 4096


@dataclass
class TraceEvent:
    """One frontier event of the search journal.

    ``entry_id`` identifies a candidate across its lifecycle (its
    ``generated`` event carries the payload; later fate events reference
    the id). ``other_id`` names the dominating/displacing entry for
    death events — "who killed it".
    """

    seq: int
    kind: str
    cls: str
    entry_id: int
    other_id: int | None = None
    cost: float = 0.0
    rows: float = 0.0
    #: one-line plan description (root operator of the candidate).
    plan: str = ""
    #: plan-shape hash — recorded for ``finalist`` events only (hashing
    #: every transient candidate is not worth the enabled-mode budget).
    fingerprint: str = ""
    #: property-vector rendering of the candidate's output stream.
    properties: str = ""
    #: compacted physiological recipe (granule choices), when deep.
    granules: str = ""
    #: per-candidate cost attribution (local vs input cost, algorithm,
    #: estimated groups) — see :meth:`SearchTrace._payload`.
    breakdown: dict = field(default_factory=dict)
    #: finalist rank (0 = the chosen plan); None elsewhere.
    rank: int | None = None
    #: deferred payload source — ``(plan node, properties)`` for
    #: candidates that outlive the search, or a compact epitaph dict
    #: (op / algorithm / costs) for ones killed on arrival, whose plan
    #: graphs the journal deliberately does not keep alive. The
    #: human-readable fields above are formatted lazily at *read* time
    #: (:meth:`materialise`), never in the optimiser's hot loop.
    source: tuple | dict | None = field(default=None, repr=False, compare=False)

    def materialise(self) -> None:
        """Format the deferred description fields from the recorded plan
        node or epitaph (idempotent; a no-op for events recorded without
        either)."""
        if self.source is None:
            return
        if isinstance(self.source, dict):
            info, self.source = self.source, None
            algorithm = info["algorithm"]
            local_cost = float(info["local_cost"])
            self.breakdown = {
                "op": info["op"],
                "local_cost": local_cost,
                "input_cost": float(info["cost"]) - local_cost,
            }
            label = info["op"]
            if algorithm is not None:
                self.breakdown["algorithm"] = algorithm.name
                label = f"{label}[{algorithm.name}]"
            self.plan = f"{label} cost={float(info['cost']):.6g}"
            return
        node, properties = self.source
        self.source = None
        breakdown: dict = {
            "op": node.op,
            "local_cost": float(node.local_cost),
            "input_cost": float(node.cost - node.local_cost),
        }
        algorithm = node.join_algorithm or node.grouping_algorithm
        if algorithm is not None:
            breakdown["algorithm"] = algorithm.name
        if node.op in ("join", "group_by"):
            breakdown["estimated_groups"] = float(node.estimated_groups)
            breakdown["parallel"] = bool(node.parallel)
        self.breakdown = breakdown
        self.plan = node.describe()
        self.properties = properties.describe()
        if node.recipe is not None:
            self.granules = " ".join(node.recipe.explain().split())[:160]

    def to_dict(self) -> dict:
        """JSON-friendly rendering (stable keys, Nones elided)."""
        self.materialise()
        payload: dict = {
            "seq": self.seq,
            "kind": self.kind,
            "cls": self.cls,
            "entry_id": self.entry_id,
        }
        if self.other_id is not None:
            payload["other_id"] = self.other_id
        if self.kind in ("generated", "finalist", "oracle"):
            payload["cost"] = self.cost
            payload["rows"] = self.rows
            payload["plan"] = self.plan
            payload["properties"] = self.properties
            if self.granules:
                payload["granules"] = self.granules
            if self.breakdown:
                payload["breakdown"] = self.breakdown
        if self.fingerprint:
            payload["fingerprint"] = self.fingerprint
        if self.rank is not None:
            payload["rank"] = self.rank
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seq=int(raw.get("seq", 0)),
            kind=str(raw.get("kind", "")),
            cls=str(raw.get("cls", "")),
            entry_id=int(raw.get("entry_id", -1)),
            other_id=raw.get("other_id"),
            cost=float(raw.get("cost", 0.0)),
            rows=float(raw.get("rows", 0.0)),
            plan=str(raw.get("plan", "")),
            fingerprint=str(raw.get("fingerprint", "")),
            properties=str(raw.get("properties", "")),
            granules=str(raw.get("granules", "")),
            breakdown=dict(raw.get("breakdown", {}) or {}),
            rank=raw.get("rank"),
        )


class SearchTrace:
    """An opt-in journal of one optimisation's frontier events.

    One trace records one :meth:`begin` → :meth:`finish` search; a
    subsequent ``begin`` resets it. All methods are thread-safe (the
    trace handle is process-wide), but one trace records one search at
    a time — concurrent optimisations should each get their own.
    """

    def __init__(
        self,
        capacity_per_class: int = DEFAULT_CAPACITY,
        save_dir: str | Path | None = None,
    ) -> None:
        #: master switch: a disabled trace is never picked up by the
        #: optimiser (checked once per optimise call, not per event).
        self.enabled = True
        self._capacity = max(int(capacity_per_class), 8)
        self._save_dir = Path(save_dir) if save_dir is not None else None
        self._lock = threading.Lock()
        self._traces_recorded = 0
        self._reset("")

    # -- lifecycle -----------------------------------------------------------

    def _reset(self, spec_fingerprint: str) -> None:
        self._spec_fingerprint = spec_fingerprint
        self._meta: dict = {}
        self._classes: dict[str, deque] = {}
        self._dropped: dict[str, int] = {}
        self._counts: dict[str, int] = {}
        self._ids: dict[int, int] = {}
        #: unrouted hot-path records; flushed into the rings at
        #: ``_FLUSH_AT`` and before every read. ``itertools.count`` and
        #: ``list.append`` are atomic under the GIL, so the hot path
        #: never takes the lock.
        self._pending: list = []
        self._id_counter = itertools.count(0)
        self._seq_counter = itertools.count(1)
        self._finished = False
        self._chosen_fingerprint = ""
        self._chosen_cost = 0.0
        self._path: Path | None = None

    def begin(self, spec_fingerprint: str, **meta) -> None:
        """Start journalling a fresh search (drops any previous one)."""
        with self._lock:
            self._reset(spec_fingerprint)
            self._meta = dict(meta)

    def finish(
        self, chosen_fingerprint: str, cost: float, stats: dict | None = None
    ) -> dict:
        """Seal the journal; returns the stamp attached to query-log
        rows and profiles: ``{"path": ..., "summary": {...}}`` (path is
        None unless the trace was constructed with ``save_dir``)."""
        with self._lock:
            self._finished = True
            self._chosen_fingerprint = chosen_fingerprint
            self._chosen_cost = float(cost)
            if stats:
                self._meta["search_stats"] = dict(stats)
            self._traces_recorded += 1
            sequence = self._traces_recorded
            if self._save_dir is None:
                # The stamp's summary is tallied straight off the pending
                # buffer (a C-speed Counter pass over the capture tuples)
                # so sealing a trace does not pay for routing inside the
                # optimise call; the rings materialise lazily when the
                # first reader flushes.
                counts = dict(self._counts)
                tally = Counter(map(itemgetter(0), self._pending))
                for kind, seen in tally.items():
                    if kind.startswith("dead_"):
                        # A collapsed generated+death pair counts twice.
                        counts["generated"] = (
                            counts.get("generated", 0) + seen
                        )
                        kind = kind[5:]
                    counts[kind] = counts.get(kind, 0) + seen
                classes = set(self._classes)
                classes.update(map(itemgetter(1), self._pending))
                summary = {
                    kind: counts.get(kind, 0) for kind in EVENT_KINDS
                }
                summary["events"] = sum(counts.values())
                summary["classes"] = min(len(classes), MAX_CLASSES)
                summary["dropped"] = sum(self._dropped.values())
                summary["chosen_fingerprint"] = chosen_fingerprint
                self._path = None
                return {"path": None, "summary": summary}
            self._flush()
        name = (
            f"search_trace_{(chosen_fingerprint or 'plan')[:12]}"
            f"_{sequence:04d}.json"
        )
        path = self._save_dir / name
        self.save(path)
        with self._lock:
            self._path = path
        return self.log_stamp()

    def log_stamp(self) -> dict:
        """The compact attachment for query-log rows / profiles."""
        return {
            "path": str(self._path) if self._path is not None else None,
            "summary": self.summary(),
        }

    # -- event ingestion (called from the optimiser's hot loop) --------------
    #
    # The hot path appends *capture tuples* — ``(kind, cls, entry, ...)``
    # — onto ``_pending`` without taking the lock: ``list.append`` is
    # atomic under the GIL and a small tuple costs a fraction of any
    # field extraction. Everything else is deferred: :meth:`_flush` (at
    # ``_FLUSH_AT``, and before every read) assigns seq/entry ids, reads
    # cost/rows off the captured references, and routes flat ``(seq,
    # kind, cls, entry_id, other_id, cost, rows, source, fingerprint,
    # rank)`` records into the bounded per-class rings; :meth:`_inflate`
    # builds the TraceEvent (and :meth:`TraceEvent.materialise` the
    # strings) at read time.
    #
    # Lifetimes matter as much as instruction counts here. Survivors'
    # entry references are safe to capture: the DP table keeps them
    # alive regardless, so the journal adds no lifetime. But a candidate
    # dominated (or greedy-truncated) on arrival would otherwise die by
    # refcount before the next GC pass — pinning those graphs in
    # ``_pending`` inflates the collector's net-allocation count and the
    # resulting generation scans dwarf the append cost itself. Since the
    # death follows its ``generated`` capture *adjacently* (the same
    # ``pareto_insert`` call), the death recorders collapse the pair in
    # place into one ``("dead", ...)`` record holding only scalars and
    # shared singletons (op string, algorithm enum member, costs) — a
    # compact epitaph — and drop the reference so the doomed graph dies
    # young exactly as in an untraced search. ``from_dict`` loads
    # TraceEvent objects straight into the rings, so readers accept both
    # forms.

    def _flush(self) -> None:
        """Assign ids/seqs and route pending records into the rings
        (call with the lock held)."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        classes = self._classes
        counts = self._counts
        dropped = self._dropped
        capacity = self._capacity
        ids = self._ids
        seq_counter = self._seq_counter
        id_counter = self._id_counter

        def route(cls: str, kind: str, routed) -> None:
            ring = classes.get(cls)
            if ring is None:
                if len(classes) >= MAX_CLASSES:
                    dropped[_OVERFLOW_CLASS] = (
                        dropped.get(_OVERFLOW_CLASS, 0) + 1
                    )
                    return
                ring = deque(maxlen=capacity)
                classes[cls] = ring
            if len(ring) == capacity:
                dropped[cls] = dropped.get(cls, 0) + 1
            ring.append(routed)
            counts[kind] = counts.get(kind, 0) + 1

        for record in pending:
            kind = record[0]
            cls = record[1]
            if kind == "generated":
                entry = record[2]
                entry_id = next(id_counter)
                ids[id(entry)] = entry_id
                route(cls, kind, (
                    next(seq_counter), kind, cls, entry_id, None,
                    float(entry.cost), float(entry.estimate.rows),
                    (entry.plan, entry.properties), "", None,
                ))
            elif kind == "kept":
                entry = record[2]
                route(cls, kind, (
                    next(seq_counter), kind, cls, ids.get(id(entry), -1),
                    None, float(entry.cost), 0.0, None, "", None,
                ))
            elif kind in ("dead_dominated", "dead_truncated"):
                # A collapsed generated+death pair: expand it back into
                # the two journal events it stands for, payload rebuilt
                # from the captured epitaph scalars.
                fate = kind[5:]
                entry_id = next(id_counter)
                cost = float(record[3])
                route(cls, "generated", (
                    next(seq_counter), "generated", cls, entry_id, None,
                    cost, float(record[4]),
                    {
                        "op": record[5],
                        "algorithm": record[6],
                        "local_cost": record[7],
                        "cost": cost,
                    },
                    "", None,
                ))
                route(cls, fate, (
                    next(seq_counter), fate, cls, entry_id,
                    ids.get(id(record[2]), -1), cost, 0.0, None, "", None,
                ))
            elif kind == "finalist":
                entry = record[2]
                route(cls, kind, (
                    next(seq_counter), kind, cls, next(id_counter), None,
                    float(entry.cost), float(entry.estimate.rows),
                    (entry.plan, entry.properties), record[3], record[4],
                ))
            elif kind == "oracle":
                route(cls, kind, TraceEvent(
                    seq=next(seq_counter), kind=kind, cls=cls,
                    entry_id=next(id_counter), cost=float(record[2]),
                    rows=float(record[3]), plan=record[4],
                ))
            else:  # dominated / displaced / truncated
                entry = record[2]
                route(cls, kind, (
                    next(seq_counter), kind, cls, ids.pop(id(entry), -1),
                    ids.get(id(record[3]), -1), float(entry.cost), 0.0,
                    None, "", None,
                ))

    @staticmethod
    def _inflate(record) -> TraceEvent:
        if isinstance(record, TraceEvent):
            return record
        (seq, kind, cls, entry_id, other_id, cost, rows, source,
         fingerprint, rank) = record
        return TraceEvent(
            seq=seq, kind=kind, cls=cls, entry_id=entry_id,
            other_id=other_id, cost=float(cost), rows=float(rows),
            source=source, fingerprint=fingerprint, rank=rank,
        )

    def generated(self, cls: str, entry) -> None:
        """A candidate was emitted into a frontier.

        Only the entry *reference* is captured now; id assignment,
        field reads, and the descriptive strings all happen at flush or
        read time — the hot loop pays one tuple and one append."""
        pending = self._pending
        pending.append(("generated", cls, entry))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    def kept(self, cls: str, entry) -> None:
        """The candidate entered the frontier."""
        pending = self._pending
        pending.append(("kept", cls, entry))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    def dominated(self, cls: str, entry, by) -> None:
        """The candidate was rejected: ``by`` dominates it."""
        pending = self._pending
        if pending:
            last = pending[-1]
            if last[0] == "generated" and last[2] is entry:
                node = entry.plan
                pending[-1] = (
                    "dead_dominated", cls, by, entry.cost,
                    entry.estimate.rows, node.op,
                    node.join_algorithm or node.grouping_algorithm,
                    node.local_cost,
                )
                return
        pending.append(("dominated", cls, entry, by))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    def displaced(self, cls: str, entry, by) -> None:
        """A retained entry was evicted: ``by`` dominates it."""
        pending = self._pending
        pending.append(("displaced", cls, entry, by))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    def truncated(self, cls: str, entry, by) -> None:
        """The candidate lost a cheapest-only truncation to ``by``
        (the greedy baseline's frontier policy)."""
        pending = self._pending
        if pending:
            last = pending[-1]
            if last[0] == "generated" and last[2] is entry:
                node = entry.plan
                pending[-1] = (
                    "dead_truncated", cls, by, entry.cost,
                    entry.estimate.rows, node.op,
                    node.join_algorithm or node.grouping_algorithm,
                    node.local_cost,
                )
                return
        pending.append(("truncated", cls, entry, by))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    def finalist(self, rank: int, entry, fingerprint: str) -> None:
        """One complete decorated plan, best-first (rank 0 = chosen)."""
        pending = self._pending
        pending.append(("finalist", "final", entry, fingerprint, rank))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    def oracle(self, description: str, cost: float, rows: float) -> None:
        """One plan of the exhaustive oracle's space (it never prunes,
        so every plan is a single ``oracle`` event)."""
        pending = self._pending
        pending.append(("oracle", "exhaustive", cost, rows, description))
        if len(pending) >= _FLUSH_AT:
            with self._lock:
                self._flush()

    # -- accessors -----------------------------------------------------------

    @property
    def spec_fingerprint(self) -> str:
        """The traced query's normalised fingerprint."""
        return self._spec_fingerprint

    @property
    def chosen_fingerprint(self) -> str:
        """Plan-shape hash of the winner (set by :meth:`finish`)."""
        return self._chosen_fingerprint

    @property
    def path(self) -> Path | None:
        """Where the trace was auto-saved, if ``save_dir`` was given."""
        return self._path

    def classes(self) -> list[str]:
        """The DP classes journalled so far."""
        with self._lock:
            self._flush()
            return list(self._classes)

    def events(self, cls: str | None = None) -> list[TraceEvent]:
        """The journal (one class, or all classes in seq order)."""
        with self._lock:
            self._flush()
            if cls is not None:
                merged = [
                    self._inflate(record)
                    for record in self._classes.get(cls, ())
                ]
            else:
                merged = [
                    self._inflate(record)
                    for ring in self._classes.values()
                    for record in ring
                ]
                merged.sort(key=lambda event: event.seq)
        for event in merged:
            event.materialise()
        return merged

    def summary(self) -> dict:
        """Counts per event kind, class count, and drops — the compact
        form stamped into query-log rows."""
        with self._lock:
            self._flush()
            payload = {kind: self._counts.get(kind, 0) for kind in EVENT_KINDS}
            payload["events"] = sum(self._counts.values())
            payload["classes"] = len(self._classes)
            payload["dropped"] = sum(self._dropped.values())
            payload["chosen_fingerprint"] = self._chosen_fingerprint
        return payload

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """The full schema-versioned journal."""
        with self._lock:
            self._flush()
            return {
                "schema_version": TRACE_SCHEMA_VERSION,
                "spec_fingerprint": self._spec_fingerprint,
                "meta": dict(self._meta),
                "chosen": {
                    "fingerprint": self._chosen_fingerprint,
                    "cost": self._chosen_cost,
                },
                "finished": self._finished,
                "classes": {
                    cls: {
                        "dropped": self._dropped.get(cls, 0),
                        "events": [
                            self._inflate(record).to_dict() for record in ring
                        ],
                    }
                    for cls, ring in self._classes.items()
                },
            }

    def to_json(self, indent: int | None = None) -> str:
        """The journal as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the journal to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=2), encoding="utf-8")
        return path

    @classmethod
    def from_dict(cls, raw: dict) -> "SearchTrace":
        """Rehydrate a journal exported by :meth:`to_dict`.

        :raises ObservabilityError: on a schema-version mismatch.
        """
        if not isinstance(raw, dict) or raw.get(
            "schema_version"
        ) != TRACE_SCHEMA_VERSION:
            raise ObservabilityError(
                "search trace schema mismatch: expected version "
                f"{TRACE_SCHEMA_VERSION}, got "
                f"{raw.get('schema_version') if isinstance(raw, dict) else raw!r}"
            )
        trace = cls()
        trace._spec_fingerprint = str(raw.get("spec_fingerprint", ""))
        trace._meta = dict(raw.get("meta", {}) or {})
        chosen = raw.get("chosen", {}) or {}
        trace._chosen_fingerprint = str(chosen.get("fingerprint", ""))
        trace._chosen_cost = float(chosen.get("cost", 0.0))
        trace._finished = bool(raw.get("finished", False))
        max_seq = 0
        max_id = 0
        for name, record in (raw.get("classes", {}) or {}).items():
            ring: deque[TraceEvent] = deque(maxlen=trace._capacity)
            for event_raw in record.get("events", []):
                event = TraceEvent.from_dict(event_raw)
                ring.append(event)
                trace._counts[event.kind] = (
                    trace._counts.get(event.kind, 0) + 1
                )
                max_seq = max(max_seq, event.seq)
                max_id = max(max_id, event.entry_id + 1)
            trace._classes[name] = ring
            dropped = int(record.get("dropped", 0))
            if dropped:
                trace._dropped[name] = dropped
        trace._seq_counter = itertools.count(max_seq + 1)
        trace._id_counter = itertools.count(max_id)
        return trace


def load_trace(path: str | Path) -> SearchTrace:
    """Load a saved trace JSON.

    :raises ObservabilityError: on unreadable or schema-mismatched files.
    """
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ObservabilityError(f"cannot load search trace {path}: {error}")
    return SearchTrace.from_dict(raw)


# -- journal replay ----------------------------------------------------------


def replay(trace: SearchTrace | dict) -> dict:
    """Reconstruct the search's outcome from the journal alone.

    Returns::

        {
          "chosen": finalist-rank-0 event dict (or None),
          "finalists": [finalist event dicts, rank order],
          "frontiers": {cls: [entry ids alive at the end]},
          "candidates": {entry_id: generated event dict},
          "deaths": {entry_id: {"cause": kind, "by": other_id}},
          "complete": bool  # False when ring buffers dropped events
        }

    ``complete`` is the replay's own integrity verdict: with no drops,
    every generated candidate is either alive in some frontier or has
    exactly one recorded cause of death.
    """
    if isinstance(trace, dict):
        trace = SearchTrace.from_dict(trace)
    frontiers: dict[str, list[int]] = {}
    candidates: dict[int, dict] = {}
    deaths: dict[int, dict] = {}
    finalists: list[dict] = []
    dropped = trace.summary()["dropped"]
    for event in trace.events():
        if event.kind == "generated":
            candidates[event.entry_id] = event.to_dict()
        elif event.kind == "kept":
            frontier = frontiers.setdefault(event.cls, [])
            if event.entry_id not in frontier:
                frontier.append(event.entry_id)
        elif event.kind in ("dominated", "displaced", "truncated"):
            deaths[event.entry_id] = {
                "cause": event.kind,
                "by": event.other_id,
            }
            frontier = frontiers.get(event.cls)
            if frontier and event.entry_id in frontier:
                frontier.remove(event.entry_id)
        elif event.kind == "finalist":
            finalists.append(event.to_dict())
    finalists.sort(key=lambda item: item.get("rank", 0))
    alive = {
        entry_id for frontier in frontiers.values() for entry_id in frontier
    }
    accounted = all(
        entry_id in alive or entry_id in deaths for entry_id in candidates
    )
    return {
        "chosen": finalists[0] if finalists else None,
        "finalists": finalists,
        "frontiers": frontiers,
        "candidates": candidates,
        "deaths": deaths,
        "complete": dropped == 0 and accounted,
    }


# -- process-wide handle (opt-in) --------------------------------------------

_global_trace: SearchTrace | None = None
_global_lock = threading.Lock()


def get_search_trace() -> SearchTrace | None:
    """The process-wide search trace, or None (the default: no
    journalling, zero cost)."""
    return _global_trace


def set_search_trace(trace: SearchTrace | None) -> None:
    """Install (or, with None, remove) the process-wide search trace."""
    global _global_trace
    with _global_lock:
        _global_trace = trace


@contextmanager
def trace_search(
    capacity_per_class: int = DEFAULT_CAPACITY,
    save_dir: str | Path | None = None,
):
    """Scope a fresh :class:`SearchTrace` as the process-wide handle::

        with trace_search() as trace:
            result = optimize_dqo(plan, catalog)
        journal = trace.to_dict()
    """
    trace = SearchTrace(capacity_per_class=capacity_per_class, save_dir=save_dir)
    previous = get_search_trace()
    set_search_trace(trace)
    try:
        yield trace
    finally:
        set_search_trace(previous)
