"""What-if re-optimisation and the statistics sensitivity frontier.

:func:`whatif` answers "what plan would the optimiser pick if the
statistics said X?": it applies a
:class:`~repro.storage.overlay.StatisticsOverlay` to the catalog
(hypothetically — nothing is mutated), re-optimises the same query, and
diffs the hypothetical plan against the real optimum.

:func:`sensitivity_frontier` inverts the question: *which* statistic is
the chosen plan actually sensitive to? It probes every property the
plan's decisions depend on (sortedness and density of each join/group
key) plus each table's cardinality (bisecting for the scale factor at
which the plan flips), and reports the flip set — the frontier of the
statistics space inside which the current plan stays optimal. A plan
whose frontier is tight (flips at a 1.2x cardinality error) deserves
suspicion; one that only flips at 100x is robust to estimation error.

Every probe is a full re-optimisation against a private plan cache, so
probes can neither pollute nor be polluted by process-wide state; the
overlay catalog's fresh identity token guarantees the same for any
shared cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from repro.core.cost.model import CostModel
from repro.core.cost.paper import PaperCostModel
from repro.core.optimizer.base import (
    OptimizationResult,
    OptimizerConfig,
    dqo_config,
)
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.core.optimizer.plancache import PlanCache
from repro.core.plan import plan_decisions, plan_diff, render_plan_diff
from repro.errors import StatisticsError
from repro.obs.search.explain import _as_spec
from repro.storage.catalog import Catalog
from repro.storage.overlay import StatisticsOverlay


def _optimize(spec, catalog, config, cost_model) -> OptimizationResult:
    optimizer = DynamicProgrammingOptimizer(
        catalog,
        cost_model,
        config,
        plan_cache=PlanCache(2),  # private: probes never share state
    )
    return optimizer.optimize_spec(spec)


def _hypothetical_config(
    config: OptimizerConfig, overlay: StatisticsOverlay, catalog: Catalog
) -> OptimizerConfig:
    """The config under the overlay's index patches: a cloned AV registry
    with the hypothetical views materialised (real artifacts over the
    real data — costing needs only their existence) or dropped."""
    index_patches = overlay.index_patches()
    if not index_patches:
        return config
    from repro.avs.registry import AVRegistry
    from repro.avs.view import ViewKind, materialize_view

    views = AVRegistry(list(config.views) if config.views is not None else [])
    for patch in index_patches:
        kind_name, present = patch.value
        try:
            kind = ViewKind(kind_name)
        except ValueError:
            names = sorted(k.value for k in ViewKind)
            raise StatisticsError(
                f"unknown view kind {kind_name!r}; expected one of {names}"
            ) from None
        if present and not views.has_view(kind, patch.table, patch.column):
            views.add(materialize_view(catalog, kind, patch.table, patch.column))
        elif not present and views.has_view(kind, patch.table, patch.column):
            views.remove(kind, patch.table, patch.column)
    return dc_replace(config, views=views)


def _plan_summary(result: OptimizationResult) -> dict:
    return {
        "cost": float(result.cost),
        "fingerprint": result.plan_fingerprint,
        "plan": result.plan.describe(),
        "decisions": plan_decisions(result.plan),
    }


@dataclass
class WhatIfReport:
    """One hypothetical against the real optimum."""

    spec_fingerprint: str
    overlay_text: str
    overlay: dict
    #: ``{"cost", "fingerprint", "plan", "decisions"}`` under real stats.
    baseline: dict
    #: the same, under the overlay.
    hypothetical: dict
    plan_changed: bool
    #: hypothetical cost / baseline cost. Costs under different
    #: statistics are estimates of different worlds — the ratio reports
    #: how much cheaper/dearer the optimiser *believes* the hypothetical
    #: world is, not a promised speedup.
    cost_ratio: float
    #: structured :func:`~repro.core.plan.plan_diff`.
    diff: dict
    #: full optimisation results, for callers that keep digging
    #: (not serialised).
    baseline_result: OptimizationResult | None = field(
        default=None, repr=False, compare=False
    )
    hypothetical_result: OptimizationResult | None = field(
        default=None, repr=False, compare=False
    )

    def diff_text(self) -> str:
        """One line, e.g. ``join[OJ](...) -> join[SPHJ](...)``."""
        return render_plan_diff(self.diff)

    def to_dict(self) -> dict:
        return {
            "spec_fingerprint": self.spec_fingerprint,
            "overlay_text": self.overlay_text,
            "overlay": self.overlay,
            "baseline": self.baseline,
            "hypothetical": self.hypothetical,
            "plan_changed": self.plan_changed,
            "cost_ratio": self.cost_ratio,
            "diff": self.diff,
        }

    def render(self) -> str:
        lines = [
            f"WHAT IF  {self.overlay_text}",
            f"  query           {self.spec_fingerprint}",
            f"  baseline        {self.baseline['plan']}",
            f"      cost        {self.baseline['cost']:,.0f}",
            f"  hypothetical    {self.hypothetical['plan']}",
            f"      cost        {self.hypothetical['cost']:,.0f}"
            f"  ({self.cost_ratio:.2f}x baseline)",
        ]
        if self.plan_changed:
            lines.append(f"  plan FLIPS: {self.diff_text()}")
        else:
            lines.append("  plan unchanged")
        return "\n".join(lines)


def whatif(
    query,
    catalog: Catalog,
    overlay: StatisticsOverlay,
    *,
    config: OptimizerConfig | None = None,
    cost_model: CostModel | None = None,
) -> WhatIfReport:
    """Re-optimise ``query`` under ``overlay`` and diff against the real
    optimum (see module docstring).

    :param query: SQL text, a LogicalPlan, or a QuerySpec.
    """
    spec = _as_spec(query, catalog)
    config = config or dqo_config()
    cost_model = cost_model or PaperCostModel()
    baseline = _optimize(spec, catalog, config, cost_model)
    hyp_catalog = overlay.apply(catalog)
    hyp_config = _hypothetical_config(config, overlay, hyp_catalog)
    hypothetical = _optimize(spec, hyp_catalog, hyp_config, cost_model)
    base_summary = _plan_summary(baseline)
    hyp_summary = _plan_summary(hypothetical)
    diff = plan_diff(base_summary["decisions"], hyp_summary["decisions"])
    return WhatIfReport(
        spec_fingerprint=baseline.spec_fingerprint,
        overlay_text=overlay.describe(),
        overlay=overlay.to_dict(),
        baseline=base_summary,
        hypothetical=hyp_summary,
        plan_changed=not diff["identical"],
        cost_ratio=(
            hyp_summary["cost"] / base_summary["cost"]
            if base_summary["cost"] > 0
            else 1.0
        ),
        diff=diff,
        baseline_result=baseline,
        hypothetical_result=hypothetical,
    )


@dataclass
class SensitivityProbe:
    """One probed statistic and whether the plan survives it."""

    #: "sortedness" | "density" | "cardinality".
    kind: str
    table: str
    #: None for cardinality probes.
    column: str | None
    #: e.g. ``R.ID.sorted: True -> False``.
    description: str
    #: the probe (or some scale inside the bound) flips the plan.
    flips: bool
    #: for cardinality probes: the smallest scale factor that flips the
    #: plan (bisected; > 1 growing, < 1 shrinking). None for boolean
    #: probes and for no-flip-within-bounds.
    threshold: float | None
    baseline_fingerprint: str
    #: fingerprint at the flip point (None when the plan never flips).
    flipped_fingerprint: str | None
    #: one-line plan diff at the flip point ("" when no flip).
    diff_text: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "table": self.table,
            "column": self.column,
            "description": self.description,
            "flips": self.flips,
            "threshold": self.threshold,
            "baseline_fingerprint": self.baseline_fingerprint,
            "flipped_fingerprint": self.flipped_fingerprint,
            "diff_text": self.diff_text,
        }

    def render(self) -> str:
        if not self.flips:
            return f"  robust   {self.description}"
        line = f"  FLIPS    {self.description}"
        if self.threshold is not None:
            line += f" (threshold {self.threshold:.3g}x)"
        return f"{line}: {self.diff_text}"


def _key_columns(decisions: list[dict]) -> list[tuple[str, str]]:
    """The (table, column) pairs the plan's decisions key on, via the
    scan decisions' alias -> table map."""
    alias_to_table = {
        decision["alias"]: decision["table"]
        for decision in decisions
        if decision.get("op") == "scan"
    }
    pairs: list[tuple[str, str]] = []
    for decision in decisions:
        if decision.get("op") not in ("join", "group_by", "sort"):
            continue
        for key in decision.get("keys", []):
            alias, _, column = key.partition(".")
            table = alias_to_table.get(alias, alias)
            pair = (table, column)
            if column and pair not in pairs:
                pairs.append(pair)
    return pairs


def sensitivity_frontier(
    query,
    catalog: Catalog,
    *,
    config: OptimizerConfig | None = None,
    cost_model: CostModel | None = None,
    max_scale: float = 1024.0,
    tolerance: float = 0.05,
) -> list[SensitivityProbe]:
    """Probe which statistics the chosen plan is sensitive to (see
    module docstring).

    Boolean probes (sortedness / density of every key column) toggle the
    stored value; cardinality probes bisect the scale factor — up to
    ``max_scale`` in each direction — for the smallest change that flips
    the plan, to a relative ``tolerance``.
    """
    spec = _as_spec(query, catalog)
    config = config or dqo_config()
    cost_model = cost_model or PaperCostModel()
    baseline = _optimize(spec, catalog, config, cost_model)
    base_fp = baseline.plan_fingerprint
    decisions = plan_decisions(baseline.plan)

    def probe_overlay(overlay: StatisticsOverlay) -> OptimizationResult:
        hyp = overlay.apply(catalog)
        return _optimize(spec, hyp, config, cost_model)

    def diff_against(result: OptimizationResult) -> str:
        return render_plan_diff(
            plan_diff(decisions, plan_decisions(result.plan))
        )

    probes: list[SensitivityProbe] = []

    # Boolean probes: toggle each key column's sortedness and density.
    for table, column in _key_columns(decisions):
        stats = catalog.table(table).column(column).statistics
        for kind, current, setter in (
            ("sortedness", stats.is_sorted, StatisticsOverlay.set_sorted),
            ("density", stats.is_dense, StatisticsOverlay.set_dense),
        ):
            flipped_value = not current
            overlay = setter(StatisticsOverlay(), table, column, flipped_value)
            result = probe_overlay(overlay)
            flips = result.plan_fingerprint != base_fp
            probes.append(
                SensitivityProbe(
                    kind=kind,
                    table=table,
                    column=column,
                    description=(
                        f"{table}.{column}.{kind}: "
                        f"{current} -> {flipped_value}"
                    ),
                    flips=flips,
                    threshold=None,
                    baseline_fingerprint=base_fp,
                    flipped_fingerprint=result.plan_fingerprint
                    if flips
                    else None,
                    diff_text=diff_against(result) if flips else "",
                )
            )

    # Cardinality probes: bisect the flip threshold in each direction.
    for table in sorted({t for t, _ in _key_columns(decisions)}):
        base_rows = catalog.cardinality(table)
        for direction, bound in (("grow", max_scale), ("shrink", 1.0 / max_scale)):
            scaled = max(1, round(base_rows * bound))
            at_bound = probe_overlay(
                StatisticsOverlay().set_cardinality(table, scaled)
            )
            if at_bound.plan_fingerprint == base_fp:
                probes.append(
                    SensitivityProbe(
                        kind="cardinality",
                        table=table,
                        column=None,
                        description=(
                            f"{table}.cardinality x{bound:g} "
                            f"({base_rows:,} -> {scaled:,})"
                        ),
                        flips=False,
                        threshold=None,
                        baseline_fingerprint=base_fp,
                        flipped_fingerprint=None,
                        diff_text="",
                    )
                )
                continue
            # Bisect in log-space between no-flip (scale 1) and the
            # flipping bound for the smallest flipping factor.
            low, high = 1.0, bound  # low never flips, high always does
            flip_result = at_bound
            while (
                max(high / low, low / high) > 1.0 + tolerance
            ):
                mid = (low * high) ** 0.5
                result = probe_overlay(
                    StatisticsOverlay().set_cardinality(
                        table, max(1, round(base_rows * mid))
                    )
                )
                if result.plan_fingerprint != base_fp:
                    high, flip_result = mid, result
                else:
                    low = mid
            probes.append(
                SensitivityProbe(
                    kind="cardinality",
                    table=table,
                    column=None,
                    description=(
                        f"{table}.cardinality x{high:.3g} "
                        f"({base_rows:,} -> "
                        f"{max(1, round(base_rows * high)):,}, {direction})"
                    ),
                    flips=True,
                    threshold=high,
                    baseline_fingerprint=base_fp,
                    flipped_fingerprint=flip_result.plan_fingerprint,
                    diff_text=diff_against(flip_result),
                )
            )
    return probes


def render_frontier(probes: list[SensitivityProbe]) -> str:
    """The frontier as a small report, flips first."""
    flips = [probe for probe in probes if probe.flips]
    robust = [probe for probe in probes if not probe.flips]
    lines = [
        f"STATISTICS SENSITIVITY  ({len(flips)} flip(s), "
        f"{len(robust)} robust)"
    ]
    lines += [probe.render() for probe in flips]
    lines += [probe.render() for probe in robust]
    return "\n".join(lines)
