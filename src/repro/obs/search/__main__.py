"""``python -m repro.obs.search`` — the observatory on the command line.

::

    # EXPLAIN WHY for the paper's §4.3 query over generated data
    python -m repro.obs.search why
    python -m repro.obs.search why --shallow --save-trace trace.json

    # what-if: re-optimise under hypothetical statistics
    python -m repro.obs.search whatif --set R.ID.sorted=false
    python -m repro.obs.search whatif --set S.cardinality=180000 --sweep

    # inspect / compare saved decision traces
    python -m repro.obs.search trace show trace.json
    python -m repro.obs.search trace diff before.json after.json

Every command accepts ``--sql`` to override the default query (the
paper's running example) and ``--scenario star`` for the 3-dimension
star schema; all queries run against freshly generated data, so the
module demos end-to-end without any setup.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError

#: the paper's §4.3 running query (over make_join_scenario data).
DEFAULT_SQL = (
    "SELECT R.A, COUNT(*) FROM R JOIN S ON R.ID = S.R_ID GROUP BY R.A"
)

_TRUE = {"true", "1", "yes", "on"}
_FALSE = {"false", "0", "no", "off"}


def _build_workload(args):
    """(catalog, sql) for the selected scenario."""
    if args.scenario == "star":
        from repro.datagen.star import make_star_scenario

        scenario = make_star_scenario()
        return scenario.build_catalog(), args.sql or scenario.join_query()
    from repro.datagen.join import make_join_scenario

    scenario = make_join_scenario()
    return scenario.build_catalog(), args.sql or DEFAULT_SQL


def _build_config(args):
    from repro.core.optimizer.base import dqo_config, sqo_config

    factory = sqo_config if getattr(args, "shallow", False) else dqo_config
    overrides = {}
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    return factory(**overrides)


def _parse_bool(raw: str, setting: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise SystemExit(f"--set {setting}: expected a boolean, got {raw!r}")


def parse_overlay(settings: list[str]):
    """``--set`` specs into a StatisticsOverlay.

    Grammar (one spec per ``--set``)::

        TABLE.cardinality=N          TABLE.shuffled=true
        TABLE.COLUMN.sorted=BOOL     TABLE.COLUMN.clustered=BOOL
        TABLE.COLUMN.dense=BOOL      TABLE.COLUMN.distinct=N
        TABLE.COLUMN.index=KIND      TABLE.COLUMN.index=-KIND  (drop)
    """
    from repro.storage.overlay import StatisticsOverlay

    overlay = StatisticsOverlay()
    for setting in settings:
        target, equals, raw = setting.partition("=")
        if not equals:
            raise SystemExit(f"--set {setting}: expected TARGET=VALUE")
        parts = target.split(".")
        if len(parts) == 2:
            table, fieldname = parts
            if fieldname == "cardinality":
                overlay.set_cardinality(table, int(raw))
            elif fieldname == "shuffled":
                if _parse_bool(raw, setting):
                    overlay.set_shuffled(table)
            else:
                raise SystemExit(
                    f"--set {setting}: table-level field must be "
                    "cardinality or shuffled"
                )
            continue
        if len(parts) != 3:
            raise SystemExit(
                f"--set {setting}: expected TABLE.FIELD=VALUE or "
                "TABLE.COLUMN.FIELD=VALUE"
            )
        table, column, fieldname = parts
        if fieldname == "sorted":
            overlay.set_sorted(table, column, _parse_bool(raw, setting))
        elif fieldname == "clustered":
            overlay.set_clustered(table, column, _parse_bool(raw, setting))
        elif fieldname == "dense":
            overlay.set_dense(table, column, _parse_bool(raw, setting))
        elif fieldname == "distinct":
            overlay.set_distinct(table, column, int(raw))
        elif fieldname == "index":
            kind = raw.strip()
            present = not kind.startswith("-")
            overlay.set_index(table, column, kind.lstrip("-"), present)
        else:
            raise SystemExit(
                f"--set {setting}: unknown field {fieldname!r} (expected "
                "sorted, clustered, dense, distinct, or index)"
            )
    return overlay


def _cmd_why(args) -> int:
    from repro.obs.search.explain import explain_why

    catalog, sql = _build_workload(args)
    report = explain_why(
        sql,
        catalog,
        config=_build_config(args),
        save_trace=args.save_trace,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
        if args.save_trace:
            print(f"\ntrace written to {args.save_trace}")
    return 0


def _cmd_whatif(args) -> int:
    from repro.obs.search.whatif import (
        render_frontier,
        sensitivity_frontier,
        whatif,
    )

    catalog, sql = _build_workload(args)
    config = _build_config(args)
    sections: list[str] = []
    payload: dict = {}
    if args.set:
        report = whatif(sql, catalog, parse_overlay(args.set), config=config)
        sections.append(report.render())
        payload["whatif"] = report.to_dict()
    if args.sweep or not args.set:
        probes = sensitivity_frontier(sql, catalog, config=config)
        sections.append(render_frontier(probes))
        payload["frontier"] = [probe.to_dict() for probe in probes]
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("\n\n".join(sections))
    return 0


def _render_trace(trace, limit: int) -> str:
    raw = trace.to_dict()
    summary = trace.summary()
    lines = [
        f"SEARCH TRACE  {raw['spec_fingerprint'] or '(unknown query)'}",
        f"  chosen     {raw['chosen']['fingerprint'] or '(unfinished)'}"
        f"  cost={raw['chosen']['cost']:,.0f}",
        "  events     "
        + "  ".join(
            f"{kind}={summary[kind]}"
            for kind in ("generated", "kept", "dominated", "displaced",
                         "truncated", "finalist", "oracle")
            if summary[kind]
        ),
        f"  classes    {summary['classes']}  dropped={summary['dropped']}",
    ]
    stats = raw["meta"].get("search_stats")
    if stats:
        lines.append(
            "  search     "
            + "  ".join(f"{key}={value}" for key, value in sorted(stats.items()))
        )
    events = trace.events()
    shown = events[-limit:] if limit else events
    if shown:
        lines.append(f"  last {len(shown)} event(s):")
    for event in shown:
        line = f"    #{event.seq:<5} {event.kind:<9} [{event.cls}]"
        if event.kind in ("generated", "finalist", "oracle"):
            line += f" cost={event.cost:,.0f} {event.plan}"
            if event.rank is not None:
                line += f"  rank={event.rank}"
        else:
            line += f" entry={event.entry_id}"
            if event.other_id is not None:
                line += f" by={event.other_id}"
        lines.append(line)
    return "\n".join(lines)


def _cmd_trace_show(args) -> int:
    from repro.obs.search.trace import load_trace, replay

    trace = load_trace(args.path)
    print(_render_trace(trace, args.events))
    replayed = replay(trace)
    verdict = "complete" if replayed["complete"] else "INCOMPLETE (drops)"
    print(
        f"  replay     {verdict}: {len(replayed['candidates'])} candidates, "
        f"{len(replayed['deaths'])} deaths, "
        f"{len(replayed['finalists'])} finalist(s)"
    )
    return 0


def _cmd_trace_diff(args) -> int:
    from repro.obs.search.trace import load_trace

    left = load_trace(args.left)
    right = load_trace(args.right)
    left_summary, right_summary = left.summary(), right.summary()
    left_chosen = left.chosen_fingerprint or "(unfinished)"
    right_chosen = right.chosen_fingerprint or "(unfinished)"
    print(f"TRACE DIFF  {args.left}  vs  {args.right}")
    if left.spec_fingerprint != right.spec_fingerprint:
        print(
            f"  query DIFFERS: {left.spec_fingerprint[:16]} vs "
            f"{right.spec_fingerprint[:16]}"
        )
    if left_chosen == right_chosen:
        print(f"  chosen plan identical: {left_chosen}")
    else:
        print(f"  chosen plan FLIPS: {left_chosen} -> {right_chosen}")
    for kind in ("generated", "kept", "dominated", "displaced", "truncated",
                 "finalist", "oracle", "events", "classes", "dropped"):
        a, b = left_summary[kind], right_summary[kind]
        if a != b:
            print(f"  {kind:<10} {a} -> {b}  ({b - a:+d})")
    left_classes = set(left.classes())
    right_classes = set(right.classes())
    for name in sorted(left_classes - right_classes):
        print(f"  class only in left:  {name}")
    for name in sorted(right_classes - left_classes):
        print(f"  class only in right: {name}")
    return 0


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sql", help=f"query to optimise (default: {DEFAULT_SQL!r})"
    )
    parser.add_argument(
        "--scenario",
        choices=("join", "star"),
        default="join",
        help="generated dataset: the §4.3 join scenario (default) or the "
        "3-dimension star schema",
    )
    parser.add_argument(
        "--shallow",
        action="store_true",
        help="use the SQO configuration instead of DQO",
    )
    parser.add_argument(
        "--workers", type=int, help="plan for this many morsel workers"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of a report"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.search",
        description="optimiser search observatory: EXPLAIN WHY, what-if "
        "statistics overlays, decision-trace inspection",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    why = commands.add_parser(
        "why", help="EXPLAIN WHY: the chosen plan vs the road not taken"
    )
    _add_workload_arguments(why)
    why.add_argument(
        "--save-trace", help="also write the decision-trace JSON here"
    )
    why.set_defaults(handler=_cmd_why)

    whatif = commands.add_parser(
        "whatif",
        help="re-optimise under hypothetical statistics "
        "(no --set: sensitivity sweep only)",
    )
    _add_workload_arguments(whatif)
    whatif.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="TABLE[.COLUMN].FIELD=VALUE",
        help="hypothetical statistic, repeatable (e.g. R.ID.sorted=false, "
        "S.cardinality=180000, R.shuffled=true, R.ID.index=btree)",
    )
    whatif.add_argument(
        "--sweep",
        action="store_true",
        help="also probe the statistics sensitivity frontier",
    )
    whatif.set_defaults(handler=_cmd_whatif)

    trace = commands.add_parser(
        "trace", help="inspect or compare saved decision traces"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    show = trace_commands.add_parser("show", help="summarise one trace JSON")
    show.add_argument("path")
    show.add_argument(
        "--events",
        type=int,
        default=12,
        help="trailing events to print (0: all)",
    )
    show.set_defaults(handler=_cmd_trace_show)
    diff = trace_commands.add_parser(
        "diff", help="compare two trace JSONs (plan flip, effort deltas)"
    )
    diff.add_argument("left")
    diff.add_argument("right")
    diff.set_defaults(handler=_cmd_trace_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
