"""``EXPLAIN WHY`` — the chosen plan against the road not taken.

``EXPLAIN`` shows *what* the optimiser chose; :func:`explain_why` shows
*why*: for every algorithm decision in the winning plan it recomputes
each rival implementation's cost on the same inputs (and, when a rival
was not even applicable, names the missing property — "probe input not
sorted on S.R_ID"), names the decisive Table-2 cost term via
:meth:`~repro.core.cost.model.CostModel.join_cost_terms`, and renders
the recorded runner-up plans plus — from the decision trace — each
killed candidate's cause of death and killer.

The report runs a *fresh* trace-enabled optimisation against a private
plan cache, so it never mutates process-wide state and always journals
a real search. Rival costs are recomputed without Algorithmic-View
build credits (the chosen decision's cost is the plan's own annotation,
credits included, so a credit-won choice shows up as a ratio > the raw
formula ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cost.model import CostModel
from repro.core.cost.paper import PaperCostModel
from repro.core.optimizer.base import (
    OptimizationResult,
    OptimizerConfig,
    PropertyScope,
    dqo_config,
)
from repro.core.optimizer.dp import DynamicProgrammingOptimizer
from repro.core.optimizer.plancache import PlanCache
from repro.core.optimizer.query import QuerySpec, extract_query
from repro.core.optimizer.rules import (
    GroupingOption,
    JoinOption,
    grouping_options,
    join_options,
)
from repro.core.plan import PhysicalNode, plan_fingerprint
from repro.core.properties import PropertyVector
from repro.engine.kernels.grouping import GroupingAlgorithm
from repro.engine.kernels.joins import JoinAlgorithm
from repro.engine.parallel import get_executor_config
from repro.logical.algebra import LogicalPlan
from repro.obs.search.trace import DEFAULT_CAPACITY, SearchTrace, replay
from repro.storage.catalog import Catalog


def _as_spec(query, catalog: Catalog) -> QuerySpec:
    """Accept SQL text, a LogicalPlan, or a pre-extracted QuerySpec."""
    if isinstance(query, QuerySpec):
        return query
    if isinstance(query, LogicalPlan):
        return extract_query(query)
    from repro.sql.planner import plan_query

    return extract_query(plan_query(str(query), catalog))


def _option_label(option) -> str:
    return option.algorithm.name + ("/parallel" if option.parallel else "")


def _props_facts(label: str, props: PropertyVector, key: str, rows: float) -> str:
    qualities = []
    qualities.append("sorted" if props.is_sorted_on(key) else "unsorted")
    if props.is_clustered_on(key) and not props.is_sorted_on(key):
        qualities.append("clustered")
    qualities.append("dense" if props.is_dense(key) else "sparse")
    return f"{label} {key}: {', '.join(qualities)}, est {rows:,.0f} rows"


def _join_reason(
    option: JoinOption,
    build_props: PropertyVector,
    probe_props: PropertyVector,
    build_key: str,
    probe_key: str,
    scope: PropertyScope,
) -> str:
    """Why a join implementation was not applicable (§2.1 preconditions)."""
    if option.algorithm is JoinAlgorithm.OJ:
        missing = []
        if not build_props.is_sorted_on(build_key):
            missing.append(f"build input not sorted on {build_key}")
        if not probe_props.is_sorted_on(probe_key):
            missing.append(f"probe input not sorted on {probe_key}")
        return "; ".join(missing) or "inapplicable"
    if option.algorithm is JoinAlgorithm.SPHJ:
        if scope is not PropertyScope.FULL:
            return "density invisible to a shallow (SQO) configuration"
        return f"build domain not dense on {build_key}"
    return "inapplicable"


def _grouping_reason(
    option: GroupingOption, props: PropertyVector, key: str, scope: PropertyScope
) -> str:
    if option.algorithm is GroupingAlgorithm.OG:
        return f"input not clustered on {key}"
    if option.algorithm is GroupingAlgorithm.SPHG:
        if scope is not PropertyScope.FULL:
            return "density invisible to a shallow (SQO) configuration"
        return f"input domain not dense on {key}"
    return "inapplicable"


@dataclass
class DecisionExplanation:
    """One algorithm choice of the chosen plan, fully attributed."""

    #: "join" or "group_by".
    op: str
    #: the node's one-line description.
    node: str
    #: chosen implementation label, e.g. "SPHJ" or "HG/parallel".
    algorithm: str
    #: the decision's local cost as annotated on the plan (AV credits
    #: included).
    cost: float
    #: estimated output rows of the node.
    rows: float
    #: the decisive (largest) term of the chosen formula and its value.
    decisive_term: str = ""
    decisive_value: float = 0.0
    #: the full named-term decomposition of the chosen cost.
    terms: list = field(default_factory=list)
    #: input property facts, e.g. "probe S.R_ID: unsorted, dense, est
    #: 90,000 rows".
    facts: list = field(default_factory=list)
    #: every rival implementation: {"algorithm", "applicable", "cost",
    #: "ratio", "reason"} — ratio is rival/chosen (>1: chosen was
    #: cheaper), reason set when inapplicable.
    rivals: list = field(default_factory=list)

    def headline(self) -> str:
        """The one-sentence summary, ISSUE-style: 'SPHJ beat HJ here by
        4.0x because probe S.R_ID: unsorted, dense, est 90,000 rows'."""
        beaten = [
            rival
            for rival in self.rivals
            if rival["applicable"] and rival["ratio"] is not None
        ]
        if not beaten:
            return f"{self.algorithm} was the only applicable implementation"
        best = min(beaten, key=lambda rival: rival["cost"])
        because = f" because {self.facts[-1]}" if self.facts else ""
        if best["ratio"] is not None and best["ratio"] < 1.0:
            # A rival's raw formula was cheaper: the chosen node won on
            # credits or frontier properties, worth calling out as such.
            return (
                f"{self.algorithm} chosen over cheaper-by-formula "
                f"{best['algorithm']} (ratio {best['ratio']:.2f}x —"
                f" view credit or property value)"
            )
        return (
            f"{self.algorithm} beat {best['algorithm']} here by "
            f"{best['ratio']:.1f}x{because}"
        )

    def to_dict(self) -> dict:
        payload = {
            "op": self.op,
            "node": self.node,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "rows": self.rows,
            "decisive_term": self.decisive_term,
            "decisive_value": self.decisive_value,
            "terms": [[name, value] for name, value in self.terms],
            "facts": list(self.facts),
            "rivals": [dict(rival) for rival in self.rivals],
            "headline": self.headline(),
        }
        return payload


@dataclass
class WhyReport:
    """The full ``EXPLAIN WHY`` verdict for one query."""

    spec_fingerprint: str
    plan_fingerprint: str
    cost: float
    deep: bool
    workers: int
    plan_text: str
    decisions: list[DecisionExplanation] = field(default_factory=list)
    #: recorded runner-up complete plans: {"rank", "fingerprint",
    #: "cost", "ratio", "plan"}.
    alternatives: list = field(default_factory=list)
    #: killed candidates from the trace: {"cause", "plan", "cost",
    #: "killer"} — the dominance edges of the search.
    deaths: list = field(default_factory=list)
    death_counts: dict = field(default_factory=dict)
    search: dict = field(default_factory=dict)
    trace_summary: dict = field(default_factory=dict)
    #: the underlying optimisation (not serialised).
    result: OptimizationResult | None = None
    #: the journal itself (not serialised; save via trace.save()).
    trace: SearchTrace | None = None

    def to_dict(self) -> dict:
        return {
            "spec_fingerprint": self.spec_fingerprint,
            "plan_fingerprint": self.plan_fingerprint,
            "cost": self.cost,
            "deep": self.deep,
            "workers": self.workers,
            "plan": self.plan_text,
            "decisions": [decision.to_dict() for decision in self.decisions],
            "alternatives": [dict(item) for item in self.alternatives],
            "deaths": [dict(item) for item in self.deaths],
            "death_counts": dict(self.death_counts),
            "search": dict(self.search),
            "trace_summary": dict(self.trace_summary),
        }

    def render(self) -> str:
        """The human-readable report."""
        lines = [
            f"EXPLAIN WHY — spec {self.spec_fingerprint[:12]} "
            f"({'deep' if self.deep else 'shallow'}, workers={self.workers})",
            f"chosen plan {self.plan_fingerprint} (cost {self.cost:,.0f}):",
        ]
        lines += [f"  {line}" for line in self.plan_text.splitlines()]
        lines.append("decisions:")
        if not self.decisions:
            lines.append("  (no algorithm decisions: single-scan plan)")
        for index, decision in enumerate(self.decisions, start=1):
            lines.append(f"  {index}. {decision.node}")
            lines.append(f"       {decision.headline()}")
            lines.append(
                f"       decisive term: {decision.decisive_term} = "
                f"{decision.decisive_value:,.0f}"
            )
            for fact in decision.facts:
                lines.append(f"       input: {fact}")
            for rival in decision.rivals:
                if rival["applicable"]:
                    lines.append(
                        f"       vs {rival['algorithm']:<14} cost "
                        f"{rival['cost']:>14,.0f}  ({rival['ratio']:.2f}x)"
                    )
                else:
                    lines.append(
                        f"       vs {rival['algorithm']:<14} inapplicable: "
                        f"{rival['reason']}"
                    )
        lines.append("runner-up plans:")
        if not self.alternatives:
            lines.append("  (none recorded)")
        for item in self.alternatives:
            lines.append(
                f"  #{item['rank']} cost {item['cost']:,.0f} "
                f"(+{item['ratio']:.2f}x) {item['fingerprint']}  {item['plan']}"
            )
        if self.deaths:
            lines.append("notable killed candidates:")
            for death in self.deaths:
                killer = f"  <- {death['killer']}" if death.get("killer") else ""
                lines.append(
                    f"  [{death['cause']:<9}] {death['plan']}"
                    f" (cost {death['cost']:,.0f}){killer}"
                )
        summary = self.trace_summary
        lines.append(
            "search journal: "
            f"{summary.get('generated', 0)} candidates, "
            f"{summary.get('dominated', 0)} dominated, "
            f"{summary.get('displaced', 0)} displaced, "
            f"{summary.get('truncated', 0)} truncated "
            f"({summary.get('classes', 0)} classes, "
            f"{summary.get('dropped', 0)} dropped)"
        )
        return "\n".join(lines)


def _explain_join(
    node: PhysicalNode,
    cost_model: CostModel,
    config: OptimizerConfig,
    workers: int,
) -> DecisionExplanation:
    build, probe = node.children
    build_rows, probe_rows = float(build.rows), float(probe.rows)
    groups = max(float(node.estimated_groups), 1.0)
    scope = config.property_scope
    chosen_parallel = bool(node.parallel)
    chosen_cost = float(node.local_cost)
    terms = cost_model.join_cost_terms(
        node.join_algorithm, build_rows, probe_rows, groups
    )
    decisive_term, decisive_value = max(terms, key=lambda term: term[1])
    rivals = []
    for option in join_options(config, workers):
        if (
            option.algorithm is node.join_algorithm
            and option.parallel == chosen_parallel
        ):
            continue
        applicable = option.applicable(
            build.properties,
            probe.properties,
            node.left_key,
            node.right_key,
            scope,
        )
        if not applicable:
            rivals.append(
                {
                    "algorithm": _option_label(option),
                    "applicable": False,
                    "cost": None,
                    "ratio": None,
                    "reason": _join_reason(
                        option,
                        build.properties,
                        probe.properties,
                        node.left_key,
                        node.right_key,
                        scope,
                    ),
                }
            )
            continue
        if option.parallel:
            cost = cost_model.parallel_join_cost(
                option.algorithm, build_rows, probe_rows, groups, float(workers)
            )
        else:
            cost = cost_model.join_cost(
                option.algorithm, build_rows, probe_rows, groups
            )
        rivals.append(
            {
                "algorithm": _option_label(option),
                "applicable": True,
                "cost": cost,
                "ratio": cost / chosen_cost if chosen_cost > 0 else None,
                "reason": "",
            }
        )
    return DecisionExplanation(
        op="join",
        node=node.describe(),
        algorithm=node.join_algorithm.name
        + ("/parallel" if chosen_parallel else ""),
        cost=chosen_cost,
        rows=float(node.rows),
        decisive_term=decisive_term,
        decisive_value=decisive_value,
        terms=terms,
        facts=[
            _props_facts("build", build.properties, node.left_key, build_rows),
            _props_facts("probe", probe.properties, node.right_key, probe_rows),
        ],
        rivals=rivals,
    )


def _explain_grouping(
    node: PhysicalNode,
    cost_model: CostModel,
    config: OptimizerConfig,
    workers: int,
) -> DecisionExplanation:
    child = node.children[0]
    rows = float(child.rows)
    groups = max(float(node.estimated_groups), 1.0)
    scope = config.property_scope
    chosen_parallel = bool(node.parallel)
    chosen_cost = float(node.local_cost)
    terms = cost_model.grouping_cost_terms(
        node.grouping_algorithm, rows, groups
    )
    decisive_term, decisive_value = max(terms, key=lambda term: term[1])
    rivals = []
    for option in grouping_options(config, workers):
        if (
            option.algorithm is node.grouping_algorithm
            and option.parallel == chosen_parallel
        ):
            continue
        applicable = option.applicable(
            child.properties, node.group_key, scope
        )
        if not applicable:
            rivals.append(
                {
                    "algorithm": _option_label(option),
                    "applicable": False,
                    "cost": None,
                    "ratio": None,
                    "reason": _grouping_reason(
                        option, child.properties, node.group_key, scope
                    ),
                }
            )
            continue
        if option.parallel:
            cost = cost_model.parallel_grouping_cost(
                option.algorithm, rows, groups, float(workers)
            )
        else:
            cost = cost_model.grouping_cost(option.algorithm, rows, groups)
        rivals.append(
            {
                "algorithm": _option_label(option),
                "applicable": True,
                "cost": cost,
                "ratio": cost / chosen_cost if chosen_cost > 0 else None,
                "reason": "",
            }
        )
    return DecisionExplanation(
        op="group_by",
        node=node.describe(),
        algorithm=node.grouping_algorithm.name
        + ("/parallel" if chosen_parallel else ""),
        cost=chosen_cost,
        rows=float(node.rows),
        decisive_term=decisive_term,
        decisive_value=decisive_value,
        terms=terms,
        facts=[
            _props_facts("input", child.properties, node.group_key, rows)
        ],
        rivals=rivals,
    )


def _notable_deaths(replayed: dict, limit: int = 8) -> list[dict]:
    """The most interesting kills: cheapest casualties first (the closer
    a dead candidate's cost was to winning, the more the dominance edge
    explains)."""
    candidates = replayed["candidates"]
    deaths = []
    for entry_id, death in replayed["deaths"].items():
        payload = candidates.get(entry_id)
        if payload is None:
            continue  # its generated event fell off a ring buffer
        killer_payload = candidates.get(death.get("by"))
        deaths.append(
            {
                "cause": death["cause"],
                "plan": payload.get("plan", ""),
                "cost": float(payload.get("cost", 0.0)),
                "killer": (killer_payload or {}).get("plan", ""),
            }
        )
    deaths.sort(key=lambda item: item["cost"])
    return deaths[:limit]


def explain_why(
    query,
    catalog: Catalog,
    *,
    config: OptimizerConfig | None = None,
    cost_model: CostModel | None = None,
    capacity_per_class: int = DEFAULT_CAPACITY,
    save_trace: str | None = None,
) -> WhyReport:
    """Optimise ``query`` with a decision trace attached and explain the
    verdict (see the module docstring).

    :param query: SQL text, a LogicalPlan, or a QuerySpec.
    :param save_trace: when given, the journal is also written to this
        path.
    """
    spec = _as_spec(query, catalog)
    config = config or dqo_config()
    cost_model = cost_model or PaperCostModel()
    workers = max(
        config.workers
        if config.workers is not None
        else get_executor_config().workers,
        1,
    )
    trace = SearchTrace(capacity_per_class=capacity_per_class)
    optimizer = DynamicProgrammingOptimizer(
        catalog,
        cost_model,
        config,
        plan_cache=PlanCache(2),  # private: never resolves a stale hit
        trace=trace,
    )
    result = optimizer.optimize_spec(spec)
    decisions = []
    for node in result.plan.walk():
        if node.op == "join":
            decisions.append(_explain_join(node, cost_model, config, workers))
        elif node.op == "group_by":
            decisions.append(
                _explain_grouping(node, cost_model, config, workers)
            )
    alternatives = []
    for rank, plan in enumerate(result.alternatives, start=1):
        alternatives.append(
            {
                "rank": rank,
                "fingerprint": plan_fingerprint(plan),
                "cost": float(plan.cost),
                "ratio": float(plan.cost) / result.cost
                if result.cost > 0
                else 1.0,
                "plan": plan.describe(),
            }
        )
    replayed = replay(trace)
    summary = trace.summary()
    if save_trace is not None:
        trace.save(save_trace)
    return WhyReport(
        spec_fingerprint=result.spec_fingerprint,
        plan_fingerprint=result.plan_fingerprint,
        cost=result.cost,
        deep=config.is_deep,
        workers=workers,
        plan_text=result.plan.explain(),
        decisions=decisions,
        alternatives=alternatives,
        deaths=_notable_deaths(replayed),
        death_counts={
            cause: sum(
                1
                for death in replayed["deaths"].values()
                if death["cause"] == cause
            )
            for cause in ("dominated", "displaced", "truncated")
        },
        search=result.stats.as_dict(),
        trace_summary=summary,
        result=result,
        trace=trace,
    )
