"""The optimiser search observatory.

Everything after the optimiser returns has been observable since PR 1
(execution actuals, profiles, the query log, the regression sentinel);
this package opens the box the search itself runs in:

- :class:`SearchTrace` (:mod:`repro.obs.search.trace`) — an opt-in
  journal of every frontier event (generated / kept / dominated-by-whom /
  displaced / truncated), schema-versioned JSON, replayable.
- :func:`explain_why` (:mod:`repro.obs.search.explain`) — ``EXPLAIN
  WHY``: the chosen plan against its runner-ups, with per-decision cost
  attribution and each runner-up's cause of death.
- :class:`StatisticsOverlay` / :func:`whatif` /
  :func:`sensitivity_frontier` (:mod:`repro.obs.search.whatif`) —
  hypothetical statistics, re-optimisation under them, and the stat
  changes that flip the plan.

``python -m repro.obs.search`` surfaces all three on the command line.

The trace layer is imported eagerly (the optimiser's hook,
:func:`get_search_trace`, must be cheap and cycle-free); the explain /
what-if layers import the optimiser itself, so they load lazily on
first attribute access.
"""

from repro.obs.search.trace import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    SearchTrace,
    TraceEvent,
    get_search_trace,
    load_trace,
    replay,
    set_search_trace,
    trace_search,
)

_LAZY = {
    "DecisionExplanation": "repro.obs.search.explain",
    "WhyReport": "repro.obs.search.explain",
    "explain_why": "repro.obs.search.explain",
    "SensitivityProbe": "repro.obs.search.whatif",
    "StatisticsOverlay": "repro.storage.overlay",
    "WhatIfReport": "repro.obs.search.whatif",
    "render_frontier": "repro.obs.search.whatif",
    "sensitivity_frontier": "repro.obs.search.whatif",
    "whatif": "repro.obs.search.whatif",
}

__all__ = [
    "DEFAULT_CAPACITY",
    "DecisionExplanation",
    "EVENT_KINDS",
    "SearchTrace",
    "SensitivityProbe",
    "StatisticsOverlay",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "WhatIfReport",
    "WhyReport",
    "explain_why",
    "get_search_trace",
    "load_trace",
    "render_frontier",
    "replay",
    "sensitivity_frontier",
    "set_search_trace",
    "trace_search",
    "whatif",
]


def __getattr__(name: str):
    # Lazy bridge to the optimiser-importing layers: `repro.obs.search`
    # must stay importable from inside `repro.core.optimizer.dp` itself.
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(module_name)
    # Bind every lazy symbol the module provides, not just the requested
    # one: importing the `whatif` SUBMODULE also sets a package
    # attribute named `whatif`, which would otherwise shadow the
    # same-named function on the next lookup.
    for symbol, owner in _LAZY.items():
        if owner == module_name:
            globals()[symbol] = getattr(module, symbol)
    return globals()[name]
