"""Observability: metrics, span tracing, and operator instrumentation.

Three independent layers, each zero-cost unless switched on:

- :class:`MetricsRegistry` — thread-safe counters / gauges / fixed-bucket
  histograms with snapshot, reset, and text/JSON rendering.
- :class:`Tracer` — nested spans exported as JSON or Chrome trace events.
- :func:`instrumented` — per-operator rows/chunks/time actuals, the
  machinery behind :func:`repro.engine.executor.explain_analyze`.

The engine and optimiser report into the process-wide handles from
:mod:`repro.obs.runtime`; call :func:`enable_observability` to start
collecting.

Service telemetry rides on top: :class:`SLOTracker` tracks sliding-
window latency objectives, :func:`render_prometheus` /
:func:`parse_prometheus` expose and validate metrics snapshots in the
Prometheus text format (``python -m repro.obs.exposition``), and
``python -m repro.obs.top`` is a live dashboard over a running
:class:`~repro.service.server.QueryServer`.
"""

from repro.obs.exposition import (
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.feedback import FeedbackSample, FeedbackStore
from repro.obs.instrument import OperatorStats, format_bytes, instrumented
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    QueryProfile,
    capture_profile,
)
from repro.obs.querylog import (
    ENV_QUERY_LOG,
    QueryLog,
    get_query_log,
    set_query_log,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.sentinel import (
    BASELINE_SCHEMA_VERSION,
    BaselineStore,
    Sentinel,
    SentinelAlert,
    SentinelConfig,
    SentinelThread,
)
from repro.obs.search import (
    SearchTrace,
    get_search_trace,
    load_trace,
    replay,
    set_search_trace,
    trace_search,
)
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from repro.obs.runtime import (
    capture_observability,
    disable_observability,
    enable_observability,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_OBJECTIVES",
    "ENV_QUERY_LOG",
    "FeedbackSample",
    "FeedbackStore",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorStats",
    "BASELINE_SCHEMA_VERSION",
    "BaselineStore",
    "PROFILE_SCHEMA_VERSION",
    "QueryLog",
    "QueryProfile",
    "SLObjective",
    "SLOTracker",
    "SearchTrace",
    "Sentinel",
    "SentinelAlert",
    "SentinelConfig",
    "SentinelThread",
    "Span",
    "Tracer",
    "capture_observability",
    "capture_profile",
    "disable_observability",
    "enable_observability",
    "explain_why",
    "format_bytes",
    "get_metrics",
    "get_query_log",
    "get_search_trace",
    "get_tracer",
    "instrumented",
    "load_trace",
    "merge_snapshots",
    "parse_prometheus",
    "render_prometheus",
    "replay",
    "sanitize_metric_name",
    "sensitivity_frontier",
    "set_metrics",
    "set_query_log",
    "set_search_trace",
    "set_tracer",
    "trace_search",
    "whatif",
]


def __getattr__(name: str):
    # The explain / what-if layers import the optimiser; resolve them
    # lazily so `import repro.obs` stays light (and cycle-free from
    # inside the optimiser itself).
    if name in ("explain_why", "whatif", "sensitivity_frontier"):
        import repro.obs.search as search

        value = getattr(search, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
