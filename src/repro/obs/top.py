"""A live terminal dashboard for a running query server — ``repro top``.

``python -m repro.obs.top --port N`` polls a
:class:`~repro.service.server.QueryServer` over its JSON-lines protocol
(the ``health``, ``stats``, and ``metrics`` ops) and renders, once per
interval:

* **throughput** — QPS derived from outcome-counter deltas between
  polls, split into completed / failed / cancelled / rejected rates;
* **pressure** — admission state (accepting / degraded / shedding),
  inflight count, queue depth, plan-cache hit rate, uptime;
* **stage latency** — per-stage p95s over the
  :data:`~repro.service.session.STAGES` taxonomy, read from the
  ``service.stage_seconds.*`` histograms;
* **SLO posture** — per-priority windowed p95, compliance, and
  error-budget burn rate from the server's
  :class:`~repro.obs.slo.SLOTracker`;
* **workers** — morsel-pool busy time per second of wall time, total
  and per worker, from the ``worker.*.busy_seconds`` gauges;
* **optimiser search effort** — fresh searches, frontier candidates,
  and traced searches per second, plus the cumulative prune rate and
  truncation count, from the ``optimizer.*`` counters;
* **top queries** — the heaviest query texts by cumulative execute
  seconds;
* **sentinel alerts** — the plan-regression sentinel's recent plan-flip
  and drift alerts from the ``health`` report's ``sentinel`` section.

Rendering is pure (:func:`render_dashboard` takes a polled sample and
returns a string), so tests drive it without a terminal; the loop is
bounded with ``--iterations`` for the same reason. ``--no-clear``
appends frames instead of redrawing in place.
"""

from __future__ import annotations

import argparse
import re
import sys
import time

from repro.errors import ServiceError

#: stage display order (mirrors repro.service.session.STAGES without
#: importing the service layer at module import time).
STAGE_ORDER = ("queue", "parse", "plan_cache", "optimize", "execute", "serialize")

_WORKER_GAUGE_RE = re.compile(r"^worker\.(.+)\.busy_seconds$")

#: ANSI: clear screen + home cursor (the in-place redraw).
_CLEAR = "\x1b[2J\x1b[H"


def poll(client) -> dict:
    """One sample: the server's health, stats, and metrics, timestamped
    with a local monotonic clock for rate computation."""
    return {
        "at": time.monotonic(),
        "health": client.health(),
        "stats": client.stats(),
        "metrics": client.metrics(),
    }


def rates(previous: dict | None, current: dict) -> dict:
    """Per-second deltas between two samples (zeros on the first poll).

    Returns ``qps`` (all outcomes), per-outcome rates, and
    ``worker_busy`` — busy seconds accrued per wall second, i.e. the
    average number of busy workers over the interval.
    """
    zeros = {
        "qps": 0.0,
        "completed": 0.0,
        "failed": 0.0,
        "cancelled": 0.0,
        "rejected": 0.0,
        "worker_busy": 0.0,
        "searches": 0.0,
        "candidates": 0.0,
        "traced": 0.0,
    }
    if previous is None:
        return zeros
    elapsed = current["at"] - previous["at"]
    if elapsed <= 0:
        return zeros
    before = previous["health"].get("counts", {})
    after = current["health"].get("counts", {})
    out = {}
    for key in ("completed", "failed", "cancelled", "rejected"):
        out[key] = max(after.get(key, 0) - before.get(key, 0), 0) / elapsed
    out["qps"] = sum(out.values())
    snap_before = previous["metrics"].get("metrics", {}) or {}
    snap_after = current["metrics"].get("metrics", {}) or {}

    def metric_rate(name: str) -> float:
        delta = snap_after.get(name, 0.0) - snap_before.get(name, 0.0)
        return max(float(delta), 0.0) / elapsed

    out["worker_busy"] = metric_rate("worker.busy_seconds")
    # Optimiser search effort: fresh enumerations (cache hits search
    # nothing), frontier candidates considered, and traced searches.
    out["searches"] = metric_rate("optimizer.optimizations")
    out["candidates"] = metric_rate("optimizer.candidates_generated")
    out["traced"] = metric_rate("optimizer.search.traced")
    return out


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.3f}s"
    return f"{seconds * 1e3:6.2f}ms"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    return f"{hours:d}:{minutes:02d}:{secs:02d}"


def _stage_rows(snapshot: dict) -> list[tuple[str, int, float]]:
    """(stage, count, p95) rows from the stage histograms present."""
    rows = []
    for stage in STAGE_ORDER:
        record = snapshot.get(f"service.stage_seconds.{stage}")
        if isinstance(record, dict):
            rows.append(
                (stage, int(record.get("count", 0)), float(record.get("p95", 0.0)))
            )
    return rows


def _worker_rows(snapshot: dict) -> list[tuple[str, float]]:
    """(worker name, cumulative busy seconds) from per-worker gauges."""
    rows = []
    for name, value in snapshot.items():
        match = _WORKER_GAUGE_RE.match(name)
        if match and isinstance(value, (int, float)):
            rows.append((match.group(1), float(value)))
    return sorted(rows)


def render_dashboard(sample: dict, deltas: dict, top: int = 5) -> str:
    """One dashboard frame as plain text (no terminal control codes)."""
    health = sample.get("health", {})
    stats = sample.get("stats", {})
    snapshot = sample.get("metrics", {}).get("metrics", {}) or {}
    cache = health.get("plan_cache", {})
    lines = [
        "repro top — query service",
        (
            f"state {health.get('state', '?'):>9}   "
            f"uptime {_fmt_uptime(health.get('uptime_seconds', 0.0))}   "
            f"qps {deltas.get('qps', 0.0):6.1f}   "
            f"inflight {health.get('inflight', 0):d}   "
            f"queued {health.get('queue_depth', 0):d}"
        ),
        (
            f"completed/s {deltas.get('completed', 0.0):6.1f}   "
            f"failed/s {deltas.get('failed', 0.0):5.1f}   "
            f"cancelled/s {deltas.get('cancelled', 0.0):5.1f}   "
            f"rejected/s {deltas.get('rejected', 0.0):5.1f}"
        ),
        (
            f"plan cache  hit rate {cache.get('hit_rate', 0.0) * 100:5.1f}%   "
            f"entries {cache.get('entries', cache.get('size', 0))}   "
            f"workers busy {deltas.get('worker_busy', 0.0):4.2f}"
        ),
        "",
        "stage            count       p95",
    ]
    stage_rows = _stage_rows(snapshot)
    if stage_rows:
        for stage, count, p95 in stage_rows:
            lines.append(f"  {stage:<12} {count:>8}  {_fmt_seconds(p95)}")
    else:
        lines.append("  (no stage samples yet)")
    lines.append("")
    lines.append("SLO class     count     p95    compliance   burn")
    classes = health.get("slo", {}).get("classes", {})
    for name in ("HIGH", "NORMAL", "LOW"):
        record = classes.get(name)
        if not record:
            continue
        p95 = record.get("p95", 0.0)
        lines.append(
            f"  {name:<9} {record.get('count', 0):>7}  "
            f"{_fmt_seconds(p95)}  "
            f"{record.get('compliance', 1.0) * 100:9.2f}%  "
            f"{record.get('burn_rate', 0.0):5.2f}"
        )
    worst = health.get("slo", {}).get("worst_burn_rate", 0.0)
    lines.append(f"  worst burn rate: {worst:.2f}")
    worker_rows = _worker_rows(snapshot)
    if worker_rows:
        lines.append("")
        lines.append("worker busy seconds (cumulative)")
        for worker, busy in worker_rows:
            lines.append(f"  {worker:<18} {busy:10.3f}s")
    top_queries = stats.get("service", {}).get("top_queries", [])[:top]
    if top_queries:
        lines.append("")
        lines.append("top queries by execute time")
        for entry in top_queries:
            sql = " ".join(str(entry.get("sql", "")).split())
            if len(sql) > 60:
                sql = sql[:57] + "..."
            lines.append(
                f"  {entry.get('total_execute_seconds', 0.0):8.3f}s "
                f"x{entry.get('executions', 0):<4} {sql}"
            )
    if snapshot.get("optimizer.optimizations"):
        generated = float(snapshot.get("optimizer.candidates_generated", 0.0))
        dropped = (
            float(snapshot.get("optimizer.pruned_dominated", 0.0))
            + float(snapshot.get("optimizer.search.displaced", 0.0))
            + float(snapshot.get("optimizer.search.truncated", 0.0))
        )
        prune_pct = (dropped / generated * 100.0) if generated else 0.0
        lines.append("")
        lines.append(
            "optimiser  "
            f"searches/s {deltas.get('searches', 0.0):6.1f}   "
            f"candidates/s {deltas.get('candidates', 0.0):7.1f}   "
            f"traced/s {deltas.get('traced', 0.0):5.1f}"
        )
        lines.append(
            f"           pruned {prune_pct:5.1f}%   "
            f"truncated {int(snapshot.get('optimizer.search.truncated', 0)):d}   "
            f"closures {int(snapshot.get('optimizer.closures', 0)):d}   "
            f"searches {int(snapshot.get('optimizer.optimizations', 0)):d}"
        )
    buffer_hits = float(snapshot.get("storage.buffer.hits", 0.0))
    buffer_misses = float(snapshot.get("storage.buffer.misses", 0.0))
    if buffer_hits or buffer_misses:
        from repro.obs.instrument import format_bytes

        accesses = buffer_hits + buffer_misses
        hit_pct = (buffer_hits / accesses * 100.0) if accesses else 0.0
        lines.append("")
        lines.append(
            "buffer pool  "
            f"hit rate {hit_pct:5.1f}%   "
            f"misses {int(buffer_misses):d}   "
            f"evictions {int(snapshot.get('storage.buffer.evictions', 0)):d}   "
            f"resident {format_bytes(snapshot.get('storage.buffer.resident_bytes', 0))}"
        )
    sentinel = health.get("sentinel", {})
    if sentinel:
        lines.append("")
        lines.append(
            "sentinel  "
            f"alerts {sentinel.get('total', 0):d} "
            f"(flip {sentinel.get('plan_flip', 0):d} "
            f"latency {sentinel.get('latency_drift', 0):d} "
            f"qerror {sentinel.get('qerror_drift', 0):d})   "
            f"fingerprints {sentinel.get('fingerprints', 0):d}   "
            f"critical {'LIVE' if sentinel.get('fresh_critical') else 'none'}"
        )
        for alert in sentinel.get("recent", [])[-top:]:
            message = " ".join(str(alert.get("message", "")).split())
            if len(message) > 56:
                message = message[:53] + "..."
            lines.append(
                f"  [{alert.get('severity', '?'):<8}] "
                f"{alert.get('kind', '?'):<13} "
                f"{str(alert.get('spec_fingerprint', ''))[:10]} {message}"
            )
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.top`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live dashboard for a running repro QueryServer.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N frames (0 = run until interrupted)",
    )
    parser.add_argument(
        "--top", type=int, default=5, help="top-query rows to show"
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing the screen",
    )
    args = parser.parse_args(argv)
    from repro.service.server import ServiceClient

    try:
        client = ServiceClient(args.host, args.port)
    except OSError as error:
        print(f"error: cannot connect to {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    previous = None
    frame = 0
    try:
        while True:
            try:
                sample = poll(client)
            except (ServiceError, OSError, ValueError) as error:
                print(f"error: poll failed: {error}", file=sys.stderr)
                return 1
            text = render_dashboard(sample, rates(previous, sample), args.top)
            if not args.no_clear:
                sys.stdout.write(_CLEAR)
            sys.stdout.write(text)
            sys.stdout.flush()
            previous = sample
            frame += 1
            if args.iterations and frame >= args.iterations:
                return 0
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
