"""A persistent, append-only query log plus its CLI.

Every :func:`repro.engine.executor.execute`,
:func:`~repro.engine.executor.explain_analyze`, and
:meth:`repro.core.optimizer.dp.DPOptimizer.optimize_spec` call appends a
JSON line to the active log — enabled either explicitly
(:func:`set_query_log`) or via the ``REPRO_QUERY_LOG`` environment
variable. Lines are self-describing (``kind`` is ``'execute'``,
``'profile'``, or ``'optimize'``), so history survives schema growth and
a half-written trailing line never poisons the reader.

Entries written while a :class:`~repro.service.context.QueryContext`
is active are stamped with its ``trace_id``, so one served request's
``service`` row, its ``optimize`` row, and its ``execute``/``profile``
rows all share a correlation id.

``python -m repro.obs.querylog`` turns the log back into insight::

    python -m repro.obs.querylog --log run.jsonl list
    python -m repro.obs.querylog --log run.jsonl show <id> --html out.html
    python -m repro.obs.querylog --log run.jsonl diff <id-a> <id-b>
    python -m repro.obs.querylog --log run.jsonl summary
    python -m repro.obs.querylog --log run.jsonl trace <trace-id>
    python -m repro.obs.querylog --log run.jsonl regress --json

``trace`` reconstructs one request's timeline from every entry carrying
that correlation id (unique prefixes work), including its per-stage
latency breakdown. ``regress`` replays history through the
plan-regression sentinel (:mod:`repro.obs.sentinel`) and reports plan
flips and latency/q-error drift; ``list``/``summary``/``regress``
accept ``--since <iso|duration>`` and ``--last N`` window filters.

``summary`` replays every logged profile through a
:class:`~repro.obs.feedback.FeedbackStore`, reporting per-operator
q-error alongside self-time and query-latency percentiles — the paper's
"did the optimiser's guesses survive contact with execution?" question
asked across history instead of per run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Iterator

from repro.errors import ObservabilityError
from repro.obs.feedback import FeedbackSample, FeedbackStore

#: environment variable holding the default log path.
ENV_QUERY_LOG = "REPRO_QUERY_LOG"

#: schema version stamped on every appended entry.
LOG_SCHEMA_VERSION = 1


class QueryLog:
    """An append-only JSONL file of query-lifecycle events.

    Appends are line-atomic (one ``write`` of one ``\\n``-terminated
    line in append mode), and reads tolerate malformed lines, so
    concurrent writers and a crashed process degrade to *missing*
    entries rather than an unreadable log.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._sequence = 0

    @property
    def path(self) -> Path:
        """Where the log lives on disk."""
        return self._path

    def _new_id(self) -> str:
        self._sequence += 1
        return f"q{time.time_ns() // 1_000_000:011x}-{self._sequence:03d}"

    def append(self, entry: dict) -> str:
        """Append one entry; returns the (assigned) entry id.

        ``id``, ``ts`` (unix seconds), and ``log_schema_version`` are
        stamped in unless the entry already carries them.
        """
        record = dict(entry)
        record.setdefault("id", self._new_id())
        record.setdefault("ts", time.time())
        record.setdefault("log_schema_version", LOG_SCHEMA_VERSION)
        if not record.get("trace_id"):
            # Imported lazily: the service layer imports this module.
            from repro.service.context import get_active_context

            active = get_active_context()
            if active is not None and active.trace_id:
                record["trace_id"] = active.trace_id
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, default=str) + "\n")
        return record["id"]

    def entries(self) -> list[dict]:
        """Every parseable entry, in append order.

        Blank and malformed lines (torn writes) are skipped silently.
        """
        if not self._path.exists():
            return []
        entries = []
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    entries.append(record)
        return entries

    def read_from(self, offset: int) -> tuple[list[dict], int]:
        """Incremental read: every parseable entry whose line *completed*
        at or after byte ``offset``, plus the next offset to resume from.

        Only ``\\n``-terminated lines are consumed — a torn trailing
        line (a concurrent writer mid-append, or a crash) is left for
        the next call rather than half-parsed, so an incremental tailer
        (the sentinel thread) never observes a partial record. A log
        that shrank (rotation/truncation) resets the cursor to zero.
        """
        if not self._path.exists():
            return [], 0
        size = self._path.stat().st_size
        if size < offset:
            offset = 0
        if size == offset:
            return [], offset
        with self._path.open("rb") as handle:
            handle.seek(offset)
            blob = handle.read()
        end = blob.rfind(b"\n")
        if end < 0:
            return [], offset
        consumed = blob[: end + 1]
        entries = []
        for raw_line in consumed.split(b"\n"):
            line = raw_line.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                entries.append(record)
        return entries, offset + len(consumed)

    def entry(self, entry_id: str) -> dict:
        """The entry with the given id; unique prefixes also match.

        :raises ObservabilityError: when no entry (or more than one)
            matches.
        """
        matches = [
            record
            for record in self.entries()
            if str(record.get("id", "")).startswith(entry_id)
        ]
        exact = [r for r in matches if r.get("id") == entry_id]
        if exact:
            return exact[0]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ObservabilityError(
                f"no query-log entry matches {entry_id!r} in {self._path}"
            )
        raise ObservabilityError(
            f"{entry_id!r} is ambiguous: matches "
            f"{[r.get('id') for r in matches]}"
        )

    def __len__(self) -> int:
        return len(self.entries())


# -- process-wide handle ----------------------------------------------------

#: the explicitly-installed log (None = fall back to the environment).
_query_log: QueryLog | None = None
#: cache for the environment-configured log, keyed by the env value.
_env_log: tuple[str, QueryLog] | None = None


def set_query_log(target: QueryLog | str | Path | None) -> None:
    """Install (or with ``None`` uninstall) the process-wide query log.

    An explicitly installed log wins over ``REPRO_QUERY_LOG``; passing
    ``None`` restores the environment-variable behaviour.
    """
    global _query_log
    if target is None or isinstance(target, QueryLog):
        _query_log = target
    else:
        _query_log = QueryLog(target)


def get_query_log() -> QueryLog | None:
    """The active query log, or None when logging is disabled.

    Resolution order: the log installed via :func:`set_query_log`, then
    the path named by the ``REPRO_QUERY_LOG`` environment variable.
    """
    global _env_log
    if _query_log is not None:
        return _query_log
    path = os.environ.get(ENV_QUERY_LOG, "")
    if not path:
        _env_log = None
        return None
    if _env_log is None or _env_log[0] != path:
        _env_log = (path, QueryLog(path))
    return _env_log[1]


# -- window filters ---------------------------------------------------------

#: duration suffixes accepted by :func:`parse_since`.
_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_since(text: str, now: float | None = None) -> float:
    """Turn ``--since`` input into a unix-seconds cutoff.

    Accepts a relative duration (``30s``, ``15m``, ``2h``, ``1d`` —
    "everything in the last N") or an absolute ISO-8601 timestamp
    (``2026-08-07T12:00:00``; naive stamps are local time).

    :raises ObservabilityError: unparseable input.
    """
    text = text.strip()
    if not text:
        raise ObservabilityError("--since needs a duration or timestamp")
    unit = _DURATION_UNITS.get(text[-1].lower())
    if unit is not None:
        try:
            amount = float(text[:-1])
        except ValueError:
            amount = None
        if amount is not None and amount >= 0:
            return (time.time() if now is None else now) - amount * unit
    from datetime import datetime

    try:
        stamp = datetime.fromisoformat(text)
    except ValueError:
        raise ObservabilityError(
            f"cannot parse --since {text!r}: use a duration like "
            "'30s'/'15m'/'2h'/'1d' or an ISO timestamp"
        ) from None
    return stamp.timestamp()


def filter_window(
    entries: list[dict],
    since_ts: float | None = None,
    last: int | None = None,
) -> list[dict]:
    """Restrict entries to a window: at-or-after ``since_ts`` (unix
    seconds), then the final ``last`` entries. Append order is kept."""
    window = entries
    if since_ts is not None:
        window = [
            entry
            for entry in window
            if float(entry.get("ts", 0.0) or 0.0) >= since_ts
        ]
    if last is not None and last >= 0:
        window = window[-last:] if last else []
    return window


def _windowed_entries(log: QueryLog, args: argparse.Namespace) -> list[dict]:
    """The log's entries through the CLI's ``--since``/``--last``."""
    since_ts = parse_since(args.since) if getattr(args, "since", "") else None
    last = args.last if getattr(args, "last", None) is not None else None
    return filter_window(log.entries(), since_ts=since_ts, last=last)


def _add_window_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--since",
        default="",
        help="window start: duration (30s/15m/2h/1d) or ISO timestamp",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="keep only the last N entries (after --since)",
    )


# -- summary helpers --------------------------------------------------------


def _walk_operator_nodes(node: dict) -> Iterator[dict]:
    yield node
    for child in node.get("children", []) or []:
        yield from _walk_operator_nodes(child)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted, non-empty list."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def feedback_from_entries(entries: list[dict]) -> FeedbackStore:
    """Rebuild a :class:`FeedbackStore` from logged profile entries.

    Every estimate-carrying operator node of every ``kind='profile'``
    entry becomes one :class:`FeedbackSample` — the same shape
    :func:`~repro.engine.executor.explain_analyze` records live, so
    :meth:`FeedbackStore.qerror_summary` and even
    :meth:`FeedbackStore.refit` work across persisted history.
    """
    store = FeedbackStore()
    for entry in entries:
        if entry.get("kind") != "profile":
            continue
        operators = entry.get("operators")
        if not isinstance(operators, dict):
            continue
        for node in _walk_operator_nodes(operators):
            if node.get("estimated_rows") is None:
                continue
            store.record(
                FeedbackSample(
                    operator_kind=node.get("operator_kind", ""),
                    plan_op=node.get("plan_op", ""),
                    algorithm=node.get("plan_algorithm", ""),
                    estimated_rows=float(node["estimated_rows"]),
                    actual_rows=int(node.get("rows_out", 0)),
                    rows_in=int(node.get("rows_in", 0)),
                    estimated_groups=float(
                        node.get("estimated_groups") or 0.0
                    ),
                    seconds=float(node.get("self_seconds", 0.0)),
                )
            )
    return store


def summarise(entries: list[dict]) -> str:
    """The ``summary`` report: q-error plus latency percentiles."""
    from repro.bench.reporting import render_table
    from repro.obs.instrument import format_bytes

    kinds: dict[str, int] = {}
    for entry in entries:
        kind = entry.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    breakdown = ", ".join(
        f"{count} {kind}" for kind, count in sorted(kinds.items())
    )
    lines = [f"query log: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} ({breakdown or 'empty'})"]

    # Which execution backend the optimize/execute rows ran under
    # (rows logged before the backend dial existed carry no key).
    backends: dict[str, int] = {}
    for entry in entries:
        backend = entry.get("backend")
        if backend:
            backends[backend] = backends.get(backend, 0) + 1
    if backends:
        lines.append(
            "execution backends: "
            + ", ".join(
                f"{count} {name}" for name, count in sorted(backends.items())
            )
        )

    # Out-of-core scans: segment reads/skips and cold bytes, summed over
    # execute rows (top-level keys) and profile rows (operator nodes).
    segments_read = segments_skipped = bytes_read = 0
    for entry in entries:
        if entry.get("kind") == "profile":
            operators = entry.get("operators")
            if isinstance(operators, dict):
                for node in _walk_operator_nodes(operators):
                    segments_read += int(node.get("segments_read", 0))
                    segments_skipped += int(node.get("segments_skipped", 0))
                    bytes_read += int(node.get("bytes_read", 0))
        else:
            segments_read += int(entry.get("segments_read", 0))
            segments_skipped += int(entry.get("segments_skipped", 0))
            bytes_read += int(entry.get("bytes_read", 0))
    if segments_read or segments_skipped:
        total = segments_read + segments_skipped
        skip_pct = 100.0 * segments_skipped / total if total else 0.0
        lines.append(
            f"storage: {segments_read} segment(s) read, "
            f"{segments_skipped} skipped via zone maps ({skip_pct:.0f}%), "
            f"{format_bytes(bytes_read)} cold from disk"
        )

    store = feedback_from_entries(entries)
    summary = store.qerror_summary()
    if summary:
        lines.append("")
        lines.append(
            render_table(
                ["operator", "count", "mean q", "p50 q", "max q"],
                [
                    [
                        kind,
                        str(stats["count"]),
                        f"{stats['mean']:.2f}",
                        f"{stats['p50']:.2f}",
                        f"{stats['max']:.2f}",
                    ]
                    for kind, stats in summary.items()
                ],
                title="per-operator cardinality q-error",
            )
        )

    self_times: dict[str, list[float]] = {}
    peaks: dict[str, list[float]] = {}
    for entry in entries:
        if entry.get("kind") != "profile":
            continue
        operators = entry.get("operators")
        if not isinstance(operators, dict):
            continue
        for node in _walk_operator_nodes(operators):
            kind = node.get("operator_kind") or node.get("name", "?")
            self_times.setdefault(kind, []).append(
                float(node.get("self_seconds", 0.0))
            )
            peaks.setdefault(kind, []).append(
                float(node.get("peak_memory_bytes", 0))
            )
    if self_times:
        lines.append("")
        lines.append(
            render_table(
                ["operator", "count", "p50", "p90", "p99", "peak mem p50"],
                [
                    [
                        kind,
                        str(len(values)),
                        f"{_percentile(values, 0.50) * 1e3:.3f}ms",
                        f"{_percentile(values, 0.90) * 1e3:.3f}ms",
                        f"{_percentile(values, 0.99) * 1e3:.3f}ms",
                        format_bytes(_percentile(peaks[kind], 0.50)),
                    ]
                    for kind, values in sorted(self_times.items())
                ],
                title="per-operator self-time percentiles",
            )
        )

    lines.extend(_plancache_lines(entries))
    lines.extend(_optimizer_effort_lines(entries))
    lines.extend(_plan_hash_lines(entries))

    walls = [
        float(entry["wall_seconds"])
        for entry in entries
        if entry.get("kind") in ("execute", "profile")
        and entry.get("wall_seconds") is not None
    ]
    if walls:
        lines.append("")
        lines.append(
            "query latency: "
            f"count={len(walls)} "
            f"p50={_percentile(walls, 0.50) * 1e3:.3f}ms "
            f"p90={_percentile(walls, 0.90) * 1e3:.3f}ms "
            f"p99={_percentile(walls, 0.99) * 1e3:.3f}ms"
        )
    return "\n".join(lines)


def _plancache_lines(entries: list[dict]) -> list[str]:
    """Plan-cache effectiveness across history.

    Two sources are reconciled: ``kind='optimize'`` entries (a cache hit
    logs ``cached: true``, a miss logs a full search record), and the
    ``optimizer.plancache.*`` counters inside any metrics snapshots the
    log carries (``kind='profile'`` entries; counters are cumulative per
    snapshot, so the per-metric maximum is the era's total).
    """
    hits = misses = 0
    for entry in entries:
        if entry.get("kind") != "optimize":
            continue
        if entry.get("cached"):
            hits += 1
        else:
            misses += 1
    counter_totals = {"hit": 0, "miss": 0, "evictions": 0}
    saw_counters = False
    for entry in entries:
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            continue
        for short in counter_totals:
            value = metrics.get(f"optimizer.plancache.{short}")
            if isinstance(value, (int, float)):
                saw_counters = True
                counter_totals[short] = max(
                    counter_totals[short], int(value)
                )
    hits = max(hits, counter_totals["hit"])
    misses = max(misses, counter_totals["miss"])
    if not (hits or misses or saw_counters):
        return []
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    return [
        "",
        "plan cache: "
        f"lookups={lookups} hits={hits} misses={misses} "
        f"evictions={counter_totals['evictions']} "
        f"hit rate={rate:.1%}",
    ]


def _optimizer_effort_lines(entries: list[dict]) -> list[str]:
    """Enumeration effort across history: per optimiser mode (deep vs
    shallow), how hard the fresh searches worked — candidates generated,
    the fraction pruned by dominance, frontier churn, truncation — plus
    how many carried a decision trace. Fresh ``optimize`` rows stamp
    their :class:`~repro.core.optimizer.base.SearchStats` as ``search``;
    cache hits carry none (the search never ran)."""
    from repro.bench.reporting import render_table

    per_mode: dict[str, dict] = {}
    for entry in entries:
        if entry.get("kind") != "optimize" or entry.get("cached"):
            continue
        search = entry.get("search")
        if not isinstance(search, dict):
            continue
        mode = "deep" if entry.get("deep") else "shallow"
        slot = per_mode.setdefault(
            mode,
            {"searches": 0, "generated": [], "pruned": 0, "displaced": 0,
             "truncated": 0, "closures": 0, "traced": 0},
        )
        slot["searches"] += 1
        slot["generated"].append(float(search.get("generated", 0)))
        slot["pruned"] += int(search.get("pruned_dominated", 0))
        slot["displaced"] += int(search.get("displaced", 0))
        slot["truncated"] += int(search.get("truncated", 0))
        slot["closures"] += int(search.get("closures", 0))
        if entry.get("search_trace"):
            slot["traced"] += 1
    if not per_mode:
        return []
    rows = []
    for mode, slot in sorted(per_mode.items()):
        generated_total = sum(slot["generated"])
        pruned_total = slot["pruned"] + slot["displaced"] + slot["truncated"]
        rows.append(
            [
                mode,
                str(slot["searches"]),
                f"{_percentile(slot['generated'], 0.50):.0f}",
                f"{pruned_total / generated_total:.1%}"
                if generated_total
                else "-",
                str(slot["truncated"]),
                str(slot["closures"]),
                str(slot["traced"]),
            ]
        )
    return [
        "",
        render_table(
            ["mode", "searches", "gen p50", "pruned", "truncated",
             "closures", "traced"],
            rows,
            title="optimiser effort (fresh searches)",
        ),
    ]


def _plan_hash_lines(entries: list[dict]) -> list[str]:
    """Plan-shape population across history: per plan hash, how many
    ``optimize`` rows chose it (split cached vs fresh) and the spec
    fingerprint it realises — the raw material of flip forensics."""
    from repro.bench.reporting import render_table

    per_hash: dict[str, dict] = {}
    for entry in entries:
        if entry.get("kind") != "optimize":
            continue
        plan_hash = str(entry.get("plan_hash", "") or "")
        if not plan_hash:
            continue
        slot = per_hash.setdefault(
            plan_hash,
            {"spec": str(entry.get("spec_fingerprint", "") or ""),
             "chosen": 0, "cached": 0},
        )
        slot["chosen"] += 1
        if entry.get("cached"):
            slot["cached"] += 1
    if not per_hash:
        return []
    rows = [
        [
            plan_hash,
            slot["spec"][:16],
            str(slot["chosen"]),
            str(slot["cached"]),
        ]
        for plan_hash, slot in sorted(
            per_hash.items(), key=lambda item: -item[1]["chosen"]
        )
    ]
    return [
        "",
        render_table(
            ["plan hash", "spec fp", "chosen", "from cache"],
            rows,
            title="plan shapes chosen",
        ),
    ]


# -- CLI --------------------------------------------------------------------


def _cli_log(args: argparse.Namespace) -> QueryLog:
    if args.log:
        return QueryLog(args.log)
    log = get_query_log()
    if log is None:
        raise ObservabilityError(
            f"no query log: pass --log PATH or set ${ENV_QUERY_LOG}"
        )
    return log


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.bench.reporting import render_table
    from repro.obs.instrument import format_bytes

    log = _cli_log(args)
    rows = []
    for entry in _windowed_entries(log, args):
        kind = entry.get("kind", "?")
        if kind == "profile":
            detail = (
                f"{entry.get('rows_out', 0):,} row(s), peak "
                f"{format_bytes(entry.get('peak_memory_bytes', 0))}"
            )
        elif kind == "execute":
            detail = f"{entry.get('rows_out', 0):,} row(s)"
        elif kind == "optimize":
            detail = f"cost={entry.get('cost', 0.0):.1f}"
        else:
            detail = ""
        wall = entry.get("wall_seconds")
        rows.append(
            [
                str(entry.get("id", "?")),
                kind,
                f"{wall * 1e3:.3f}ms" if wall is not None else "-",
                detail,
            ]
        )
    if not rows:
        print(f"(empty query log: {log.path})")
        return 0
    print(render_table(["id", "kind", "wall", "detail"], rows))
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.obs.profile import QueryProfile

    log = _cli_log(args)
    entry = log.entry(args.id)
    if entry.get("kind") == "profile":
        profile = QueryProfile.from_dict(entry)
        print(profile.render())
        if args.html:
            Path(args.html).write_text(profile.to_html(), encoding="utf-8")
            print(f"wrote HTML report: {args.html}")
        if args.flamegraph:
            Path(args.flamegraph).write_text(
                profile.to_folded_stacks(), encoding="utf-8"
            )
            print(f"wrote folded stacks: {args.flamegraph}")
    else:
        if args.html or args.flamegraph:
            raise ObservabilityError(
                "--html/--flamegraph need a 'profile' entry; "
                f"{entry.get('id')} is {entry.get('kind', '?')!r}"
            )
        print(json.dumps(entry, indent=2, sort_keys=True, default=str))
    return 0


def _collect_nodes(entry: dict) -> list[dict]:
    operators = entry.get("operators")
    if not isinstance(operators, dict):
        return []
    return list(_walk_operator_nodes(operators))


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.bench.reporting import render_table
    from repro.obs.instrument import format_bytes

    log = _cli_log(args)
    a, b = log.entry(args.a), log.entry(args.b)
    nodes_a, nodes_b = _collect_nodes(a), _collect_nodes(b)
    if not nodes_a or not nodes_b:
        raise ObservabilityError(
            "diff needs two 'profile' entries with operator trees"
        )
    rows = []
    for index in range(max(len(nodes_a), len(nodes_b))):
        node_a = nodes_a[index] if index < len(nodes_a) else None
        node_b = nodes_b[index] if index < len(nodes_b) else None
        name_a = node_a.get("operator_kind", "?") if node_a else "-"
        name_b = node_b.get("operator_kind", "?") if node_b else "-"
        name = name_a if name_a == name_b else f"{name_a} vs {name_b}"

        def _fmt(node: dict | None) -> tuple[str, str, str]:
            if node is None:
                return "-", "-", "-"
            return (
                f"{node.get('rows_out', 0):,}",
                f"{node.get('self_seconds', 0.0) * 1e3:.3f}ms",
                format_bytes(node.get("peak_memory_bytes", 0)),
            )

        rows_a, self_a, peak_a = _fmt(node_a)
        rows_b, self_b, peak_b = _fmt(node_b)
        rows.append([name, rows_a, rows_b, self_a, self_b, peak_a, peak_b])
    wall_a = a.get("wall_seconds", 0.0) or 0.0
    wall_b = b.get("wall_seconds", 0.0) or 0.0
    print(
        f"diff {a.get('id')} ({wall_a * 1e3:.3f}ms) vs "
        f"{b.get('id')} ({wall_b * 1e3:.3f}ms)"
    )
    print(
        render_table(
            ["operator", "rows A", "rows B", "self A", "self B", "peak A", "peak B"],
            rows,
        )
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    log = _cli_log(args)
    print(summarise(_windowed_entries(log, args)))
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    """Offline sentinel replay: rebuild (or extend) baselines from the
    windowed log and report every regression alert raised."""
    from repro.obs.sentinel import (
        BaselineStore,
        Sentinel,
        SentinelConfig,
    )

    log = _cli_log(args)
    entries = _windowed_entries(log, args)
    config = SentinelConfig()
    if args.window:
        config.window = args.window
    store = BaselineStore(
        args.baseline or None, reservoir=config.reservoir
    )
    sentinel = Sentinel(store=store, config=config)
    alerts = sentinel.evaluate_log(entries, chunk=args.chunk)
    if args.baseline:
        store.save()
    if args.json:
        print(
            json.dumps(
                {
                    "entries": len(entries),
                    "counts": sentinel.counts(),
                    "store": store.info(),
                    "alerts": [alert.to_dict() for alert in alerts],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        counts = sentinel.counts()
        print(
            f"sentinel replay: {len(entries)} entr"
            f"{'y' if len(entries) == 1 else 'ies'}, "
            f"{counts['total']} alert(s) "
            f"(plan_flip={counts['plan_flip']} "
            f"latency_drift={counts['latency_drift']} "
            f"qerror_drift={counts['qerror_drift']}), "
            f"{store.info()['fingerprints']} fingerprint(s) tracked"
        )
        for alert in alerts:
            print(f"  {alert.render()}")
        if args.baseline:
            print(f"baseline store: {args.baseline}")
    if args.fail_on_alert and alerts:
        return 2
    return 0


#: the service stage taxonomy in lifecycle order (kept literal here so
#: the CLI renders timelines without importing the service layer).
_STAGE_ORDER = (
    "queue", "parse", "plan_cache", "optimize", "execute", "serialize"
)


def _entry_detail(entry: dict) -> str:
    """One-line description of a trace-timeline entry."""
    kind = entry.get("kind", "?")
    if kind == "service":
        return (
            f"status={entry.get('status', '?')} "
            f"rows={entry.get('rows_out', '-')} "
            f"cached={entry.get('cached', '-')} "
            f"degraded={entry.get('degraded', '-')}"
        )
    if kind == "optimize":
        return (
            f"cost={entry.get('cost', 0.0):.1f} "
            f"cached={bool(entry.get('cached'))}"
        )
    if kind == "profile":
        return f"rows={entry.get('rows_out', '-')}"
    if kind == "execute":
        return f"rows={entry.get('rows_out', '-')} root={entry.get('root', '?')}"
    return ""


def render_trace(trace_id: str, entries: list[dict]) -> str:
    """One request's timeline: every log entry carrying ``trace_id``,
    time-ordered and offset from the first, with the ``service`` row's
    per-stage latency breakdown expanded."""
    ordered = sorted(entries, key=lambda e: float(e.get("ts", 0.0)))
    base = float(ordered[0].get("ts", 0.0))
    lines = [
        f"trace {trace_id}: "
        f"{len(ordered)} entr{'y' if len(ordered) == 1 else 'ies'}"
    ]
    service = next(
        (e for e in ordered if e.get("kind") == "service"), None
    )
    if service is not None:
        sql = " ".join(str(service.get("sql", "")).split())
        wall = float(service.get("wall_seconds", 0.0) or 0.0)
        lines.append(f"  sql:    {sql}")
        lines.append(
            f"  status: {service.get('status', '?')}   "
            f"query_id: {service.get('query_id', '?')}   "
            f"wall: {wall * 1e3:.3f}ms"
        )
    lines.append("")
    for entry in ordered:
        offset = (float(entry.get("ts", base)) - base) * 1e3
        lines.append(
            f"  +{offset:9.3f}ms  {entry.get('kind', '?'):<8} "
            f"{entry.get('id', '?')}  {_entry_detail(entry)}"
        )
        stages = entry.get("stages")
        if entry.get("kind") == "service" and isinstance(stages, dict):
            for stage in _STAGE_ORDER:
                if stage in stages:
                    lines.append(
                        f"        stage {stage:<12} "
                        f"{float(stages[stage]) * 1e3:10.3f}ms"
                    )
            for stage in sorted(set(stages) - set(_STAGE_ORDER)):
                lines.append(
                    f"        stage {stage:<12} "
                    f"{float(stages[stage]) * 1e3:10.3f}ms"
                )
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    log = _cli_log(args)
    matches = [
        entry
        for entry in log.entries()
        if entry.get("trace_id")
        and str(entry["trace_id"]).startswith(args.trace_id)
    ]
    if not matches:
        raise ObservabilityError(
            f"no entries carry a trace id matching {args.trace_id!r} "
            f"in {log.path}"
        )
    trace_ids = sorted({str(entry["trace_id"]) for entry in matches})
    if len(trace_ids) > 1:
        raise ObservabilityError(
            f"{args.trace_id!r} is ambiguous: matches {trace_ids}"
        )
    print(render_trace(trace_ids[0], matches))
    return 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.querylog`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.querylog",
        description="Inspect a repro query log (append-only JSONL).",
    )
    parser.add_argument(
        "--log",
        default="",
        help=f"log path (default: ${ENV_QUERY_LOG})",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    listing = commands.add_parser("list", help="one line per logged entry")
    _add_window_arguments(listing)
    show = commands.add_parser("show", help="render one entry")
    show.add_argument("id", help="entry id (unique prefixes work)")
    show.add_argument("--html", default="", help="also write an HTML report")
    show.add_argument(
        "--flamegraph", default="", help="also write folded stacks"
    )
    diff = commands.add_parser("diff", help="compare two profiles")
    diff.add_argument("a")
    diff.add_argument("b")
    summary = commands.add_parser(
        "summary", help="q-error and latency percentiles across history"
    )
    _add_window_arguments(summary)
    regress = commands.add_parser(
        "regress",
        help="replay history through the plan-regression sentinel",
    )
    _add_window_arguments(regress)
    regress.add_argument(
        "--baseline",
        default="",
        help="baseline store JSON to load/extend/save (default: in-memory)",
    )
    regress.add_argument(
        "--chunk",
        type=int,
        default=32,
        help="replay batch size (mimics the live tail's cadence)",
    )
    regress.add_argument(
        "--window",
        type=int,
        default=0,
        help="override the sentinel's sliding latency window",
    )
    regress.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    regress.add_argument(
        "--fail-on-alert",
        action="store_true",
        help="exit 2 when any alert is raised (CI gating)",
    )
    trace = commands.add_parser(
        "trace", help="reconstruct one request's timeline by trace id"
    )
    trace.add_argument(
        "trace_id", help="correlation id (unique prefixes work)"
    )
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "show": _cmd_show,
        "diff": _cmd_diff,
        "summary": _cmd_summary,
        "regress": _cmd_regress,
        "trace": _cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except ObservabilityError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
