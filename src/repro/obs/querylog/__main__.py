"""``python -m repro.obs.querylog`` dispatch."""

import sys

from repro.obs.querylog import main

if __name__ == "__main__":
    sys.exit(main())
